//! Property tests over the IR: randomly generated (well-formed)
//! functions must pass the verifier, and dominator/control-dependence
//! facts must hold structurally on arbitrary CFGs.

use owl_ir::analysis::{Cfg, ControlDeps, DomTree, LoopInfo, PostDomTree};
use owl_ir::{BlockId, Module, ModuleBuilder, Operand, Pred, Type};
use proptest::prelude::*;

/// A compact description of a random CFG: for each block, either a
/// conditional branch to two targets, a jump to one, or a return.
#[derive(Clone, Debug)]
enum Shape {
    Br(usize, usize),
    Jmp(usize),
    Ret,
}

fn shape_strategy(max_blocks: usize) -> impl Strategy<Value = Vec<Shape>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..max_blocks, 0usize..max_blocks).prop_map(|(a, b)| Shape::Br(a, b)),
            (0usize..max_blocks).prop_map(Shape::Jmp),
            Just(Shape::Ret),
        ],
        1..=max_blocks,
    )
}

/// Builds a module with one function realizing `shapes` (targets are
/// taken modulo the block count).
fn build_cfg(shapes: &[Shape]) -> Module {
    let n = shapes.len();
    let mut mb = ModuleBuilder::new("prop");
    let g = mb.global("g", 1, Type::I64);
    let f = mb.declare_func("f", 1);
    {
        let mut b = mb.build_func(f);
        let blocks: Vec<BlockId> = std::iter::once(BlockId(0))
            .chain((1..n).map(|_| b.block()))
            .collect();
        for (i, shape) in shapes.iter().enumerate() {
            b.switch_to(blocks[i]);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let c = b.cmp(Pred::Gt, v, Operand::Param(0));
            match shape {
                Shape::Br(x, y) => {
                    b.br(c, blocks[x % n], blocks[y % n]);
                }
                Shape::Jmp(x) => {
                    b.jmp(blocks[x % n]);
                }
                Shape::Ret => {
                    b.ret(Some(c.into()));
                }
            }
        }
    }
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_modules_verify(shapes in shape_strategy(8)) {
        let m = build_cfg(&shapes);
        prop_assert!(owl_ir::verify_module(&m).is_ok());
    }

    #[test]
    fn print_parse_roundtrip(shapes in shape_strategy(8)) {
        let m = build_cfg(&shapes);
        let printed = owl_ir::module_to_string(&m);
        let parsed = owl_ir::parse_module(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert!(owl_ir::verify_module(&parsed).is_ok());
        prop_assert_eq!(owl_ir::module_to_string(&parsed), printed);
    }

    #[test]
    fn entry_dominates_every_reachable_block(shapes in shape_strategy(8)) {
        let m = build_cfg(&shapes);
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        for b in cfg.reverse_postorder() {
            prop_assert!(dom.dominates(BlockId(0), b), "entry must dominate {b}");
        }
    }

    #[test]
    fn idom_is_a_strict_dominator(shapes in shape_strategy(8)) {
        let m = build_cfg(&shapes);
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        for b in cfg.reverse_postorder() {
            if let Some(i) = dom.idom(b) {
                prop_assert!(dom.dominates(i, b));
                prop_assert!(i != b);
            }
        }
    }

    #[test]
    fn control_deps_only_from_conditional_branches(shapes in shape_strategy(8)) {
        let m = build_cfg(&shapes);
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let pdom = PostDomTree::new(f, &cfg);
        let cd = ControlDeps::new(f, &cfg, &pdom);
        for b in 0..f.blocks.len() {
            for dep in cd.block_deps(BlockId::from_index(b)) {
                prop_assert!(
                    cfg.succs(*dep).len() >= 2,
                    "bb{b} depends on single-successor {dep}"
                );
            }
        }
    }

    #[test]
    fn loop_headers_dominate_their_bodies(shapes in shape_strategy(8)) {
        let m = build_cfg(&shapes);
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let li = LoopInfo::new(f, &cfg, &dom);
        for lp in li.loops() {
            for b in lp.body.iter() {
                // Natural loops: the header dominates every body block
                // that is reachable from the entry.
                if dom.dominates(BlockId(0), *b) {
                    prop_assert!(
                        dom.dominates(lp.header, *b),
                        "header {} must dominate {b}",
                        lp.header
                    );
                }
            }
        }
    }

    #[test]
    fn postdominance_is_reflexive_for_exit_reaching_blocks(shapes in shape_strategy(6)) {
        let m = build_cfg(&shapes);
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let pdom = PostDomTree::new(f, &cfg);
        for b in 0..f.blocks.len() {
            let b = BlockId::from_index(b);
            // Blocks that can reach an exit (they have an immediate
            // post-dominator or are exits themselves) post-dominate
            // themselves; blocks stuck in infinite loops do not.
            if pdom.ipdom_raw(b.index()).is_some() || cfg.succs(b).is_empty() {
                prop_assert!(pdom.postdominates(b, b));
            }
        }
    }
}

#[test]
fn printer_roundtrips_every_opcode_textually() {
    // Not a proptest, but a coverage net: build one function using
    // every instruction kind and render it.
    let mut mb = ModuleBuilder::new("all");
    let g = mb.global("g", 2, Type::I64);
    let ext = mb.declare_external("ext", 1);
    let callee = mb.declare_func("callee", 1);
    let worker = mb.declare_func("worker", 1);
    let f = mb.declare_func("f", 1);
    {
        let mut b = mb.build_func(callee);
        b.ret(Some(Operand::Param(0)));
    }
    {
        let mut b = mb.build_func(worker);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(f);
        let a = b.global_addr(g);
        let fp = b.func_addr(callee);
        let st = b.alloca(2);
        let h = b.malloc(3);
        let v = b.load(a, Type::I64);
        b.store(st, v);
        let gp = b.gep(h, 1);
        b.atomic_store(gp, 5);
        let av = b.atomic_load(gp);
        let s = b.add(av, 1);
        let c = b.cmp(Pred::Ne, s, 0);
        let t = b.block();
        let e = b.block();
        b.br(c, t, e);
        b.switch_to(t);
        b.call(ext, vec![Operand::Const(1)]);
        b.call_indirect(fp, vec![Operand::Const(2)]);
        let tid = b.thread_create(worker, 0);
        b.thread_join(tid);
        b.lock(a);
        b.unlock(a);
        b.yield_now();
        b.io_delay(3);
        let inp = b.input(0);
        b.output(1, inp);
        b.memcopy(st, h, 1);
        b.set_privilege(0);
        b.file_access(1, 2);
        b.exec(9);
        b.free(h);
        b.jmp(e);
        b.switch_to(e);
        let phi = b.phi(vec![]);
        b.set_phi(
            phi,
            vec![(BlockId(0), Operand::Const(0)), (t, Operand::Value(s))],
        );
        b.ret(Some(phi.into()));
    }
    let m = mb.finish();
    owl_ir::assert_verified(&m);
    let text = owl_ir::module_to_string(&m);
    for needle in [
        "globaladdr",
        "funcaddr",
        "alloca",
        "malloc",
        "load",
        "store",
        "gep",
        "atomic_store",
        "atomic_load",
        "add",
        "cmp ne",
        "br",
        "call @ext",
        "call *",
        "thread_create",
        "thread_join",
        "lock",
        "unlock",
        "yield",
        "io_delay",
        "input",
        "output",
        "memcopy",
        "set_privilege",
        "file_access",
        "exec",
        "free",
        "jmp",
        "phi",
        "ret",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}
