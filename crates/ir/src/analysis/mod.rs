//! Static analyses over the IR: CFG, dominators, control dependence,
//! natural loops, call graph, and def-use chains.

pub mod callgraph;
pub mod cfg;
pub mod ctrldep;
pub mod defuse;
pub mod dom;
pub mod elision;
pub mod loops;
pub mod pointsto;

pub use callgraph::CallGraph;
pub use elision::{ElisionClass, ElisionMap, ElisionStats};
pub use cfg::Cfg;
pub use ctrldep::ControlDeps;
pub use defuse::DefUse;
pub use dom::{DomTree, PostDomTree};
pub use loops::{Loop, LoopInfo};
pub use pointsto::{AbsLoc, PointsTo, PointsToStats};

use crate::ids::FuncId;
use crate::module::Module;

/// All per-function analyses, computed together. The OWL analyzers need
/// most of them at once, and computing them as a bundle keeps callers
/// from mixing analyses of different functions.
#[derive(Clone, Debug)]
pub struct FuncAnalysis {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Post-dominator tree.
    pub pdom: PostDomTree,
    /// Control dependences.
    pub ctrl: ControlDeps,
    /// Natural loops.
    pub loops: LoopInfo,
    /// Def-use chains.
    pub defuse: DefUse,
}

impl FuncAnalysis {
    /// Computes all analyses for `m.func(f)`.
    pub fn new(m: &Module, f: FuncId) -> Self {
        let func = m.func(f);
        let cfg = Cfg::new(func);
        let dom = DomTree::new(func, &cfg);
        let pdom = PostDomTree::new(func, &cfg);
        let ctrl = ControlDeps::new(func, &cfg, &pdom);
        let loops = LoopInfo::new(func, &cfg, &dom);
        let defuse = DefUse::new(func);
        FuncAnalysis {
            cfg,
            dom,
            pdom,
            ctrl,
            loops,
            defuse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn bundle_computes_for_trivial_function() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(f);
            b.ret(None);
        }
        let m = mb.finish();
        let fa = FuncAnalysis::new(&m, f);
        assert_eq!(fa.cfg.len(), 1);
        assert!(fa.loops.loops().is_empty());
    }
}
