//! Static check-elision pre-pass.
//!
//! Classifies every plain load/store site whose accesses are provably
//! race-free, so the dynamic detectors can skip their shadow-memory
//! work at those sites ("Compiling Away the Overhead of Race
//! Detection"-style elision stacked on the epoch fast path).
//!
//! The unit of proof is the **abstract location** ([`AbsLoc`]) from the
//! Andersen points-to solution. A location is race-free when one of
//! three obligations holds over *every* access site that may touch it:
//!
//! 1. **Thread-local** — either the location is a non-escaping
//!    allocation site (its address never flows into a global cell or a
//!    `ThreadCreate` argument, so no other thread can ever name it), or
//!    every function containing an access is reachable from exactly one
//!    *single-instance* thread root (the entry function, or a worker
//!    spawned exactly once from straight-line entry code).
//! 2. **Read-only-shared** — no plain store or `MemCopy` destination
//!    may touch the location anywhere in the module. Atomic stores are
//!    permitted: atomics never touch shadow memory (they are pure
//!    synchronization edges), so a location with only atomic writers
//!    has an empty shadow history and its reads can never conflict.
//! 3. **Lock-dominated** — a static must-lockset dataflow (forward,
//!    meet = intersection, interprocedural entry locksets via the call
//!    graph, lock identity restricted to singleton `Global` points-to
//!    sets so acquisition sites must-alias one concrete mutex) proves a
//!    common lock held at every access site. Two accesses under one
//!    mutex are mutually excluded and ordered by its release/acquire
//!    clocks, so neither backend can ever report them.
//!
//! A *site* is elided iff its points-to set is non-empty and every
//! location in it is race-free. `MemCopy` sites are never elided (one
//! instruction fans out into many dynamic accesses) but their accesses
//! participate in every location's obligation. Empty points-to sets
//! mean "untracked address — may touch anything": one such access site,
//! or one indirect call with no resolved targets, poisons the whole
//! module and nothing is elided ([`ElisionStats::poisoned`]).
//!
//! Soundness contract consumed by `owl_race`: if a site is elided, no
//! execution has a racing access pair involving that site, so skipping
//! its shadow lookup/update changes neither the report stream nor the
//! read-hint, suppression, or drop counters of any detector backend.

use super::cfg::Cfg;
use super::dom::DomTree;
use super::loops::LoopInfo;
use super::pointsto::{AbsLoc, PointsTo};
use crate::ids::{FuncId, GlobalId, InstId, InstRef};
use crate::inst::{Callee, Inst};
use crate::module::Module;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// Why a site's shadow-memory work can be skipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ElisionClass {
    /// Every location the site may touch is provably confined to one
    /// thread.
    ThreadLocal,
    /// Every location the site may touch is never plainly written.
    ReadOnlyShared,
    /// Every location the site may touch has a common mutex held at
    /// all of its access sites.
    LockDominated,
}

impl fmt::Display for ElisionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ElisionClass::ThreadLocal => "thread-local",
            ElisionClass::ReadOnlyShared => "read-only-shared",
            ElisionClass::LockDominated => "lock-dominated",
        })
    }
}

/// Aggregate counts from one [`ElisionMap::analyze`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElisionStats {
    /// Plain load/store sites considered (root-reachable functions).
    pub sites_total: usize,
    /// Sites proven race-free (sum of the three classes).
    pub sites_elided: usize,
    /// Sites elided as thread-local.
    pub thread_local: usize,
    /// Sites elided as read-only-shared.
    pub read_only: usize,
    /// Sites elided as lock-dominated.
    pub lock_dominated: usize,
    /// Abstract locations with at least one access.
    pub locations: usize,
    /// Locations proven race-free.
    pub locations_elidable: usize,
    /// Whether an untracked access or unresolved indirect call forced
    /// the analysis to give up on the whole module.
    pub poisoned: bool,
}

/// Per-site elision classification for one module.
#[derive(Clone, Debug, Default)]
pub struct ElisionMap {
    classes: BTreeMap<InstRef, ElisionClass>,
    stats: ElisionStats,
}

/// One may-access of one abstract location set.
struct Access {
    site: InstRef,
    write: bool,
    /// Plain `Load`/`Store` — a candidate for elision. `MemCopy`
    /// accesses participate in proofs but are never elided themselves.
    candidate: bool,
    locs: Vec<AbsLoc>,
}

/// Which thread roots can reach a function.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Reach {
    None,
    One(usize),
    Many,
}

/// Locks a function (or its transitive callees) may release.
#[derive(Clone, PartialEq, Eq)]
enum Released {
    Set(BTreeSet<GlobalId>),
    All,
}

/// A must-lockset: `None` is ⊤ (no path reaches here yet — vacuously
/// holds every lock), `Some(s)` is the set held on every path.
type Lockset = Option<BTreeSet<GlobalId>>;

fn meet(acc: &mut Lockset, other: &BTreeSet<GlobalId>) -> bool {
    match acc {
        None => {
            *acc = Some(other.clone());
            true
        }
        Some(s) => {
            let before = s.len();
            s.retain(|g| other.contains(g));
            s.len() != before
        }
    }
}

impl ElisionMap {
    /// Runs the pre-pass with a freshly solved points-to analysis.
    pub fn analyze(m: &Module, entry: FuncId) -> Self {
        Self::analyze_with(m, entry, &PointsTo::new(m))
    }

    /// Runs the pre-pass over an existing points-to solution.
    pub fn analyze_with(m: &Module, entry: FuncId, pts: &PointsTo) -> Self {
        Analysis::new(m, entry, pts).run()
    }

    /// The class under which `site` was elided, if any.
    pub fn class_of(&self, site: InstRef) -> Option<ElisionClass> {
        self.classes.get(&site).copied()
    }

    /// Whether `site`'s shadow work can be skipped.
    pub fn is_elided(&self, site: InstRef) -> bool {
        self.classes.contains_key(&site)
    }

    /// All elided sites with their classes, in site order.
    pub fn sites(&self) -> impl Iterator<Item = (InstRef, ElisionClass)> + '_ {
        self.classes.iter().map(|(s, c)| (*s, *c))
    }

    /// The elided sites as a lookup set (for the VM's event stamping).
    pub fn elided_set(&self) -> HashSet<InstRef> {
        self.classes.keys().copied().collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ElisionStats {
        self.stats
    }

    /// Number of elided sites.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether nothing was elided.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

struct Analysis<'a> {
    m: &'a Module,
    entry: FuncId,
    pts: &'a PointsTo,
    /// Call adjacency (internal targets only; thread spawns excluded —
    /// a spawned function runs on its own root, not its creator's).
    calls: Vec<Vec<(InstId, Vec<FuncId>)>>,
    /// Whether some reachable indirect call resolved to nothing.
    unresolved_call: bool,
    /// `ThreadCreate` sites: (containing function, instruction,
    /// internal target).
    creates: Vec<(FuncId, InstId, FuncId)>,
    reach: Vec<Reach>,
    roots: Vec<FuncId>,
    single: Vec<bool>,
}

impl<'a> Analysis<'a> {
    fn new(m: &'a Module, entry: FuncId, pts: &'a PointsTo) -> Self {
        let n = m.funcs.len();
        let mut calls = vec![Vec::new(); n];
        let mut unresolved_call = false;
        let mut creates = Vec::new();
        for (fi, f) in m.funcs.iter().enumerate() {
            if !f.is_internal {
                continue;
            }
            let fid = FuncId::from_index(fi);
            for (i, inst) in f.iter_insts() {
                match inst {
                    Inst::Call { callee, .. } => {
                        let site = InstRef::new(fid, i);
                        let targets = match callee {
                            Callee::Direct(t) => vec![*t],
                            Callee::Indirect(_) => match pts.resolve_targets(site) {
                                Some(ts) if !ts.is_empty() => ts.to_vec(),
                                // Nothing tracked into the callee
                                // operand: the call could execute
                                // anything. Poisons the module.
                                _ => {
                                    unresolved_call = true;
                                    Vec::new()
                                }
                            },
                        };
                        let internal: Vec<FuncId> = targets
                            .into_iter()
                            .filter(|t| m.func(*t).is_internal)
                            .collect();
                        calls[fi].push((i, internal));
                    }
                    Inst::ThreadCreate { func, .. } if m.func(*func).is_internal => {
                        creates.push((fid, i, *func));
                    }
                    _ => {}
                }
            }
        }
        Analysis {
            m,
            entry,
            pts,
            calls,
            unresolved_call,
            creates,
            reach: vec![Reach::None; n],
            roots: Vec::new(),
            single: Vec::new(),
        }
    }

    fn run(mut self) -> ElisionMap {
        self.compute_roots_and_reach();
        let accesses = self.collect_accesses();
        let poisoned = self.unresolved_call || accesses.iter().any(|a| a.locs.is_empty());

        let mut stats = ElisionStats {
            sites_total: accesses.iter().filter(|a| a.candidate).count(),
            poisoned,
            ..ElisionStats::default()
        };
        let mut classes = BTreeMap::new();

        if !poisoned {
            // Per-location access index.
            let mut by_loc: BTreeMap<AbsLoc, (bool, Vec<usize>)> = BTreeMap::new();
            for (i, a) in accesses.iter().enumerate() {
                for &l in &a.locs {
                    let e = by_loc.entry(l).or_default();
                    e.0 |= a.write;
                    e.1.push(i);
                }
            }
            stats.locations = by_loc.len();

            let escaped = self.escape_set();
            let locksets = LocksetAnalysis::solve(&self);

            let mut loc_class: BTreeMap<AbsLoc, ElisionClass> = BTreeMap::new();
            for (&loc, (has_write, idxs)) in &by_loc {
                if matches!(loc, AbsLoc::Func(_)) {
                    continue; // code, not data memory
                }
                let class = if self.thread_local(loc, idxs, &accesses, &escaped) {
                    ElisionClass::ThreadLocal
                } else if !has_write {
                    ElisionClass::ReadOnlyShared
                } else if locksets.common_lock(idxs, &accesses) {
                    ElisionClass::LockDominated
                } else {
                    continue;
                };
                loc_class.insert(loc, class);
            }
            stats.locations_elidable = loc_class.len();

            for a in accesses.iter().filter(|a| a.candidate) {
                let Some(cls) = a
                    .locs
                    .iter()
                    .map(|l| loc_class.get(l).copied())
                    .collect::<Option<Vec<_>>>()
                else {
                    continue;
                };
                let class = if cls.iter().all(|c| *c == ElisionClass::ThreadLocal) {
                    ElisionClass::ThreadLocal
                } else if !a.write
                    && cls.iter().all(|c| *c != ElisionClass::LockDominated)
                {
                    ElisionClass::ReadOnlyShared
                } else {
                    debug_assert!(a.write || cls.contains(&ElisionClass::LockDominated));
                    ElisionClass::LockDominated
                };
                match class {
                    ElisionClass::ThreadLocal => stats.thread_local += 1,
                    ElisionClass::ReadOnlyShared => stats.read_only += 1,
                    ElisionClass::LockDominated => stats.lock_dominated += 1,
                }
                stats.sites_elided += 1;
                classes.insert(a.site, class);
            }
        }

        ElisionMap { classes, stats }
    }

    /// Thread roots (entry first, then distinct spawn targets), the
    /// root-reachability of every function, and per-root
    /// single-instance flags.
    fn compute_roots_and_reach(&mut self) {
        self.roots.push(self.entry);
        let mut seen: BTreeSet<FuncId> = BTreeSet::new();
        seen.insert(self.entry);
        for &(_, _, target) in &self.creates {
            if seen.insert(target) {
                self.roots.push(target);
            }
        }

        for (ri, &root) in self.roots.iter().enumerate() {
            let mut visited = vec![false; self.m.funcs.len()];
            let mut work = VecDeque::from([root]);
            visited[root.index()] = true;
            while let Some(f) = work.pop_front() {
                self.reach[f.index()] = match self.reach[f.index()] {
                    Reach::None => Reach::One(ri),
                    Reach::One(r) if r == ri => Reach::One(r),
                    _ => Reach::Many,
                };
                for (_, targets) in &self.calls[f.index()] {
                    for &t in targets {
                        if !visited[t.index()] {
                            visited[t.index()] = true;
                            work.push_back(t);
                        }
                    }
                }
            }
        }

        // A root is single-instance when exactly one thread ever runs
        // its tree. Entry: nobody calls or spawns it. Worker: spawned
        // exactly once, from straight-line (non-loop) entry code, with
        // entry itself single-instance. Calls into a worker from other
        // code are caught by the `Reach::Many` merge, not here.
        let entry_f = self.m.func(self.entry);
        let cfg = Cfg::new(entry_f);
        let dom = DomTree::new(entry_f, &cfg);
        let loops = LoopInfo::new(entry_f, &cfg, &dom);
        let entry_single = !self.unresolved_call
            && !self
                .calls
                .iter()
                .flat_map(|c| c.iter())
                .any(|(_, ts)| ts.contains(&self.entry))
            && !self.creates.iter().any(|&(_, _, t)| t == self.entry);
        self.single = self
            .roots
            .iter()
            .enumerate()
            .map(|(ri, &root)| {
                if ri == 0 {
                    return entry_single;
                }
                let sites: Vec<_> = self
                    .creates
                    .iter()
                    .filter(|&&(_, _, t)| t == root)
                    .collect();
                entry_single
                    && sites.len() == 1
                    && sites[0].0 == self.entry
                    && !loops.inst_in_loop(sites[0].1)
            })
            .collect();
    }

    /// All may-accesses in root-reachable internal functions. Atomic
    /// accesses are excluded by design: they never touch shadow memory.
    fn collect_accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        for (fi, f) in self.m.funcs.iter().enumerate() {
            if !f.is_internal || self.reach[fi] == Reach::None {
                continue;
            }
            let fid = FuncId::from_index(fi);
            for (i, inst) in f.iter_insts() {
                let site = InstRef::new(fid, i);
                let mut push = |addr, write, candidate| {
                    out.push(Access {
                        site,
                        write,
                        candidate,
                        locs: self.pts.pts_operand(fid, addr).iter().copied().collect(),
                    });
                };
                match inst {
                    Inst::Load { addr, .. } => push(*addr, false, true),
                    Inst::Store { addr, .. } => push(*addr, true, true),
                    Inst::MemCopy { dst, src, .. } => {
                        push(*src, false, false);
                        push(*dst, true, false);
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Locations another thread could ever name: every global, every
    /// `ThreadCreate` argument's points-to set, and the transitive
    /// closure of their cell contents. Allocation sites outside this
    /// set are only ever addressed by the thread that allocated them.
    fn escape_set(&self) -> BTreeSet<AbsLoc> {
        let mut escaped: BTreeSet<AbsLoc> = (0..self.m.globals.len())
            .map(|i| AbsLoc::Global(GlobalId::from_index(i)))
            .collect();
        for (fi, f) in self.m.funcs.iter().enumerate() {
            if !f.is_internal || self.reach[fi] == Reach::None {
                continue;
            }
            let fid = FuncId::from_index(fi);
            for (_, inst) in f.iter_insts() {
                if let Inst::ThreadCreate { arg, .. } = inst {
                    escaped.extend(self.pts.pts_operand(fid, *arg).iter().copied());
                }
            }
        }
        let mut work: VecDeque<AbsLoc> = escaped.iter().copied().collect();
        while let Some(l) = work.pop_front() {
            for &l2 in self.pts.cell(l) {
                if escaped.insert(l2) {
                    work.push_back(l2);
                }
            }
        }
        escaped
    }

    fn thread_local(
        &self,
        loc: AbsLoc,
        idxs: &[usize],
        accesses: &[Access],
        escaped: &BTreeSet<AbsLoc>,
    ) -> bool {
        // Non-escaping allocation sites: every dynamic instance is
        // private to its allocating thread, even when the allocating
        // function runs on many threads (instances never share a
        // concrete address — the VM never recycles allocations).
        if matches!(loc, AbsLoc::Alloca(_) | AbsLoc::Heap(_)) && !escaped.contains(&loc) {
            return true;
        }
        // Root confinement: every access site lives in code only one
        // single-instance thread root can reach.
        let mut root = None;
        for &i in idxs {
            match self.reach[accesses[i].site.func.index()] {
                Reach::One(r) if root.is_none() || root == Some(r) => root = Some(r),
                _ => return false,
            }
        }
        root.is_some_and(|r| self.single[r])
    }
}

/// Interprocedural must-lockset solution.
struct LocksetAnalysis<'a> {
    a: &'a Analysis<'a>,
    universe: BTreeSet<GlobalId>,
    released: Vec<Released>,
    entry_sets: Vec<Lockset>,
    /// Memoized per-function block-entry locksets.
    block_in: HashMap<FuncId, Vec<Lockset>>,
}

impl<'a> LocksetAnalysis<'a> {
    fn solve(a: &'a Analysis<'a>) -> Self {
        // Lock identity: only acquisition sites whose mutex operand
        // points to exactly one global can be proven to take one
        // concrete lock (allocation-site mutexes have one abstract but
        // many dynamic instances, so they never must-alias).
        let mut universe = BTreeSet::new();
        for (fi, f) in a.m.funcs.iter().enumerate() {
            if !f.is_internal || a.reach[fi] == Reach::None {
                continue;
            }
            let fid = FuncId::from_index(fi);
            for (_, inst) in f.iter_insts() {
                if let Inst::MutexLock { addr } = inst {
                    let p = a.pts.pts_operand(fid, *addr);
                    if p.len() == 1 {
                        if let Some(AbsLoc::Global(g)) = p.first() {
                            universe.insert(*g);
                        }
                    }
                }
            }
        }

        let mut s = LocksetAnalysis {
            a,
            universe,
            released: vec![Released::Set(BTreeSet::new()); a.m.funcs.len()],
            entry_sets: vec![None; a.m.funcs.len()],
            block_in: HashMap::new(),
        };
        s.solve_released();
        s.solve_entry_sets();
        for fi in 0..a.m.funcs.len() {
            if a.m.funcs[fi].is_internal && a.reach[fi] != Reach::None {
                let fid = FuncId::from_index(fi);
                let flow = s.intra_flow(fid);
                s.block_in.insert(fid, flow);
            }
        }
        s
    }

    /// Fixpoint of the may-release summaries over the call graph.
    fn solve_released(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for (fi, f) in self.a.m.funcs.iter().enumerate() {
                if !f.is_internal {
                    continue;
                }
                let fid = FuncId::from_index(fi);
                let mut eff = self.released[fi].clone();
                for (_, inst) in f.iter_insts() {
                    match inst {
                        Inst::MutexUnlock { addr } | Inst::CondWait { mutex: addr, .. } => {
                            let p = self.a.pts.pts_operand(fid, *addr);
                            if p.is_empty() {
                                eff = Released::All;
                            } else if let Released::Set(s) = &mut eff {
                                s.extend(
                                    self.universe
                                        .iter()
                                        .filter(|g| p.contains(&AbsLoc::Global(**g)))
                                        .copied(),
                                );
                            }
                        }
                        _ => {}
                    }
                }
                for (_, targets) in &self.a.calls[fi] {
                    for t in targets {
                        match (&mut eff, &self.released[t.index()]) {
                            (Released::All, _) => {}
                            (_, Released::All) => eff = Released::All,
                            (Released::Set(s), Released::Set(o)) => s.extend(o.iter().copied()),
                        }
                    }
                }
                if eff != self.released[fi] {
                    self.released[fi] = eff;
                    changed = true;
                }
            }
        }
    }

    /// Fixpoint of the entry locksets: what a function's caller is
    /// guaranteed to hold at every call site. Thread roots start with
    /// nothing (a fresh thread holds no locks).
    fn solve_entry_sets(&mut self) {
        self.entry_sets[self.a.entry.index()] = Some(BTreeSet::new());
        for &root in &self.a.roots {
            self.entry_sets[root.index()] = Some(BTreeSet::new());
        }
        let mut changed = true;
        while changed {
            changed = false;
            for fi in 0..self.a.m.funcs.len() {
                let f = &self.a.m.funcs[fi];
                if !f.is_internal || self.entry_sets[fi].is_none() {
                    continue;
                }
                let fid = FuncId::from_index(fi);
                let flow = self.intra_flow(fid);
                let owners = f.inst_blocks();
                for (call, targets) in self.a.calls[fi].clone() {
                    let Some(state) = self.state_at(fid, &flow, &owners, call) else {
                        continue; // dead block: the call never runs
                    };
                    for t in targets {
                        if meet(&mut self.entry_sets[t.index()], &state) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    /// Intraprocedural forward must-lockset dataflow: block-entry
    /// states, meet = intersection over predecessors, iterated to
    /// fixpoint in reverse postorder. The ∩-meet is the dataflow form
    /// of the dominance obligation: a lock survives into the must-set
    /// only if an acquisition covers *every* path to the block.
    fn intra_flow(&self, fid: FuncId) -> Vec<Lockset> {
        let f = self.a.m.func(fid);
        let cfg = Cfg::new(f);
        let rpo = cfg.reverse_postorder();
        let entry_set = self.entry_sets[fid.index()].clone().unwrap_or_default();
        let mut inb: Vec<Lockset> = vec![None; f.blocks.len()];
        let mut outb: Vec<Lockset> = vec![None; f.blocks.len()];
        loop {
            let mut changed = false;
            for &b in &rpo {
                let mut acc: Lockset = if b.index() == 0 {
                    Some(entry_set.clone())
                } else {
                    None
                };
                for &p in cfg.preds(b) {
                    if let Some(o) = &outb[p.index()] {
                        meet(&mut acc, o);
                    }
                }
                if acc != inb[b.index()] {
                    inb[b.index()] = acc.clone();
                    changed = true;
                }
                let out = acc.map(|mut st| {
                    for &i in &f.blocks[b.index()].insts {
                        self.transfer(fid, i, &mut st);
                    }
                    st
                });
                if out != outb[b.index()] {
                    outb[b.index()] = out;
                    changed = true;
                }
            }
            if !changed {
                return inb;
            }
        }
    }

    /// The must-lockset immediately before instruction `at` (`None`
    /// when its block is unreachable: the instruction never executes).
    fn state_at(
        &self,
        fid: FuncId,
        block_in: &[Lockset],
        owners: &[crate::ids::BlockId],
        at: InstId,
    ) -> Lockset {
        let b = owners[at.index()];
        let mut st = block_in[b.index()].clone()?;
        for &i in &self.a.m.func(fid).blocks[b.index()].insts {
            if i == at {
                return Some(st);
            }
            self.transfer(fid, i, &mut st);
        }
        Some(st)
    }

    fn transfer(&self, fid: FuncId, i: InstId, st: &mut BTreeSet<GlobalId>) {
        match self.a.m.func(fid).inst(i) {
            Inst::MutexLock { addr } => {
                let p = self.a.pts.pts_operand(fid, *addr);
                if p.len() == 1 {
                    if let Some(AbsLoc::Global(g)) = p.first() {
                        if self.universe.contains(g) {
                            st.insert(*g);
                        }
                    }
                }
            }
            // CondWait re-acquires before returning, but killing is
            // simpler to argue and costs little precision.
            Inst::MutexUnlock { addr } | Inst::CondWait { mutex: addr, .. } => {
                let p = self.a.pts.pts_operand(fid, *addr);
                if p.is_empty() {
                    st.clear();
                } else {
                    st.retain(|g| !p.contains(&AbsLoc::Global(*g)));
                }
            }
            Inst::Call { .. } => {
                if let Some((_, targets)) = self.a.calls[fid.index()]
                    .iter()
                    .find(|(c, _)| *c == i)
                {
                    for t in targets {
                        match &self.released[t.index()] {
                            Released::All => st.clear(),
                            Released::Set(s) => st.retain(|g| !s.contains(g)),
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Whether one lock is held at every listed access.
    fn common_lock(&self, idxs: &[usize], accesses: &[Access]) -> bool {
        let mut acc: Lockset = None;
        for &i in idxs {
            let site = accesses[i].site;
            let Some(block_in) = self.block_in.get(&site.func) else {
                return false;
            };
            let owners = self.a.m.func(site.func).inst_blocks();
            match self.state_at(site.func, block_in, &owners, site.inst) {
                // Dead block: the access never executes; it constrains
                // nothing.
                None => {}
                Some(held) => {
                    meet(&mut acc, &held);
                    if acc.as_ref().is_some_and(BTreeSet::is_empty) {
                        return false;
                    }
                }
            }
        }
        acc.is_some_and(|s| !s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Type;

    fn finish(mb: ModuleBuilder) -> (Module, FuncId) {
        let m = mb.finish();
        let main = m.func_by_name("main").unwrap();
        (m, main)
    }

    /// Load/store sites of a named function, in order.
    fn access_sites(m: &Module, name: &str) -> Vec<InstRef> {
        let fid = m.func_by_name(name).unwrap();
        m.func(fid)
            .iter_insts()
            .filter(|(_, i)| matches!(i, Inst::Load { .. } | Inst::Store { .. }))
            .map(|(i, _)| InstRef::new(fid, i))
            .collect()
    }

    #[test]
    fn racy_global_is_never_elided() {
        let mut mb = ModuleBuilder::new("racy");
        let g = mb.global("x", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.thread_join(t);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        assert!(map.is_empty(), "{:?}", map);
        assert_eq!(map.stats().sites_total, 2);
        assert!(!map.stats().poisoned);
    }

    #[test]
    fn per_thread_private_globals_are_thread_local() {
        let mut mb = ModuleBuilder::new("private");
        let gm = mb.global("main_only", 1, Type::I64);
        let gw = mb.global("worker_only", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(gw);
            let v = b.load(a, Type::I64);
            b.store(a, Operand::Value(v));
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(gm);
            b.store(a, 7);
            b.thread_join(t);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        for site in access_sites(&m, "w").into_iter().chain(access_sites(&m, "main")) {
            assert_eq!(map.class_of(site), Some(ElisionClass::ThreadLocal), "{site}");
        }
        assert_eq!(map.stats().sites_elided, 3);
    }

    #[test]
    fn loop_spawned_worker_loses_thread_locality() {
        let mut mb = ModuleBuilder::new("loopspawn");
        let gw = mb.global("per_worker", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(gw);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let head = b.block();
            let done = b.block();
            b.jmp(head);
            b.switch_to(head);
            b.thread_create(w, 0);
            let again = b.input(0);
            b.br(again, head, done);
            b.switch_to(done);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        assert!(map.is_empty(), "two workers may race on per_worker");
    }

    #[test]
    fn lock_dominated_accesses_elide_and_unlocked_tail_breaks_it() {
        let mut mb = ModuleBuilder::new("locked");
        let shared = mb.global("shared", 1, Type::I64);
        let racy = mb.global("racy", 1, Type::I64);
        let mu = mb.global("m", 1, Type::I64);
        let w1 = mb.declare_func("w1", 1);
        let w2 = mb.declare_func("w2", 1);
        let main = mb.declare_func("main", 0);
        for w in [w1, w2] {
            let mut b = mb.build_func(w);
            let ma = b.global_addr(mu);
            b.lock(ma);
            let sa = b.global_addr(shared);
            let v = b.load(sa, Type::I64);
            b.store(sa, Operand::Value(v));
            b.unlock(ma);
            // Unlocked access to `racy` only.
            let ra = b.global_addr(racy);
            b.store(ra, 9);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w1, 0);
            let t2 = b.thread_create(w2, 0);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        for w in ["w1", "w2"] {
            let sites = access_sites(&m, w);
            assert_eq!(map.class_of(sites[0]), Some(ElisionClass::LockDominated));
            assert_eq!(map.class_of(sites[1]), Some(ElisionClass::LockDominated));
            assert_eq!(map.class_of(sites[2]), None, "unlocked store must stay");
        }
        assert_eq!(map.stats().lock_dominated, 4);
    }

    #[test]
    fn mixed_locked_and_unlocked_access_breaks_domination() {
        let mut mb = ModuleBuilder::new("mixed");
        let g = mb.global("g", 1, Type::I64);
        let mu = mb.global("m", 1, Type::I64);
        let w1 = mb.declare_func("w1", 1);
        let w2 = mb.declare_func("w2", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w1);
            let ma = b.global_addr(mu);
            b.lock(ma);
            let ga = b.global_addr(g);
            b.store(ga, 1);
            b.unlock(ma);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(w2);
            let ga = b.global_addr(g);
            b.store(ga, 2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w1, 0);
            let t2 = b.thread_create(w2, 0);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        assert!(map.is_empty(), "{:?}", map);
    }

    #[test]
    fn read_only_shared_globals_elide_reads() {
        let mut mb = ModuleBuilder::new("rodata");
        let table = mb.global_init("table", 4, vec![1, 2, 3, 4], Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(table);
            b.load(a, Type::I64);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w, 0);
            let t2 = b.thread_create(w, 0);
            let a = b.global_addr(table);
            b.load(a, Type::I64);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        for site in access_sites(&m, "w").into_iter().chain(access_sites(&m, "main")) {
            assert_eq!(map.class_of(site), Some(ElisionClass::ReadOnlyShared), "{site}");
        }
    }

    #[test]
    fn non_escaping_heap_is_thread_local_even_with_many_workers() {
        let mut mb = ModuleBuilder::new("heap");
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let p = b.malloc(2);
            b.store(p, 5);
            b.load(p, Type::I64);
            b.free(p);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w, 0);
            let t2 = b.thread_create(w, 0);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        for site in access_sites(&m, "w") {
            assert_eq!(map.class_of(site), Some(ElisionClass::ThreadLocal), "{site}");
        }
    }

    #[test]
    fn escaping_alloca_is_not_thread_local() {
        let mut mb = ModuleBuilder::new("escape");
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            b.store(Operand::Param(0), 3);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let p = b.alloca(1);
            let t1 = b.thread_create(w, Operand::Value(p));
            let t2 = b.thread_create(w, Operand::Value(p));
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        assert!(map.is_empty(), "{:?}", map);
    }

    #[test]
    fn lockset_flows_into_callees() {
        let mut mb = ModuleBuilder::new("interproc");
        let g = mb.global("g", 1, Type::I64);
        let mu = mb.global("m", 1, Type::I64);
        let helper = mb.declare_func("helper", 0);
        let w1 = mb.declare_func("w1", 1);
        let w2 = mb.declare_func("w2", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(helper);
            let ga = b.global_addr(g);
            b.store(ga, 1);
            b.ret(None);
        }
        for w in [w1, w2] {
            let mut b = mb.build_func(w);
            let ma = b.global_addr(mu);
            b.lock(ma);
            b.call(helper, vec![]);
            b.unlock(ma);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w1, 0);
            let t2 = b.thread_create(w2, 0);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        let sites = access_sites(&m, "helper");
        assert_eq!(map.class_of(sites[0]), Some(ElisionClass::LockDominated));
    }

    #[test]
    fn callee_that_unlocks_kills_the_lockset() {
        let mut mb = ModuleBuilder::new("killer");
        let g = mb.global("g", 1, Type::I64);
        let mu = mb.global("m", 1, Type::I64);
        let bad = mb.declare_func("bad", 0);
        let w1 = mb.declare_func("w1", 1);
        let w2 = mb.declare_func("w2", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(bad);
            let ma = b.global_addr(mu);
            b.unlock(ma);
            b.ret(None);
        }
        for w in [w1, w2] {
            let mut b = mb.build_func(w);
            let ma = b.global_addr(mu);
            b.lock(ma);
            b.call(bad, vec![]);
            let ga = b.global_addr(g);
            b.store(ga, 1);
            b.unlock(ma);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w1, 0);
            let t2 = b.thread_create(w2, 0);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        assert!(map.is_empty(), "store after may-unlock call must stay");
    }

    #[test]
    fn untracked_address_poisons_everything() {
        let mut mb = ModuleBuilder::new("poison");
        let g = mb.global("private", 1, Type::I64);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let wild = b.input(0);
            b.load(Operand::Value(wild), Type::I64);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        assert!(map.stats().poisoned);
        assert!(map.is_empty(), "untracked access may touch anything");
    }

    #[test]
    fn memcopy_counts_as_writes_but_is_never_elided() {
        let mut mb = ModuleBuilder::new("copy");
        let src = mb.global_init("src", 2, vec![1, 2], Type::I64);
        let dst = mb.global("dst", 2, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(dst);
            b.load(a, Type::I64);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let s = b.global_addr(src);
            let d = b.global_addr(dst);
            b.memcopy(d, s, 2);
            b.thread_join(t);
            b.ret(None);
        }
        let (m, main) = finish(mb);
        let map = ElisionMap::analyze(&m, main);
        let sites = access_sites(&m, "w");
        assert_eq!(
            map.class_of(sites[0]),
            None,
            "memcopy writes dst concurrently with the load"
        );
        assert!(!map.stats().poisoned);
    }
}
