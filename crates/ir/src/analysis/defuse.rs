//! Def-use chains within a function.
//!
//! Algorithm 1 propagates corruption through LLVM virtual registers
//! (paper §6.1); def-use chains are the forward edges of that
//! propagation.

use crate::ids::InstId;
use crate::inst::Operand;
use crate::module::Function;

/// Users of every instruction result and of every parameter.
#[derive(Clone, Debug)]
pub struct DefUse {
    /// `uses[i]` = instructions with `Value(i)` as an operand.
    uses: Vec<Vec<InstId>>,
    /// `param_uses[p]` = instructions with `Param(p)` as an operand.
    param_uses: Vec<Vec<InstId>>,
}

impl DefUse {
    /// Computes def-use chains for `f`.
    pub fn new(f: &Function) -> Self {
        let mut uses = vec![Vec::new(); f.insts.len()];
        let mut param_uses = vec![Vec::new(); f.num_params as usize];
        let mut ops = Vec::new();
        for (i, inst) in f.insts.iter().enumerate() {
            let user = InstId::from_index(i);
            inst.operands(&mut ops);
            for op in &ops {
                match op {
                    Operand::Value(v) => uses[v.index()].push(user),
                    Operand::Param(p) => {
                        if let Some(slot) = param_uses.get_mut(*p as usize) {
                            slot.push(user);
                        }
                    }
                    Operand::Const(_) => {}
                }
            }
        }
        DefUse { uses, param_uses }
    }

    /// Instructions using the result of `def`.
    pub fn uses(&self, def: InstId) -> &[InstId] {
        &self.uses[def.index()]
    }

    /// Instructions using parameter `p`.
    pub fn param_uses(&self, p: u32) -> &[InstId] {
        self.param_uses
            .get(p as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Type;

    #[test]
    fn chains_cover_values_and_params() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let f = mb.declare_func("f", 1);
        {
            let mut b = mb.build_func(f);
            let addr = b.global_addr(g); // %0
            let v = b.load(addr, Type::I64); // %1 uses %0
            let s = b.add(v, Operand::Param(0)); // %2 uses %1 and arg0
            b.store(addr, s); // %3 uses %0, %2
            b.ret(Some(s.into())); // %4 uses %2
        }
        let m = mb.finish();
        let du = DefUse::new(&m.funcs[0]);
        assert_eq!(du.uses(InstId(0)), &[InstId(1), InstId(3)]);
        assert_eq!(du.uses(InstId(1)), &[InstId(2)]);
        assert_eq!(du.uses(InstId(2)), &[InstId(3), InstId(4)]);
        assert_eq!(du.param_uses(0), &[InstId(2)]);
        assert!(du.param_uses(7).is_empty());
    }
}
