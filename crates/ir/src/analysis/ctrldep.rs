//! Control-dependence analysis (Ferrante–Ottenstein–Warren via the
//! post-dominator tree).
//!
//! Algorithm 1 of the paper asks, for each instruction `i` and each
//! corrupted branch `cbr`, "is `i` control dependent on `cbr`?" — this
//! module answers that query at block granularity, which is exact for
//! our IR because a branch is always its block's terminator.

use super::cfg::Cfg;
use super::dom::PostDomTree;
use crate::ids::{BlockId, InstId};
use crate::module::Function;
use std::collections::BTreeSet;

/// Block-level control dependences of one function.
#[derive(Clone, Debug)]
pub struct ControlDeps {
    /// `deps[b]` = blocks whose terminating branch `b` is directly
    /// control dependent on.
    deps: Vec<BTreeSet<BlockId>>,
    inst_block: Vec<BlockId>,
}

impl ControlDeps {
    /// Computes control dependences for `f`.
    pub fn new(f: &Function, cfg: &Cfg, pdom: &PostDomTree) -> Self {
        let n = f.blocks.len();
        let mut deps = vec![BTreeSet::new(); n];
        for a in 0..n {
            let a_id = BlockId::from_index(a);
            let succs = cfg.succs(a_id);
            if succs.len() < 2 {
                continue; // only conditional branches induce dependence
            }
            for &b in succs {
                // Walk the post-dominator tree from b up to (exclusive)
                // ipdom(a); everything visited is control dependent on a.
                let stop = pdom.ipdom_raw(a);
                let mut cur = Some(b.index());
                while let Some(c) = cur {
                    if Some(c) == stop || c == pdom.exit() {
                        break;
                    }
                    deps[c].insert(a_id);
                    cur = pdom.ipdom_raw(c);
                }
            }
        }
        ControlDeps {
            deps,
            inst_block: f.inst_blocks(),
        }
    }

    /// Blocks whose branch `b` is directly control dependent on.
    pub fn block_deps(&self, b: BlockId) -> &BTreeSet<BlockId> {
        &self.deps[b.index()]
    }

    /// Whether instruction `i` is directly control dependent on the
    /// branch terminating `branch_block`.
    pub fn inst_depends_on_branch(&self, i: InstId, branch_block: BlockId) -> bool {
        let b = self.inst_block[i.index()];
        self.deps[b.index()].contains(&branch_block)
    }

    /// Whether instruction `i` is control dependent on branch
    /// instruction `br` (which must be a block terminator).
    pub fn inst_depends_on(&self, f: &Function, i: InstId, br: InstId) -> bool {
        let br_block = self.inst_block[br.index()];
        // `br` must be the terminator of its block to control anything.
        if f.blocks[br_block.index()].terminator() != br {
            return false;
        }
        self.inst_depends_on_branch(i, br_block)
    }

    /// The block containing instruction `i`.
    pub fn block_of(&self, i: InstId) -> BlockId {
        self.inst_block[i.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dom::DomTree;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;
    use crate::module::Module;
    use crate::types::Type;

    /// Figure-1-like shape:
    /// ```text
    /// bb0: %0 = load dying ; br %0, bb1, bb2   (if (dying) return 0)
    /// bb1: ret 0
    /// bb2: <check>; ret 1
    /// ```
    fn guard() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("dying", 1, Type::I64);
        let f = mb.declare_func("stack_check", 0);
        {
            let mut b = mb.build_func(f);
            let addr = b.global_addr(g);
            let v = b.load(addr, Type::I64);
            let bypass = b.block();
            let check = b.block();
            b.br(v, bypass, check);
            b.switch_to(bypass);
            b.ret(Some(Operand::Const(0)));
            b.switch_to(check);
            b.yield_now();
            b.ret(Some(Operand::Const(1)));
        }
        mb.finish()
    }

    fn analyses(m: &Module) -> (Cfg, ControlDeps) {
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let _dom = DomTree::new(f, &cfg);
        let pdom = PostDomTree::new(f, &cfg);
        let cd = ControlDeps::new(f, &cfg, &pdom);
        (cfg, cd)
    }

    #[test]
    fn guarded_blocks_depend_on_branch() {
        let m = guard();
        let (_cfg, cd) = analyses(&m);
        assert!(cd.block_deps(BlockId(1)).contains(&BlockId(0)));
        assert!(cd.block_deps(BlockId(2)).contains(&BlockId(0)));
        assert!(cd.block_deps(BlockId(0)).is_empty());
    }

    #[test]
    fn inst_level_queries() {
        let m = guard();
        let f = &m.funcs[0];
        let (_cfg, cd) = analyses(&m);
        let br = f.blocks[0].terminator();
        // `ret 0` in bb1 (inst 3) and yield in bb2 (inst 4).
        assert!(cd.inst_depends_on(f, InstId(3), br));
        assert!(cd.inst_depends_on(f, InstId(4), br));
        // The load itself precedes the branch: not dependent.
        assert!(!cd.inst_depends_on(f, InstId(1), br));
        // A non-terminator "branch" controls nothing.
        assert!(!cd.inst_depends_on(f, InstId(3), InstId(0)));
    }
}
