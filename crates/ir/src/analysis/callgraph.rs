//! Call-graph construction.
//!
//! Direct calls are resolved statically. Indirect calls are resolved
//! conservatively to every address-taken function of matching arity —
//! the paper's OWL instead resolves them precisely from runtime call
//! stacks (§6.1), which our analyzers also do when a dynamic call stack
//! is available. When a [`PointsTo`] solution is supplied
//! ([`CallGraph::with_points_to`]), indirect sites are narrowed to the
//! functions whose address actually flows into the callee operand,
//! falling back to the arity match only when nothing flowed in.

use crate::analysis::pointsto::PointsTo;
use crate::ids::{FuncId, InstId, InstRef};
use crate::inst::{Callee, Inst};
use crate::module::Module;
use std::collections::{BTreeMap, BTreeSet};

/// Module-wide call graph.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Direct callees per function.
    callees: Vec<BTreeSet<FuncId>>,
    /// Direct callers per function.
    callers: Vec<BTreeSet<FuncId>>,
    /// Functions whose address is taken anywhere in the module.
    address_taken: BTreeSet<FuncId>,
    /// All call sites: (site, direct callee if any).
    call_sites: Vec<(InstRef, Option<FuncId>)>,
    /// Points-to-resolved targets per indirect call site (present only
    /// when built via [`CallGraph::with_points_to`]).
    indirect_targets: BTreeMap<InstRef, Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph of `m`.
    pub fn new(m: &Module) -> Self {
        let n = m.funcs.len();
        let mut callees = vec![BTreeSet::new(); n];
        let mut callers = vec![BTreeSet::new(); n];
        let mut address_taken = BTreeSet::new();
        let mut call_sites = Vec::new();
        for (fi, f) in m.funcs.iter().enumerate() {
            let fid = FuncId::from_index(fi);
            for (i, inst) in f.insts.iter().enumerate() {
                match inst {
                    Inst::Call { callee, .. } => {
                        let site = InstRef::new(fid, InstId::from_index(i));
                        match callee {
                            Callee::Direct(c) => {
                                callees[fi].insert(*c);
                                callers[c.index()].insert(fid);
                                call_sites.push((site, Some(*c)));
                            }
                            Callee::Indirect(_) => call_sites.push((site, None)),
                        }
                    }
                    Inst::FuncAddr(f) => {
                        address_taken.insert(*f);
                    }
                    Inst::ThreadCreate { func, .. } => {
                        callees[fi].insert(*func);
                        callers[func.index()].insert(fid);
                    }
                    _ => {}
                }
            }
        }
        CallGraph {
            callees,
            callers,
            address_taken,
            call_sites,
            indirect_targets: BTreeMap::new(),
        }
    }

    /// Builds the call graph of `m` and refines every indirect call
    /// site with the points-to targets of its callee operand. Sites the
    /// analysis resolved gain real caller/callee edges; sites with an
    /// empty points-to set keep the arity-matched fallback in
    /// [`CallGraph::resolve`].
    pub fn with_points_to(m: &Module, pts: &PointsTo) -> Self {
        let mut cg = Self::new(m);
        for (site, targets) in pts.indirect_sites() {
            if targets.is_empty() {
                continue;
            }
            cg.indirect_targets.insert(site, targets.to_vec());
            for t in targets {
                cg.callees[site.func.index()].insert(*t);
                cg.callers[t.index()].insert(site.func);
            }
        }
        cg
    }

    /// Points-to-resolved targets of an indirect call site, when this
    /// graph was built with [`CallGraph::with_points_to`] and the
    /// analysis found at least one target.
    pub fn indirect_targets(&self, site: InstRef) -> Option<&[FuncId]> {
        self.indirect_targets.get(&site).map(|v| v.as_slice())
    }

    /// Like [`CallGraph::resolve`], but uses the points-to targets of
    /// the specific indirect `site` when available, only falling back
    /// to the arity-matched address-taken set when points-to was not
    /// run or tracked nothing into the operand.
    pub fn resolve_at(
        &self,
        m: &Module,
        site: InstRef,
        callee: &Callee,
        num_args: usize,
    ) -> Vec<FuncId> {
        if let Callee::Indirect(_) = callee {
            if let Some(ts) = self.indirect_targets(site) {
                return ts.to_vec();
            }
        }
        self.resolve(m, callee, num_args)
    }

    /// Direct callees of `f` (including thread entry points it spawns).
    pub fn callees(&self, f: FuncId) -> &BTreeSet<FuncId> {
        &self.callees[f.index()]
    }

    /// Direct callers of `f`.
    pub fn callers(&self, f: FuncId) -> &BTreeSet<FuncId> {
        &self.callers[f.index()]
    }

    /// Functions whose address is taken.
    pub fn address_taken(&self) -> &BTreeSet<FuncId> {
        &self.address_taken
    }

    /// All call sites in the module.
    pub fn call_sites(&self) -> &[(InstRef, Option<FuncId>)] {
        &self.call_sites
    }

    /// All call sites that may invoke `f`: direct sites targeting it
    /// plus indirect sites whose points-to targets include it (when the
    /// graph was built with [`CallGraph::with_points_to`]). Used by the
    /// vulnerability analyzer's whole-program caller walk when no
    /// dynamic call stack is available.
    pub fn sites_calling(&self, f: FuncId) -> Vec<InstRef> {
        self.call_sites
            .iter()
            .filter(|(site, direct)| match direct {
                Some(t) => *t == f,
                None => self
                    .indirect_targets
                    .get(site)
                    .is_some_and(|ts| ts.contains(&f)),
            })
            .map(|(site, _)| *site)
            .collect()
    }

    /// Possible targets of a call: exact for direct calls; all
    /// address-taken functions with matching arity for indirect calls.
    pub fn resolve(&self, m: &Module, callee: &Callee, num_args: usize) -> Vec<FuncId> {
        match callee {
            Callee::Direct(f) => vec![*f],
            Callee::Indirect(_) => self
                .address_taken
                .iter()
                .copied()
                .filter(|f| m.func(*f).num_params as usize == num_args)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;

    #[test]
    fn direct_and_indirect_edges() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare_func("callee", 1);
        let other = mb.declare_func("other", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(callee);
            b.ret(Some(Operand::Param(0)));
        }
        {
            let mut b = mb.build_func(other);
            b.ret(Some(Operand::Param(0)));
        }
        {
            let mut b = mb.build_func(main);
            let fp = b.func_addr(other);
            b.call(callee, vec![Operand::Const(1)]);
            b.call_indirect(fp, vec![Operand::Const(2)]);
            b.ret(None);
        }
        let m = mb.finish();
        let cg = CallGraph::new(&m);
        assert!(cg.callees(main).contains(&callee));
        assert!(cg.callers(callee).contains(&main));
        assert!(cg.address_taken().contains(&other));
        assert_eq!(cg.call_sites().len(), 2);
        // Indirect resolution: only `other` (arity 1) is address-taken.
        let indirect = cg.resolve(&m, &Callee::Indirect(Operand::Const(0)), 1);
        assert_eq!(indirect, vec![other]);
        let direct = cg.resolve(&m, &Callee::Direct(callee), 1);
        assert_eq!(direct, vec![callee]);
    }

    #[test]
    fn points_to_narrows_indirect_resolution() {
        use crate::analysis::pointsto::PointsTo;
        use crate::inst::Callee;
        let mut mb = ModuleBuilder::new("t");
        let cb = mb.declare_func("cb", 1);
        let other = mb.declare_func("other", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(cb);
            b.ret(Some(Operand::Param(0)));
        }
        {
            let mut b = mb.build_func(other);
            b.ret(Some(Operand::Param(0)));
        }
        let site;
        {
            let mut b = mb.build_func(main);
            let fp = b.func_addr(cb);
            let _decoy = b.func_addr(other); // address-taken, never called
            site = b.call_indirect(fp, vec![Operand::Const(1)]);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        let cg = CallGraph::with_points_to(&m, &pts);
        let sref = crate::ids::InstRef::new(main, site);
        // Arity fallback would say {cb, other}; points-to narrows to cb.
        assert_eq!(cg.indirect_targets(sref), Some(&[cb][..]));
        assert_eq!(
            cg.resolve_at(&m, sref, &Callee::Indirect(Operand::Const(0)), 1),
            vec![cb]
        );
        // The refined edge shows up in the graph and in sites_calling.
        assert!(cg.callees(main).contains(&cb));
        assert!(cg.callers(cb).contains(&main));
        assert!(cg.sites_calling(cb).contains(&sref));
        assert!(!cg.sites_calling(other).contains(&sref));
        // An unrefined graph still falls back to the arity match.
        let plain = CallGraph::new(&m);
        assert_eq!(
            plain.resolve_at(&m, sref, &Callee::Indirect(Operand::Const(0)), 1),
            vec![cb, other]
        );
    }

    #[test]
    fn thread_entries_are_edges() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.declare_func("worker", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(worker);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(worker, 0);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        let cg = CallGraph::new(&m);
        assert!(cg.callees(main).contains(&worker));
        assert!(cg.callers(worker).contains(&main));
    }
}
