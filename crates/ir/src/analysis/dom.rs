//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
//! algorithm).

use super::cfg::Cfg;
use crate::ids::BlockId;
use crate::module::Function;

const UNDEF: u32 = u32::MAX;

/// Immediate-dominator tree over basic blocks.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself;
    /// `UNDEF` for unreachable blocks.
    idom: Vec<u32>,
    root: BlockId,
}

fn compute_idoms(
    n: usize,
    root: usize,
    rpo: &[usize],
    preds: impl Fn(usize) -> Vec<usize>,
) -> Vec<u32> {
    // Reverse-postorder numbering; UNDEF for unreachable blocks.
    let mut rpo_num = vec![UNDEF; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_num[b] = i as u32;
    }
    let mut idom = vec![UNDEF; n];
    idom[root] = root as u32;

    let intersect = |idom: &[u32], rpo_num: &[u32], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a] as usize;
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b] as usize;
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = UNDEF;
            for p in preds(b) {
                if idom[p] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p as u32
                } else {
                    intersect(&idom, &rpo_num, new_idom as usize, p) as u32
                };
            }
            if new_idom != UNDEF && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let rpo: Vec<usize> = cfg.reverse_postorder().iter().map(|b| b.index()).collect();
        let idom = if n == 0 {
            vec![]
        } else {
            compute_idoms(n, 0, &rpo, |b| {
                cfg.preds(BlockId::from_index(b))
                    .iter()
                    .map(|p| p.index())
                    .collect()
            })
        };
        DomTree {
            idom,
            root: BlockId(0),
        }
    }

    /// The immediate dominator of `b` (`None` for the entry or
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let v = *self.idom.get(b.index())?;
        if v == UNDEF || b == self.root {
            None
        } else {
            Some(BlockId(v))
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom.get(b.index()).copied() == Some(UNDEF) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

/// Post-dominator tree, computed over the reverse CFG with a virtual
/// exit node joining all `Ret` blocks (and, as a fallback, blocks with no
/// successors).
#[derive(Clone, Debug)]
pub struct PostDomTree {
    /// `ipdom[b]`; the virtual exit is index `n`; `UNDEF` for blocks that
    /// cannot reach any exit (infinite loops).
    ipdom: Vec<u32>,
    n: usize,
}

impl PostDomTree {
    /// Computes the post-dominator tree of `f`.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        if n == 0 {
            return PostDomTree { ipdom: vec![], n };
        }
        let exit = n; // virtual exit node
                      // Reverse edges: preds-in-reverse-graph = succs-in-forward-graph.
                      // The virtual exit's reverse-graph successors are all exit blocks.
        let exit_blocks: Vec<usize> = (0..n)
            .filter(|&b| cfg.succs(BlockId::from_index(b)).is_empty())
            .collect();
        // Postorder over the reverse graph starting at the virtual exit.
        let rev_succs = |b: usize| -> Vec<usize> {
            if b == exit {
                exit_blocks.clone()
            } else {
                cfg.preds(BlockId::from_index(b))
                    .iter()
                    .map(|p| p.index())
                    .collect()
            }
        };
        let rev_preds = |b: usize| -> Vec<usize> {
            // predecessors in the reverse graph = successors forward,
            // plus the virtual exit for exit blocks.
            let mut v: Vec<usize> = cfg
                .succs(BlockId::from_index(b))
                .iter()
                .map(|s| s.index())
                .collect();
            if v.is_empty() {
                v.push(exit);
            }
            v
        };
        // DFS postorder from exit over reverse edges.
        let total = n + 1;
        let mut visited = vec![false; total];
        let mut post: Vec<usize> = Vec::with_capacity(total);
        let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
        visited[exit] = true;
        while let Some(&mut (b, ref mut child)) = stack.last_mut() {
            let succs = rev_succs(b);
            if *child < succs.len() {
                let s = succs[*child];
                *child += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let mut rpo = post;
        rpo.reverse();
        let ipdom = compute_idoms(total, exit, &rpo, |b| {
            if b == exit {
                vec![]
            } else {
                rev_preds(b)
            }
        });
        PostDomTree { ipdom, n }
    }

    /// The virtual exit node id (useful for walking to the tree root).
    pub fn exit(&self) -> usize {
        self.n
    }

    /// Immediate post-dominator of `b` as a raw node index (may be the
    /// virtual exit). `None` if `b` cannot reach an exit.
    pub fn ipdom_raw(&self, b: usize) -> Option<usize> {
        let v = *self.ipdom.get(b)?;
        if v == UNDEF || b == self.n {
            None
        } else {
            Some(v as usize)
        }
    }

    /// Whether block `a` post-dominates block `b` (reflexive).
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b.index();
        if self.ipdom.get(cur).copied() == Some(UNDEF) {
            return false;
        }
        loop {
            if cur == a.index() {
                return true;
            }
            match self.ipdom_raw(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;
    use crate::module::Module;

    fn diamond() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 1);
        {
            let mut b = mb.build_func(f);
            let b1 = b.block();
            let b2 = b.block();
            let b3 = b.block();
            b.br(Operand::Param(0), b1, b2);
            b.switch_to(b1);
            b.jmp(b3);
            b.switch_to(b2);
            b.jmp(b3);
            b.switch_to(b3);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn diamond_dominators() {
        let m = diamond();
        let cfg = Cfg::new(&m.funcs[0]);
        let dom = DomTree::new(&m.funcs[0], &cfg);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_postdominators() {
        let m = diamond();
        let cfg = Cfg::new(&m.funcs[0]);
        let pdom = PostDomTree::new(&m.funcs[0], &cfg);
        assert!(pdom.postdominates(BlockId(3), BlockId(0)));
        assert!(pdom.postdominates(BlockId(3), BlockId(1)));
        assert!(!pdom.postdominates(BlockId(1), BlockId(0)));
        assert_eq!(pdom.ipdom_raw(0), Some(3));
    }

    #[test]
    fn loop_without_exit_is_handled() {
        // bb0 -> bb1 -> bb1 (self loop, no exit reachable from bb1).
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(f);
            let b1 = b.block();
            b.jmp(b1);
            b.switch_to(b1);
            b.jmp(b1);
        }
        let m = mb.finish();
        let cfg = Cfg::new(&m.funcs[0]);
        let pdom = PostDomTree::new(&m.funcs[0], &cfg);
        // Nothing post-dominates the infinite loop; queries must not hang.
        assert!(!pdom.postdominates(BlockId(0), BlockId(1)));
    }
}
