//! Natural-loop detection.
//!
//! The adhoc-synchronization detector (paper §5.1) needs to know whether
//! the racy "read" instruction sits in a loop and whether a given branch
//! can break out of that loop.

use super::cfg::Cfg;
use super::dom::DomTree;
use crate::ids::{BlockId, InstId};
use crate::module::Function;
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a function.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    loops: Vec<Loop>,
    inst_block: Vec<BlockId>,
}

impl LoopInfo {
    /// Finds natural loops via dominator-identified back edges.
    pub fn new(f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let mut loops: Vec<Loop> = Vec::new();
        for b in 0..f.blocks.len() {
            let b_id = BlockId::from_index(b);
            for &s in cfg.succs(b_id) {
                if dom.dominates(s, b_id) {
                    // Back edge b -> s; collect the natural loop of s.
                    let mut body = BTreeSet::new();
                    body.insert(s);
                    let mut stack = vec![b_id];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in cfg.preds(x) {
                                stack.push(p);
                            }
                        }
                    }
                    // Merge loops with the same header (multiple back
                    // edges).
                    if let Some(existing) = loops.iter_mut().find(|l| l.header == s) {
                        existing.body.extend(body);
                    } else {
                        loops.push(Loop { header: s, body });
                    }
                }
            }
        }
        LoopInfo {
            loops,
            inst_block: f.inst_blocks(),
        }
    }

    /// All loops.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any (smallest body).
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.body.len())
    }

    /// The innermost loop containing instruction `i`.
    pub fn loop_of_inst(&self, i: InstId) -> Option<&Loop> {
        self.innermost_containing(self.inst_block[i.index()])
    }

    /// Whether instruction `i` is inside any loop.
    pub fn inst_in_loop(&self, i: InstId) -> bool {
        self.loop_of_inst(i).is_some()
    }

    /// Whether branch instruction `br` (a block terminator) can leave
    /// `lp`: it has at least one successor outside the loop body.
    pub fn branch_exits_loop(&self, f: &Function, br: InstId, lp: &Loop) -> bool {
        let b = self.inst_block[br.index()];
        if !lp.contains(b) || f.blocks[b.index()].terminator() != br {
            return false;
        }
        f.inst(br).successors().iter().any(|s| !lp.contains(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Pred;
    use crate::module::Module;
    use crate::types::Type;

    /// `while (!flag) {} ; ret` — the canonical adhoc-sync busy wait.
    fn busy_wait() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("flag", 1, Type::I64);
        let f = mb.declare_func("waiter", 0);
        {
            let mut b = mb.build_func(f);
            let head = b.block();
            let exit = b.block();
            b.jmp(head);
            b.switch_to(head);
            let addr = b.global_addr(g);
            let v = b.load(addr, Type::I64);
            let done = b.cmp(Pred::Ne, v, 0);
            b.br(done, exit, head);
            b.switch_to(exit);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn busy_wait_loop_found() {
        let m = busy_wait();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let li = LoopInfo::new(f, &cfg, &dom);
        assert_eq!(li.loops().len(), 1);
        let lp = &li.loops()[0];
        assert_eq!(lp.header, BlockId(1));
        assert!(lp.contains(BlockId(1)));
        assert!(!lp.contains(BlockId(2)));
    }

    #[test]
    fn load_is_in_loop_and_branch_exits() {
        let m = busy_wait();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let li = LoopInfo::new(f, &cfg, &dom);
        // Inst 2 is the load (0=jmp, 1=global_addr, 2=load, 3=cmp, 4=br).
        assert!(li.inst_in_loop(InstId(2)));
        let lp = li.loop_of_inst(InstId(2)).unwrap().clone();
        assert!(li.branch_exits_loop(f, InstId(4), &lp));
        // The entry jmp is outside the loop.
        assert!(!li.inst_in_loop(InstId(0)));
    }
}
