//! Flow-insensitive, field-insensitive Andersen-style points-to
//! analysis.
//!
//! The paper's Algorithm 1 deliberately skips pointer analysis and
//! leans on runtime call stacks instead (§6.1). That blind spot makes
//! any attack whose corrupted value is stored to memory and reloaded
//! elsewhere invisible to the static vulnerability analyzer. This
//! module closes the gap with the cheapest analysis that is still
//! sound for the IR's memory model:
//!
//! * **Abstract locations** ([`AbsLoc`]) name every allocation site
//!   statically: one per global, one per `alloca` instruction, one per
//!   `malloc` instruction, and one per function (for function-pointer
//!   constants). The VM never reuses concrete addresses across
//!   allocation sites (globals are laid out once, heap and stack
//!   cursors only grow), so two accesses with equal concrete addresses
//!   always share an abstract location — the over-approximation
//!   property the soundness tests check.
//! * **Field-insensitive**: a location is a single cell; `gep` is a
//!   copy of its base pointer. Distinct fields of one object therefore
//!   alias, which is conservative.
//! * **Flow-insensitive**: one points-to set per SSA value for the
//!   whole program. SSA already gives def-use precision within a
//!   function; the imprecision is confined to memory cells, which is
//!   what the vulnerability analyzer treats conservatively anyway.
//!
//! Constraints are solved with a standard worklist: base constraints
//! seed the sets, copy edges propagate them, and `load`/`store`/
//! indirect-call constraints add edges on the fly as the sets of their
//! pointer operands grow. Indirect calls are resolved on the fly from
//! the `Func` locations flowing into the callee operand, which is also
//! what [`super::CallGraph`] consumes to refine its arity-based
//! fallback.

use crate::ids::{FuncId, GlobalId, InstId, InstRef};
use crate::inst::{Callee, Inst, Operand};
use crate::module::Module;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An abstract memory location: one per static allocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AbsLoc {
    /// A global variable.
    Global(GlobalId),
    /// The stack object allocated by an `alloca` instruction (all
    /// dynamic instances collapse into one location).
    Alloca(InstRef),
    /// The heap object allocated by a `malloc` instruction (all
    /// dynamic instances collapse into one location).
    Heap(InstRef),
    /// A function, as the target of a function-pointer constant.
    Func(FuncId),
}

impl std::fmt::Display for AbsLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsLoc::Global(g) => write!(f, "{g}"),
            AbsLoc::Alloca(r) => write!(f, "alloca:{r}"),
            AbsLoc::Heap(r) => write!(f, "heap:{r}"),
            AbsLoc::Func(id) => write!(f, "fn:{id}"),
        }
    }
}

/// A pointer variable in the constraint system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Node {
    /// The SSA result of an instruction.
    Inst(InstRef),
    /// The `n`-th parameter of a function.
    Param(FuncId, u32),
    /// The return value of a function.
    Ret(FuncId),
    /// The (single, field-insensitive) cell of an abstract location.
    Cell(AbsLoc),
}

/// Solver statistics, exposed so the pipeline can report the cost of
/// memory-awareness next to its detection gain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointsToStats {
    /// Pointer variables in the constraint graph.
    pub nodes: usize,
    /// Base + copy + complex constraints generated from the IR.
    pub constraints: usize,
    /// Worklist items processed until the fixpoint.
    pub iterations: u64,
}

/// A deferred `load`/`store`/call constraint attached to a pointer
/// node; instantiated each time that node's points-to set grows.
#[derive(Clone, Debug)]
enum Deferred {
    /// `dst ⊇ *p`: the node is loaded through.
    LoadInto(usize),
    /// `*p ⊇ src`: the node is stored through.
    StoreFrom(usize),
    /// The node is the callee operand of an indirect call.
    Call {
        /// The call site.
        site: InstRef,
        /// Argument nodes, in position order (`None` for constants).
        args: Vec<Option<usize>>,
    },
}

/// The solved points-to relation over one module.
#[derive(Debug)]
pub struct PointsTo {
    index: HashMap<Node, usize>,
    sets: Vec<BTreeSet<AbsLoc>>,
    /// Resolved targets per indirect call site (arity-checked,
    /// deterministic order).
    indirect: BTreeMap<InstRef, Vec<FuncId>>,
    stats: PointsToStats,
    empty: BTreeSet<AbsLoc>,
}

/// Constraint-graph state used only while solving.
struct Solver {
    index: HashMap<Node, usize>,
    nodes: Vec<Node>,
    sets: Vec<BTreeSet<AbsLoc>>,
    /// Copy edges: successors per node (`dst ⊇ src`).
    succs: Vec<BTreeSet<usize>>,
    deferred: Vec<Vec<Deferred>>,
    indirect: BTreeMap<InstRef, Vec<FuncId>>,
    /// Indirect-call targets already wired, to keep re-instantiation
    /// idempotent.
    wired_calls: BTreeSet<(InstRef, FuncId)>,
    constraints: usize,
}

impl Solver {
    fn new() -> Self {
        Solver {
            index: HashMap::new(),
            nodes: Vec::new(),
            sets: Vec::new(),
            succs: Vec::new(),
            deferred: Vec::new(),
            indirect: BTreeMap::new(),
            wired_calls: BTreeSet::new(),
            constraints: 0,
        }
    }

    fn node(&mut self, n: Node) -> usize {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len();
        self.index.insert(n, i);
        self.nodes.push(n);
        self.sets.push(BTreeSet::new());
        self.succs.push(BTreeSet::new());
        self.deferred.push(Vec::new());
        i
    }

    /// The node for an operand of function `f`, if it can carry a
    /// pointer (constants cannot).
    fn operand_node(&mut self, f: FuncId, op: Operand) -> Option<usize> {
        match op {
            Operand::Value(v) => Some(self.node(Node::Inst(InstRef::new(f, v)))),
            Operand::Param(p) => Some(self.node(Node::Param(f, p))),
            Operand::Const(_) => None,
        }
    }

    fn base(&mut self, n: usize, loc: AbsLoc, work: &mut Vec<usize>) {
        self.constraints += 1;
        if self.sets[n].insert(loc) {
            work.push(n);
        }
    }

    fn copy(&mut self, src: usize, dst: usize, work: &mut Vec<usize>) {
        self.constraints += 1;
        if src != dst && self.succs[src].insert(dst) && !self.sets[src].is_empty() {
            work.push(src);
        }
    }

    /// Wires parameter/return edges for a resolved indirect call.
    fn wire_call(
        &mut self,
        site: InstRef,
        args: &[Option<usize>],
        target: FuncId,
        m: &Module,
        work: &mut Vec<usize>,
    ) {
        if !self.wired_calls.insert((site, target)) {
            return;
        }
        let callee = m.func(target);
        if !callee.is_internal || callee.num_params as usize != args.len() {
            return;
        }
        for (k, arg) in args.iter().enumerate() {
            if let Some(a) = arg {
                let p = self.node(Node::Param(target, k as u32));
                self.copy(*a, p, work);
            }
        }
        let ret = self.node(Node::Ret(target));
        let res = self.node(Node::Inst(site));
        self.copy(ret, res, work);
    }
}

impl PointsTo {
    /// Builds and solves the points-to constraints of `m`.
    pub fn new(m: &Module) -> Self {
        let mut s = Solver::new();
        let mut work: Vec<usize> = Vec::new();

        // Constraint generation over every internal function.
        for (fi, func) in m.funcs.iter().enumerate() {
            if !func.is_internal {
                continue;
            }
            let fid = FuncId::from_index(fi);
            for (i, inst) in func.insts.iter().enumerate() {
                let iref = InstRef::new(fid, InstId::from_index(i));
                match inst {
                    Inst::GlobalAddr(g) => {
                        let n = s.node(Node::Inst(iref));
                        s.base(n, AbsLoc::Global(*g), &mut work);
                    }
                    Inst::FuncAddr(f) => {
                        let n = s.node(Node::Inst(iref));
                        s.base(n, AbsLoc::Func(*f), &mut work);
                    }
                    Inst::Alloca { .. } => {
                        let n = s.node(Node::Inst(iref));
                        s.base(n, AbsLoc::Alloca(iref), &mut work);
                    }
                    Inst::Malloc { .. } => {
                        let n = s.node(Node::Inst(iref));
                        s.base(n, AbsLoc::Heap(iref), &mut work);
                    }
                    Inst::Gep { base, .. } => {
                        // Field-insensitive: interior pointers alias
                        // their base object.
                        if let Some(b) = s.operand_node(fid, *base) {
                            let n = s.node(Node::Inst(iref));
                            s.copy(b, n, &mut work);
                        }
                    }
                    Inst::Phi { incoming } => {
                        for (_, v) in incoming {
                            if let Some(src) = s.operand_node(fid, *v) {
                                let n = s.node(Node::Inst(iref));
                                s.copy(src, n, &mut work);
                            }
                        }
                    }
                    Inst::Load { addr, .. } | Inst::AtomicLoad { addr } => {
                        if let Some(a) = s.operand_node(fid, *addr) {
                            let n = s.node(Node::Inst(iref));
                            s.constraints += 1;
                            s.deferred[a].push(Deferred::LoadInto(n));
                            if !s.sets[a].is_empty() {
                                work.push(a);
                            }
                        }
                    }
                    Inst::Store { addr, val } | Inst::AtomicStore { addr, val } => {
                        if let (Some(a), Some(v)) =
                            (s.operand_node(fid, *addr), s.operand_node(fid, *val))
                        {
                            s.constraints += 1;
                            s.deferred[a].push(Deferred::StoreFrom(v));
                            if !s.sets[a].is_empty() {
                                work.push(a);
                            }
                        }
                    }
                    Inst::MemCopy { dst, src, .. } => {
                        // Word-level copy through memory: model as a
                        // load from `src`'s cells into a synthetic
                        // value (the memcopy inst itself) stored into
                        // `dst`'s cells.
                        let tmp = s.node(Node::Inst(iref));
                        if let Some(sn) = s.operand_node(fid, *src) {
                            s.constraints += 1;
                            s.deferred[sn].push(Deferred::LoadInto(tmp));
                            if !s.sets[sn].is_empty() {
                                work.push(sn);
                            }
                        }
                        if let Some(dn) = s.operand_node(fid, *dst) {
                            s.constraints += 1;
                            s.deferred[dn].push(Deferred::StoreFrom(tmp));
                            if !s.sets[dn].is_empty() {
                                work.push(dn);
                            }
                        }
                    }
                    Inst::Call { callee, args } => match callee {
                        Callee::Direct(t) => {
                            if m.func(*t).is_internal
                                && m.func(*t).num_params as usize == args.len()
                            {
                                for (k, arg) in args.iter().enumerate() {
                                    if let Some(a) = s.operand_node(fid, *arg) {
                                        let p = s.node(Node::Param(*t, k as u32));
                                        s.copy(a, p, &mut work);
                                    }
                                }
                                let ret = s.node(Node::Ret(*t));
                                let res = s.node(Node::Inst(iref));
                                s.copy(ret, res, &mut work);
                            }
                        }
                        Callee::Indirect(p) => {
                            let arg_nodes: Vec<Option<usize>> = args
                                .iter()
                                .map(|a| s.operand_node(fid, *a))
                                .collect();
                            s.indirect.entry(iref).or_default();
                            if let Some(c) = s.operand_node(fid, *p) {
                                s.constraints += 1;
                                s.deferred[c].push(Deferred::Call {
                                    site: iref,
                                    args: arg_nodes,
                                });
                                if !s.sets[c].is_empty() {
                                    work.push(c);
                                }
                            }
                        }
                    },
                    Inst::ThreadCreate { func, arg } if m.func(*func).is_internal => {
                        if let Some(a) = s.operand_node(fid, *arg) {
                            let p = s.node(Node::Param(*func, 0));
                            s.copy(a, p, &mut work);
                        }
                    }
                    Inst::Ret(Some(v)) => {
                        if let Some(src) = s.operand_node(fid, *v) {
                            let r = s.node(Node::Ret(fid));
                            s.copy(src, r, &mut work);
                        }
                    }
                    _ => {}
                }
            }
        }

        // Worklist solve. Processing a node re-propagates its full set
        // along copy edges and re-instantiates its deferred
        // constraints; newly created edges enqueue their sources, so
        // the loop reaches a fixpoint.
        let mut iterations = 0u64;
        while let Some(n) = work.pop() {
            iterations += 1;
            // Copy propagation: succ ⊇ n.
            let succs: Vec<usize> = s.succs[n].iter().copied().collect();
            for d in succs {
                let add: Vec<AbsLoc> = s.sets[n]
                    .iter()
                    .filter(|l| !s.sets[d].contains(*l))
                    .copied()
                    .collect();
                if !add.is_empty() {
                    s.sets[d].extend(add);
                    work.push(d);
                }
            }
            // Deferred constraints keyed on n's set.
            let deferred = s.deferred[n].clone();
            let locs: Vec<AbsLoc> = s.sets[n].iter().copied().collect();
            for c in deferred {
                match c {
                    Deferred::LoadInto(dst) => {
                        for l in &locs {
                            let cell = s.node(Node::Cell(*l));
                            s.copy(cell, dst, &mut work);
                        }
                    }
                    Deferred::StoreFrom(src) => {
                        for l in &locs {
                            let cell = s.node(Node::Cell(*l));
                            s.copy(src, cell, &mut work);
                        }
                    }
                    Deferred::Call { site, args } => {
                        for l in &locs {
                            if let AbsLoc::Func(t) = l {
                                let targets = s.indirect.entry(site).or_default();
                                let callee = m.func(*t);
                                if callee.is_internal
                                    && callee.num_params as usize == args.len()
                                    && !targets.contains(t)
                                {
                                    targets.push(*t);
                                    targets.sort();
                                }
                                s.wire_call(site, &args, *t, m, &mut work);
                            }
                        }
                    }
                }
            }
        }

        let stats = PointsToStats {
            nodes: s.nodes.len(),
            constraints: s.constraints,
            iterations,
        };
        PointsTo {
            index: s.index,
            sets: s.sets,
            indirect: s.indirect,
            stats,
            empty: BTreeSet::new(),
        }
    }

    fn set_of(&self, n: Node) -> &BTreeSet<AbsLoc> {
        self.index
            .get(&n)
            .map(|&i| &self.sets[i])
            .unwrap_or(&self.empty)
    }

    /// Points-to set of an instruction's SSA result (empty when the
    /// result is not a pointer the analysis tracked).
    pub fn pts_inst(&self, r: InstRef) -> &BTreeSet<AbsLoc> {
        self.set_of(Node::Inst(r))
    }

    /// Points-to set of an operand evaluated in function `f`.
    pub fn pts_operand(&self, f: FuncId, op: Operand) -> &BTreeSet<AbsLoc> {
        match op {
            Operand::Value(v) => self.set_of(Node::Inst(InstRef::new(f, v))),
            Operand::Param(p) => self.set_of(Node::Param(f, p)),
            Operand::Const(_) => &self.empty,
        }
    }

    /// What the (single) cell of an abstract location may hold.
    pub fn cell(&self, l: AbsLoc) -> &BTreeSet<AbsLoc> {
        self.set_of(Node::Cell(l))
    }

    /// May the two pointer operands refer to the same object?
    ///
    /// Conservative: returns `true` when either set is empty, because
    /// an empty set means the analysis could not track the value (it
    /// was synthesized from input or arithmetic), not that it points
    /// nowhere.
    pub fn may_alias(&self, fa: FuncId, a: Operand, fb: FuncId, b: Operand) -> bool {
        let sa = self.pts_operand(fa, a);
        let sb = self.pts_operand(fb, b);
        if sa.is_empty() || sb.is_empty() {
            return true;
        }
        sa.iter().any(|l| sb.contains(l))
    }

    /// Resolved targets of an indirect call site: internal functions of
    /// matching arity whose address flows into the callee operand.
    /// `None` when `site` is not an indirect call; an empty slice when
    /// nothing flowed in (callers should fall back to an arity match).
    pub fn resolve_targets(&self, site: InstRef) -> Option<&[FuncId]> {
        self.indirect.get(&site).map(|v| v.as_slice())
    }

    /// All indirect call sites seen, with their resolved targets.
    pub fn indirect_sites(&self) -> impl Iterator<Item = (InstRef, &[FuncId])> + '_ {
        self.indirect.iter().map(|(r, v)| (*r, v.as_slice()))
    }

    /// Solver statistics.
    pub fn stats(&self) -> PointsToStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Type;

    #[test]
    fn globals_and_geps_alias_their_base() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 4, Type::I64);
        let h = mb.global("h", 4, Type::I64);
        let f = mb.declare_func("f", 0);
        let (ga, gp, ha);
        {
            let mut b = mb.build_func(f);
            ga = b.global_addr(g);
            gp = b.gep(ga, 2);
            ha = b.global_addr(h);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        let gref = InstRef::new(f, ga);
        let gpref = InstRef::new(f, gp);
        assert_eq!(
            pts.pts_inst(gref).iter().collect::<Vec<_>>(),
            vec![&AbsLoc::Global(g)]
        );
        // Field-insensitive: the gep aliases its base.
        assert!(pts.may_alias(f, ga.into(), f, gp.into()));
        assert_eq!(pts.pts_inst(gpref), pts.pts_inst(gref));
        // Distinct globals do not alias.
        assert!(!pts.may_alias(f, ga.into(), f, ha.into()));
    }

    #[test]
    fn store_load_through_global_cell() {
        // p = malloc; store gcell, p; q = load gcell  =>  q aliases p.
        let mut mb = ModuleBuilder::new("t");
        let cell = mb.global("cell", 1, Type::Ptr);
        let f = mb.declare_func("f", 0);
        let (p, q);
        {
            let mut b = mb.build_func(f);
            p = b.malloc(4);
            let ca = b.global_addr(cell);
            b.store(ca, p);
            q = b.load(ca, Type::Ptr);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        let heap = AbsLoc::Heap(InstRef::new(f, p));
        assert!(pts.pts_inst(InstRef::new(f, q)).contains(&heap));
        assert!(pts.may_alias(f, p.into(), f, q.into()));
        assert!(pts.cell(AbsLoc::Global(cell)).contains(&heap));
    }

    #[test]
    fn phi_cycles_terminate_and_merge() {
        // A loop whose phi merges an alloca with a gep over itself:
        // the classic copy cycle the worklist must terminate on.
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 0);
        let (a, phi);
        {
            let mut b = mb.build_func(f);
            a = b.alloca(8);
            let head = b.block();
            let body = b.block();
            let exit = b.block();
            b.jmp(head);
            b.switch_to(head);
            phi = b.phi(vec![]);
            let go = b.load(a, Type::I64);
            b.br(go, body, exit);
            b.switch_to(body);
            let step = b.gep(phi, 1);
            b.jmp(head);
            b.switch_to(exit);
            b.ret(None);
            b.set_phi(
                phi,
                vec![
                    (crate::BlockId(0), a.into()),
                    (crate::BlockId(2), step.into()),
                ],
            );
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        let obj = AbsLoc::Alloca(InstRef::new(f, a));
        assert!(pts.pts_inst(InstRef::new(f, phi)).contains(&obj));
        assert!(pts.stats().iterations > 0);
    }

    #[test]
    fn address_taken_functions_resolve_indirect_calls() {
        let mut mb = ModuleBuilder::new("t");
        let cb = mb.declare_func("cb", 1);
        let other = mb.declare_func("other", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(cb);
            b.ret(Some(Operand::Param(0)));
        }
        {
            let mut b = mb.build_func(other);
            b.ret(Some(Operand::Param(0)));
        }
        let site;
        {
            let mut b = mb.build_func(main);
            let fp = b.func_addr(cb);
            // `other` is address-taken too, but its address never
            // flows into this call.
            let _unused = b.func_addr(other);
            site = b.call_indirect(fp, vec![Operand::Const(1)]);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        let sref = InstRef::new(main, site);
        // Points-to narrows the arity fallback {cb, other} to {cb}.
        assert_eq!(pts.resolve_targets(sref), Some(&[cb][..]));
    }

    #[test]
    fn function_pointer_through_memory_resolves() {
        // store table, &cb; fp = load table; fp() — the relay shape.
        let mut mb = ModuleBuilder::new("t");
        let table = mb.global("table", 1, Type::FuncPtr);
        let cb = mb.declare_func("cb", 0);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(cb);
            b.ret(None);
        }
        let site;
        {
            let mut b = mb.build_func(main);
            let fa = b.func_addr(cb);
            let ta = b.global_addr(table);
            b.store(ta, fa);
            let fp = b.load(ta, Type::FuncPtr);
            site = b.call_indirect(fp, vec![]);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        assert_eq!(
            pts.resolve_targets(InstRef::new(main, site)),
            Some(&[cb][..])
        );
    }

    #[test]
    fn global_initializers_do_not_invent_pointers() {
        // Integer initializers are data, not addresses: the cell of an
        // initialized global starts empty, and a pointer loaded from it
        // has an empty (conservatively aliasing) set.
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_init("g", 2, vec![0x1000, 0x2000], Type::I64);
        let h = mb.global("h", 1, Type::I64);
        let f = mb.declare_func("f", 0);
        let (ld, ha);
        {
            let mut b = mb.build_func(f);
            let ga = b.global_addr(g);
            ld = b.load(ga, Type::I64);
            ha = b.global_addr(h);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        assert!(pts.cell(AbsLoc::Global(g)).is_empty());
        assert!(pts.pts_inst(InstRef::new(f, ld)).is_empty());
        // Empty sets alias everything (conservative).
        assert!(pts.may_alias(f, ld.into(), f, ha.into()));
    }

    #[test]
    fn params_and_returns_flow_interprocedurally() {
        // id(p) { return p; } main: a = alloca; r = id(a)
        let mut mb = ModuleBuilder::new("t");
        let id = mb.declare_func("id", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(id);
            b.ret(Some(Operand::Param(0)));
        }
        let (a, r);
        {
            let mut b = mb.build_func(main);
            a = b.alloca(1);
            r = b.call(id, vec![a.into()]);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        let obj = AbsLoc::Alloca(InstRef::new(main, a));
        assert!(pts.pts_inst(InstRef::new(main, r)).contains(&obj));
        assert!(pts.pts_operand(id, Operand::Param(0)).contains(&obj));
    }

    #[test]
    fn thread_entry_argument_flows() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.declare_func("worker", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(worker);
            b.ret(None);
        }
        let buf;
        {
            let mut b = mb.build_func(main);
            buf = b.malloc(16);
            let t = b.thread_create(worker, buf);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        let pts = PointsTo::new(&m);
        assert!(pts
            .pts_operand(worker, Operand::Param(0))
            .contains(&AbsLoc::Heap(InstRef::new(main, buf))));
    }
}
