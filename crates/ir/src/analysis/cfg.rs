//! Control-flow graph construction and orderings.

use crate::ids::BlockId;
use crate::module::Function;

/// Successor/predecessor edges of a function's basic blocks.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `f` from its block terminators.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (b, block) in f.blocks.iter().enumerate() {
            if block.insts.is_empty() {
                continue;
            }
            for s in f.inst(block.terminator()).successors() {
                succs[b].push(s);
                preds[s.index()].push(BlockId::from_index(b));
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// excluded.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.len()];
        let mut post = Vec::with_capacity(self.len());
        // Iterative DFS with an explicit stack of (block, next-child).
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        if !self.is_empty() {
            visited[0] = true;
            stack.push((BlockId(0), 0));
        }
        while let Some(&mut (b, ref mut child)) = stack.last_mut() {
            let succs = self.succs(b);
            if *child < succs.len() {
                let s = succs[*child];
                *child += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;

    /// Builds a diamond: bb0 -> {bb1, bb2} -> bb3.
    fn diamond() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 1);
        {
            let mut b = mb.build_func(f);
            let b1 = b.block();
            let b2 = b.block();
            let b3 = b.block();
            b.br(Operand::Param(0), b1, b2);
            b.switch_to(b1);
            b.jmp(b3);
            b.switch_to(b2);
            b.jmp(b3);
            b.switch_to(b3);
            b.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn edges() {
        let m = diamond();
        let cfg = Cfg::new(&m.funcs[0]);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.preds(BlockId(0)).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let m = diamond();
        let cfg = Cfg::new(&m.funcs[0]);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }
}
