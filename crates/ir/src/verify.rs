//! Structural IR verification.
//!
//! Catches malformed programs (missing terminators, dangling operand
//! references, phi/pred mismatches, bad call arity) before the VM or the
//! static analyzers ever see them.

use crate::analysis::cfg::Cfg;
use crate::ids::FuncId;
use crate::inst::{Callee, Inst, Operand};
use crate::module::Module;
use std::fmt;

/// One structural defect found by [`verify_module`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function containing the defect (`None` for module-level defects).
    pub func: Option<FuncId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(id) => write!(f, "{id}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(errors: &mut Vec<VerifyError>, func: Option<FuncId>, message: String) {
    errors.push(VerifyError { func, message });
}

/// Verifies every internal function of `m`.
///
/// # Errors
///
/// Returns all defects found; an empty `Ok(())` means the module is
/// structurally sound (it may still loop forever or race — that is the
/// corpus's job).
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();

    for (fi, f) in m.funcs.iter().enumerate() {
        let fid = FuncId::from_index(fi);
        if !f.is_internal {
            if !f.blocks.is_empty() || !f.insts.is_empty() {
                err(
                    &mut errors,
                    Some(fid),
                    "external function must have no body".into(),
                );
            }
            continue;
        }
        if f.blocks.is_empty() {
            err(&mut errors, Some(fid), "function has no blocks".into());
            continue;
        }
        if f.locs.len() != f.insts.len() {
            err(
                &mut errors,
                Some(fid),
                "location table length mismatch".into(),
            );
        }
        // Each instruction must appear in exactly one block.
        let mut seen = vec![0u8; f.insts.len()];
        for (bi, block) in f.blocks.iter().enumerate() {
            if block.insts.is_empty() {
                err(&mut errors, Some(fid), format!("bb{bi} is empty"));
                continue;
            }
            for (k, &i) in block.insts.iter().enumerate() {
                if i.index() >= f.insts.len() {
                    err(
                        &mut errors,
                        Some(fid),
                        format!("bb{bi} references out-of-range {i}"),
                    );
                    continue;
                }
                seen[i.index()] += 1;
                let inst = f.inst(i);
                let last = k + 1 == block.insts.len();
                if last && !inst.is_terminator() {
                    err(
                        &mut errors,
                        Some(fid),
                        format!("bb{bi} does not end in a terminator"),
                    );
                }
                if !last && inst.is_terminator() {
                    err(
                        &mut errors,
                        Some(fid),
                        format!("terminator {i} in the middle of bb{bi}"),
                    );
                }
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            if count == 0 {
                err(
                    &mut errors,
                    Some(fid),
                    format!("%{i} not placed in any block"),
                );
            } else if count > 1 {
                err(
                    &mut errors,
                    Some(fid),
                    format!("%{i} placed in {count} blocks"),
                );
            }
        }

        // Operand sanity.
        let mut ops = Vec::new();
        for (ii, inst) in f.insts.iter().enumerate() {
            inst.operands(&mut ops);
            for op in &ops {
                match op {
                    Operand::Value(v) => {
                        if v.index() >= f.insts.len() {
                            err(
                                &mut errors,
                                Some(fid),
                                format!("%{ii} uses out-of-range {v}"),
                            );
                        } else if !f.inst(*v).has_result() {
                            err(
                                &mut errors,
                                Some(fid),
                                format!("%{ii} uses {v}, which produces no value"),
                            );
                        }
                    }
                    Operand::Param(p) => {
                        if *p >= f.num_params {
                            err(
                                &mut errors,
                                Some(fid),
                                format!("%{ii} uses missing parameter {p}"),
                            );
                        }
                    }
                    Operand::Const(_) => {}
                }
            }
            // Branch targets and callee references.
            match inst {
                Inst::Br {
                    then_bb, else_bb, ..
                } => {
                    for t in [then_bb, else_bb] {
                        if t.index() >= f.blocks.len() {
                            err(
                                &mut errors,
                                Some(fid),
                                format!("%{ii} branches to missing {t}"),
                            );
                        }
                    }
                }
                Inst::Jmp(t) if t.index() >= f.blocks.len() => {
                    err(
                        &mut errors,
                        Some(fid),
                        format!("%{ii} jumps to missing {t}"),
                    );
                }
                Inst::Call {
                    callee: Callee::Direct(c),
                    args,
                } => {
                    if c.index() >= m.funcs.len() {
                        err(&mut errors, Some(fid), format!("%{ii} calls missing {c}"));
                    } else if m.func(*c).num_params as usize != args.len() {
                        err(
                            &mut errors,
                            Some(fid),
                            format!(
                                "%{ii} calls {} with {} args (expects {})",
                                m.func(*c).name,
                                args.len(),
                                m.func(*c).num_params
                            ),
                        );
                    }
                }
                Inst::ThreadCreate { func, .. } => {
                    if func.index() >= m.funcs.len() {
                        err(
                            &mut errors,
                            Some(fid),
                            format!("%{ii} spawns missing {func}"),
                        );
                    } else if m.func(*func).num_params != 1 {
                        err(
                            &mut errors,
                            Some(fid),
                            format!(
                                "%{ii} spawns {}, which must take exactly one parameter",
                                m.func(*func).name
                            ),
                        );
                    }
                }
                Inst::FuncAddr(c) if c.index() >= m.funcs.len() => {
                    err(
                        &mut errors,
                        Some(fid),
                        format!("%{ii} takes address of missing {c}"),
                    );
                }
                Inst::GlobalAddr(g) if g.index() >= m.globals.len() => {
                    err(
                        &mut errors,
                        Some(fid),
                        format!("%{ii} references missing {g}"),
                    );
                }
                _ => {}
            }
        }

        // Phi incoming blocks must be actual predecessors.
        let cfg = Cfg::new(f);
        let owner = f.inst_blocks();
        for (ii, inst) in f.insts.iter().enumerate() {
            if let Inst::Phi { incoming } = inst {
                let b = owner[ii];
                let preds = cfg.preds(b);
                if incoming.len() != preds.len() {
                    err(
                        &mut errors,
                        Some(fid),
                        format!(
                            "%{ii} phi has {} incoming edges, block has {} preds",
                            incoming.len(),
                            preds.len()
                        ),
                    );
                }
                for (src, _) in incoming {
                    if !preds.contains(src) {
                        err(
                            &mut errors,
                            Some(fid),
                            format!("%{ii} phi names non-predecessor {src}"),
                        );
                    }
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Panics with a readable listing if `m` fails verification. Intended
/// for corpus constructors and tests.
///
/// # Panics
///
/// Panics when [`verify_module`] reports any defect.
pub fn assert_verified(m: &Module) {
    if let Err(errors) = verify_module(m) {
        let listing: Vec<String> = errors.iter().map(ToString::to_string).collect();
        panic!(
            "module `{}` failed verification:\n  {}",
            m.name,
            listing.join("\n  ")
        );
    }
}

#[allow(unused)]
fn _assert_traits() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<VerifyError>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::InstId;
    use crate::module::{Block, Function};
    use crate::types::Type;

    #[test]
    fn well_formed_module_passes() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(f);
            let a = b.global_addr(g);
            b.store(a, 1i64);
            b.ret(None);
        }
        assert!(verify_module(&mb.finish()).is_ok());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut m = Module::new("t");
        m.funcs.push(Function {
            name: "f".into(),
            num_params: 0,
            insts: vec![Inst::Yield],
            locs: vec![crate::module::Loc::UNKNOWN],
            blocks: vec![Block {
                insts: vec![InstId(0)],
            }],
            is_internal: true,
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn dangling_operand_detected() {
        let mut m = Module::new("t");
        m.funcs.push(Function {
            name: "f".into(),
            num_params: 0,
            insts: vec![Inst::Ret(Some(Operand::Value(InstId(9))))],
            locs: vec![crate::module::Loc::UNKNOWN],
            blocks: vec![Block {
                insts: vec![InstId(0)],
            }],
            is_internal: true,
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out-of-range")));
    }

    #[test]
    fn bad_call_arity_detected() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare_func("callee", 2);
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(callee);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(f);
            b.call(callee, vec![Operand::Const(1)]); // wrong arity
            b.ret(None);
        }
        let errs = verify_module(&mb.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("args")));
    }

    #[test]
    fn thread_entry_arity_enforced() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.declare_func("worker", 2);
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(worker);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(f);
            b.thread_create(worker, 0);
            b.ret(None);
        }
        let errs = verify_module(&mb.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("one parameter")));
    }

    #[test]
    fn use_of_valueless_inst_detected() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(f);
            let y = b.yield_now(); // produces no value
            b.ret(Some(y.into()));
        }
        let errs = verify_module(&mb.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no value")));
    }
}
