//! Newtyped identifiers for IR entities.
//!
//! Every entity in an [`crate::Module`] is referred to by a small index
//! newtype rather than a reference, which keeps the IR trivially
//! serializable and lets analyses store dense side tables.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A function within a module.
    FuncId,
    "@f"
);
id_type!(
    /// A basic block within a function.
    BlockId,
    "bb"
);
id_type!(
    /// An instruction within a function. Instructions double as SSA
    /// values: an operand referring to `InstId(n)` reads the result of
    /// instruction `n` of the same function.
    InstId,
    "%"
);
id_type!(
    /// A global variable within a module.
    GlobalId,
    "@g"
);

/// A module-wide reference to one instruction: the unit every race and
/// vulnerability report is expressed in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstRef {
    /// Function containing the instruction.
    pub func: FuncId,
    /// The instruction within [`InstRef::func`].
    pub inst: InstId,
}

impl InstRef {
    /// Convenience constructor.
    pub fn new(func: FuncId, inst: InstId) -> Self {
        Self { func, inst }
    }
}

impl fmt::Debug for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.func, self.inst)
    }
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.func, self.inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let f = FuncId::from_index(7);
        assert_eq!(f.index(), 7);
        assert_eq!(format!("{f}"), "@f7");
    }

    #[test]
    fn inst_ref_display() {
        let r = InstRef::new(FuncId(1), InstId(4));
        assert_eq!(format!("{r}"), "@f1:%4");
        assert_eq!(format!("{r:?}"), "@f1:%4");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(BlockId(1) < BlockId(2));
        assert!(InstId(0) < InstId(10));
    }
}
