//! Textual IR rendering, LLVM-assembly-flavoured.
//!
//! OWL's vulnerable-input hints quote propagation chains "in LLVM IR
//! format" (paper §6.1, Figure 5); this printer produces the equivalent
//! rendering for our IR.

use crate::ids::{FuncId, InstId, InstRef};
use crate::inst::{Callee, Inst, Operand};
use crate::module::Module;
use std::fmt::Write as _;

fn operand(m: &Module, f: &crate::module::Function, op: Operand) -> String {
    let _ = (m, f);
    op.to_string()
}

/// Renders one instruction, without its location comment.
pub fn inst_to_string(m: &Module, fid: FuncId, id: InstId) -> String {
    let f = m.func(fid);
    let inst = f.inst(id);
    let o = |op: Operand| operand(m, f, op);
    let lhs = if inst.has_result() {
        format!("{id} = ")
    } else {
        String::new()
    };
    let rhs = match inst {
        Inst::Bin { op, a, b } => format!("{op} {}, {}", o(*a), o(*b)),
        Inst::Cmp { pred, a, b } => format!("cmp {pred} {}, {}", o(*a), o(*b)),
        Inst::GlobalAddr(g) => format!("globaladdr @{}", m.global(*g).name),
        Inst::FuncAddr(f2) => format!("funcaddr @{}", m.func(*f2).name),
        Inst::Alloca { size } => format!("alloca {size}"),
        Inst::Malloc { size } => format!("malloc {}", o(*size)),
        Inst::Free { ptr } => format!("free {}", o(*ptr)),
        Inst::Load { addr, ty } => format!("load {ty}, {}", o(*addr)),
        Inst::Store { addr, val } => format!("store {}, {}", o(*val), o(*addr)),
        Inst::Gep { base, offset } => format!("gep {}, {}", o(*base), o(*offset)),
        Inst::Br {
            cond,
            then_bb,
            else_bb,
        } => format!("br {}, {then_bb}, {else_bb}", o(*cond)),
        Inst::Jmp(b) => format!("jmp {b}"),
        Inst::Ret(None) => "ret".into(),
        Inst::Ret(Some(v)) => format!("ret {}", o(*v)),
        Inst::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(|a| o(*a)).collect();
            match callee {
                Callee::Direct(c) => format!("call @{}({})", m.func(*c).name, args.join(", ")),
                Callee::Indirect(p) => format!("call *{}({})", o(*p), args.join(", ")),
            }
        }
        Inst::Phi { incoming } => {
            let parts: Vec<String> = incoming
                .iter()
                .map(|(b, v)| format!("[{b}: {}]", o(*v)))
                .collect();
            format!("phi {}", parts.join(", "))
        }
        Inst::ThreadCreate { func, arg } => {
            format!("thread_create @{}({})", m.func(*func).name, o(*arg))
        }
        Inst::ThreadJoin { tid } => format!("thread_join {}", o(*tid)),
        Inst::MutexLock { addr } => format!("lock {}", o(*addr)),
        Inst::MutexUnlock { addr } => format!("unlock {}", o(*addr)),
        Inst::CondWait { cond, mutex } => format!("cond_wait {}, {}", o(*cond), o(*mutex)),
        Inst::CondSignal { cond } => format!("cond_signal {}", o(*cond)),
        Inst::CondBroadcast { cond } => format!("cond_broadcast {}", o(*cond)),
        Inst::AtomicLoad { addr } => format!("atomic_load {}", o(*addr)),
        Inst::AtomicStore { addr, val } => format!("atomic_store {}, {}", o(*val), o(*addr)),
        Inst::Yield => "yield".into(),
        Inst::IoDelay { amount } => format!("io_delay {}", o(*amount)),
        Inst::Input { idx } => format!("input {}", o(*idx)),
        Inst::Output { chan, val } => format!("output {}, {}", o(*chan), o(*val)),
        Inst::MemCopy { dst, src, len } => {
            format!("memcopy {}, {}, {}", o(*dst), o(*src), o(*len))
        }
        Inst::SetPrivilege { level } => format!("set_privilege {}", o(*level)),
        Inst::FileAccess { fd, data } => format!("file_access {}, {}", o(*fd), o(*data)),
        Inst::Exec { cmd } => format!("exec {}", o(*cmd)),
    };
    format!("{lhs}{rhs}")
}

/// Renders one instruction with its `; file:line` comment — the style
/// quoted inside vulnerable-input hints.
pub fn inst_with_loc(m: &Module, r: InstRef) -> String {
    let text = inst_to_string(m, r.func, r.inst);
    let loc = m.format_loc(r);
    format!("{text}  ; {loc}")
}

/// Renders a whole function.
pub fn func_to_string(m: &Module, fid: FuncId) -> String {
    let f = m.func(fid);
    let mut out = String::new();
    let params: Vec<String> = (0..f.num_params).map(|p| format!("%arg{p}")).collect();
    if !f.is_internal {
        let _ = writeln!(out, "extern func @{}({})", f.name, params.join(", "));
        return out;
    }
    let _ = writeln!(out, "func @{}({}) {{", f.name, params.join(", "));
    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{bi}:");
        for &i in &block.insts {
            let text = inst_to_string(m, fid, i);
            let loc = f.loc(i);
            if loc.is_known() {
                let _ = writeln!(
                    out,
                    "  {text}  ; {}",
                    m.format_loc(crate::ids::InstRef::new(fid, i))
                );
            } else {
                let _ = writeln!(out, "  {text}");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module. The output is accepted back by
/// [`crate::parse_module`].
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", m.name);
    for g in &m.globals {
        if g.init.is_empty() {
            let _ = writeln!(out, "global @{} : {} x {}", g.name, g.size, g.ty);
        } else {
            let init: Vec<String> = g.init.iter().map(ToString::to_string).collect();
            let _ = writeln!(
                out,
                "global @{} : {} x {} = [{}]",
                g.name,
                g.size,
                g.ty,
                init.join(", ")
            );
        }
    }
    for fi in 0..m.funcs.len() {
        let _ = writeln!(out);
        out.push_str(&func_to_string(m, FuncId::from_index(fi)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Type;

    #[test]
    fn renders_module_text() {
        let mut mb = ModuleBuilder::new("demo");
        let g = mb.global("dying", 1, Type::I64);
        let ext = mb.declare_external("kill", 1);
        let f = mb.declare_func("f", 1);
        {
            let mut b = mb.build_func(f);
            b.loc("demo.c", 4);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            b.call(ext, vec![v.into()]);
            b.ret(Some(Operand::Param(0)));
        }
        let m = mb.finish();
        let text = module_to_string(&m);
        assert!(text.contains("global @dying : 1 x i64"));
        assert!(text.contains("extern func @kill(%arg0)"));
        assert!(text.contains("%1 = load i64, %0"));
        assert!(text.contains("call @kill(%1)"));
        assert!(text.contains("ret %arg0"));
    }

    #[test]
    fn inst_with_loc_has_comment() {
        let mut mb = ModuleBuilder::new("demo");
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(f);
            b.loc("x.c", 42);
            b.ret(None);
        }
        let m = mb.finish();
        let s = inst_with_loc(&m, InstRef::new(f, InstId(0)));
        assert_eq!(s, "ret  ; x.c:42");
    }
}
