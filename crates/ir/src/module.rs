//! Modules, functions, blocks, globals, and source locations.

use crate::ids::{BlockId, FuncId, GlobalId, InstId, InstRef};
use crate::inst::Inst;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A source location attached to an instruction, used to render reports
/// in the paper's `file.c:line` style (Figures 4 and 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Loc {
    /// Index into [`Module::files`]; `u32::MAX` means "unknown".
    pub file: u32,
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
}

impl Loc {
    /// The unknown location.
    pub const UNKNOWN: Loc = Loc {
        file: u32::MAX,
        line: 0,
    };

    /// Whether this location carries real information.
    pub fn is_known(self) -> bool {
        self.file != u32::MAX
    }
}

/// A global variable: a fixed-size region of shared memory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Symbolic name (e.g. `dying`, `buf`).
    pub name: String,
    /// Size in words.
    pub size: u32,
    /// Initial values; missing words are zero.
    pub init: Vec<i64>,
    /// Declared element type (for race-verifier hints).
    pub ty: Type,
}

/// A basic block: a straight-line run of instructions ending in a
/// terminator.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Instruction ids in execution order; the last must be a terminator.
    pub insts: Vec<InstId>,
}

impl Block {
    /// The block's terminator instruction id.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty (the verifier rejects such blocks).
    pub fn terminator(&self) -> InstId {
        *self.insts.last().expect("empty basic block")
    }
}

/// A function in SSA form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Symbolic name (e.g. `stack_check`).
    pub name: String,
    /// Number of parameters.
    pub num_params: u32,
    /// All instructions, indexed by [`InstId`].
    pub insts: Vec<Inst>,
    /// Per-instruction source locations (parallel to `insts`).
    pub locs: Vec<Loc>,
    /// Basic blocks, indexed by [`BlockId`]; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Whether the function body is available for analysis. External
    /// functions (the paper's "library code not compiled into bitcode",
    /// §7.1) have `is_internal == false` and are skipped by
    /// inter-procedural analysis.
    pub is_internal: bool,
}

impl Function {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The instruction payload for `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// The source location of `id`.
    pub fn loc(&self, id: InstId) -> Loc {
        self.locs.get(id.index()).copied().unwrap_or(Loc::UNKNOWN)
    }

    /// The block containing each instruction (dense side table).
    pub fn inst_blocks(&self) -> Vec<BlockId> {
        let mut owner = vec![BlockId(0); self.insts.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &i in &block.insts {
                owner[i.index()] = BlockId::from_index(b);
            }
        }
        owner
    }

    /// Iterates `(InstId, &Inst)` in block order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Inst)> + '_ {
        self.blocks
            .iter()
            .flat_map(move |b| b.insts.iter().map(move |&i| (i, self.inst(i))))
    }
}

/// A whole program: functions, globals, and file names for locations.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Human-readable program name (e.g. `libsafe`).
    pub name: String,
    /// All functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// All globals, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// Interned file names for [`Loc`].
    pub files: Vec<String>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// The function payload for `id`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// The global payload for `id`.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from_index)
    }

    /// Interns a file name, returning its index for [`Loc`].
    pub fn intern_file(&mut self, file: &str) -> u32 {
        if let Some(i) = self.files.iter().position(|f| f == file) {
            return i as u32;
        }
        self.files.push(file.to_string());
        (self.files.len() - 1) as u32
    }

    /// The instruction behind a module-wide reference.
    pub fn inst(&self, r: InstRef) -> &Inst {
        self.func(r.func).inst(r.inst)
    }

    /// Renders `r`'s location in the paper's `file.c:line` style, falling
    /// back to the function name when unknown.
    pub fn format_loc(&self, r: InstRef) -> String {
        let f = self.func(r.func);
        let loc = f.loc(r.inst);
        if loc.is_known() {
            format!(
                "{}:{}",
                self.files
                    .get(loc.file as usize)
                    .map(String::as_str)
                    .unwrap_or("<unknown>"),
                loc.line
            )
        } else {
            format!("{}:{}", f.name, r.inst)
        }
    }

    /// Renders `r` as `func (file:line)`, the Figure-4 call-stack frame
    /// style.
    pub fn format_frame(&self, r: InstRef) -> String {
        format!("{} ({})", self.func(r.func).name, self.format_loc(r))
    }

    /// Total number of instructions across all functions (a rough LoC
    /// proxy reported in Table 1).
    pub fn total_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.insts.len()).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module {} ({} funcs)", self.name, self.funcs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    fn tiny_module() -> Module {
        let mut m = Module::new("tiny");
        let file = m.intern_file("tiny.c");
        m.globals.push(Global {
            name: "flag".into(),
            size: 1,
            init: vec![0],
            ty: Type::I64,
        });
        m.funcs.push(Function {
            name: "main".into(),
            num_params: 0,
            insts: vec![Inst::Ret(Some(Operand::Const(0)))],
            locs: vec![Loc { file, line: 3 }],
            blocks: vec![Block {
                insts: vec![InstId(0)],
            }],
            is_internal: true,
        });
        m
    }

    #[test]
    fn lookup_by_name() {
        let m = tiny_module();
        assert_eq!(m.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(m.global_by_name("flag"), Some(GlobalId(0)));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    fn format_locations() {
        let m = tiny_module();
        let r = InstRef::new(FuncId(0), InstId(0));
        assert_eq!(m.format_loc(r), "tiny.c:3");
        assert_eq!(m.format_frame(r), "main (tiny.c:3)");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut m = Module::new("x");
        let a = m.intern_file("a.c");
        let b = m.intern_file("a.c");
        assert_eq!(a, b);
        assert_eq!(m.files.len(), 1);
    }

    #[test]
    fn inst_blocks_side_table() {
        let m = tiny_module();
        let owners = m.func(FuncId(0)).inst_blocks();
        assert_eq!(owners, vec![BlockId(0)]);
    }

    #[test]
    fn total_insts_counts_all_functions() {
        let m = tiny_module();
        assert_eq!(m.total_insts(), 1);
    }
}
