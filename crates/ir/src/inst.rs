//! The instruction set.
//!
//! The IR is a pragmatic SSA subset of LLVM bitcode: enough to express the
//! concurrent C programs the paper studies (racy flags, racy pointers,
//! adhoc busy-wait synchronization, buffer manipulation) plus explicit
//! intrinsics for the five vulnerable-site classes of §3.2 of the paper:
//! memory operations, NULL pointer dereferences, privilege operations,
//! file operations, and process-forking operations.

use crate::ids::{BlockId, FuncId, GlobalId, InstId};
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An operand of an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A constant integer.
    Const(i64),
    /// The SSA result of another instruction in the same function.
    Value(InstId),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
}

impl Operand {
    /// The instruction this operand reads, if any.
    pub fn as_value(self) -> Option<InstId> {
        match self {
            Operand::Value(v) => Some(v),
            _ => None,
        }
    }

    /// The constant this operand holds, if any.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Operand::Const(c) => Some(c),
            _ => None,
        }
    }
}

impl From<i64> for Operand {
    fn from(value: i64) -> Self {
        Operand::Const(value)
    }
}

impl From<InstId> for Operand {
    fn from(value: InstId) -> Self {
        Operand::Value(value)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Value(v) => write!(f, "{v}"),
            Operand::Param(p) => write!(f, "%arg{p}"),
        }
    }
}

/// Binary arithmetic / logic operators.
///
/// `SubU` is unsigned wrapping subtraction: the VM flags a wrap as an
/// integer-overflow event, which is how the Apache-46215 busy-counter
/// underflow of the paper's Figure 8 manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping signed addition.
    Add,
    /// Wrapping signed subtraction.
    Sub,
    /// Unsigned wrapping subtraction (flags underflow at runtime).
    SubU,
    /// Wrapping signed multiplication.
    Mul,
    /// Signed division (flags division by zero at runtime).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::SubU => "subu",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        };
        f.write_str(s)
    }
}

/// Comparison predicates. Signed unless suffixed with `U`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than (used by size checks that underflow can bypass).
    LtU,
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Lt => "lt",
            Pred::Le => "le",
            Pred::Gt => "gt",
            Pred::Ge => "ge",
            Pred::LtU => "ltu",
        };
        f.write_str(s)
    }
}

/// The target of a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// A statically known function.
    Direct(FuncId),
    /// A function pointer computed at runtime. Calling a corrupted or
    /// NULL function pointer is one of the paper's vulnerable-site
    /// classes (Figure 2, Figure 6).
    Indirect(Operand),
}

/// One SSA instruction.
///
/// Instructions double as values: operands refer to the producing
/// instruction's [`InstId`]. Terminators (`Br`, `Jmp`, `Ret`) must appear
/// only as the last instruction of a block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// Binary arithmetic: `op a, b`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Comparison producing 0 or 1.
    Cmp {
        /// Predicate.
        pred: Pred,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Address of a global variable.
    GlobalAddr(GlobalId),
    /// Address of a function (a function-pointer constant).
    FuncAddr(FuncId),
    /// Allocate `size` words on the current thread's stack; yields the
    /// base address.
    Alloca {
        /// Number of words.
        size: u32,
    },
    /// Allocate `size` words on the shared heap; yields the base address.
    Malloc {
        /// Number of words.
        size: Operand,
    },
    /// Release a heap allocation. Double frees are flagged at runtime.
    Free {
        /// Base address previously returned by `Malloc`.
        ptr: Operand,
    },
    /// Load one word. `ty` is the static type of the loaded value and is
    /// what the dynamic race verifier reports as "the type of the
    /// variable" (§5.2).
    Load {
        /// Address to read.
        addr: Operand,
        /// Declared type of the value read.
        ty: Type,
    },
    /// Store one word.
    Store {
        /// Address to write.
        addr: Operand,
        /// Value to write.
        val: Operand,
    },
    /// Pointer arithmetic: `base + offset` (word offsets).
    Gep {
        /// Base pointer.
        base: Operand,
        /// Word offset.
        offset: Operand,
    },
    /// Conditional branch on a non-zero condition.
    Br {
        /// Condition value.
        cond: Operand,
        /// Successor when `cond != 0`.
        then_bb: BlockId,
        /// Successor when `cond == 0`.
        else_bb: BlockId,
    },
    /// Unconditional branch.
    Jmp(BlockId),
    /// Return from the current function.
    Ret(Option<Operand>),
    /// Call a function; yields its return value (0 for void callees).
    Call {
        /// Call target.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// SSA phi node merging values per predecessor block.
    Phi {
        /// `(predecessor, value)` pairs.
        incoming: Vec<(BlockId, Operand)>,
    },
    /// Spawn a thread running `func(arg)`; yields the thread id.
    ThreadCreate {
        /// Thread entry function (must take one parameter).
        func: FuncId,
        /// Argument passed to the entry function.
        arg: Operand,
    },
    /// Join a previously created thread.
    ThreadJoin {
        /// Thread id from `ThreadCreate`.
        tid: Operand,
    },
    /// Acquire the mutex at `addr` (blocking).
    MutexLock {
        /// Mutex cell address.
        addr: Operand,
    },
    /// Release the mutex at `addr`.
    MutexUnlock {
        /// Mutex cell address.
        addr: Operand,
    },
    /// Wait on the condition variable at `cond`: atomically releases
    /// the mutex at `mutex`, sleeps until signalled, then re-acquires
    /// the mutex before continuing (pthread `cond_wait` semantics,
    /// including spurious-wakeup-free delivery). Must be executed while
    /// holding `mutex`; otherwise the wait proceeds without a release.
    CondWait {
        /// Condition-variable cell address.
        cond: Operand,
        /// Associated mutex cell address.
        mutex: Operand,
    },
    /// Wake one thread waiting on the condition variable at `cond`
    /// (no-op when nobody waits — the classic lost-wakeup semantics).
    CondSignal {
        /// Condition-variable cell address.
        cond: Operand,
    },
    /// Wake every thread waiting on the condition variable at `cond`.
    CondBroadcast {
        /// Condition-variable cell address.
        cond: Operand,
    },
    /// Sequentially consistent atomic load (never part of a data race).
    AtomicLoad {
        /// Address to read.
        addr: Operand,
    },
    /// Sequentially consistent atomic store (never part of a data race).
    AtomicStore {
        /// Address to write.
        addr: Operand,
        /// Value to write.
        val: Operand,
    },
    /// Voluntarily yield the scheduler.
    Yield,
    /// An input-controlled IO delay of `amount` scheduler steps. Models
    /// the paper's observation (§3.1) that attackers craft input timings
    /// for IO operations to widen the vulnerable window between racy
    /// statements.
    IoDelay {
        /// Number of scheduler steps to stay descheduled.
        amount: Operand,
    },
    /// Read word `idx` of the program input vector (0 if out of range).
    Input {
        /// Input index.
        idx: Operand,
    },
    /// Emit an observable output value on channel `chan`. Used by corpus
    /// programs to expose attack consequences (e.g. which worker served a
    /// request, which file got written).
    Output {
        /// Output channel.
        chan: Operand,
        /// Emitted value.
        val: Operand,
    },
    /// `memcpy`/`strcpy`-style bulk copy of `len` words. A vulnerable
    /// site of class [`VulnClass::MemoryOp`]: copies that run past the
    /// destination allocation corrupt adjacent memory (and are flagged),
    /// exactly like the paper's Libsafe (Fig. 1) and Apache-25520
    /// (Fig. 7) attacks.
    MemCopy {
        /// Destination base address.
        dst: Operand,
        /// Source base address.
        src: Operand,
        /// Number of words copied.
        len: Operand,
    },
    /// Set the process privilege level; class [`VulnClass::PrivilegeOp`]
    /// (`setuid()` in the paper).
    SetPrivilege {
        /// New privilege level (0 = root in the corpus models).
        level: Operand,
    },
    /// Write `data` to file descriptor `fd`; class
    /// [`VulnClass::FileOp`] (`access()`/log writes in the paper).
    FileAccess {
        /// Target descriptor.
        fd: Operand,
        /// Word written.
        data: Operand,
    },
    /// Spawn a process from `cmd`; class [`VulnClass::ExecOp`]
    /// (`eval()`/`exec()` in the paper). Executing attacker-controlled
    /// `cmd` is code injection.
    Exec {
        /// Command word.
        cmd: Operand,
    },
}

/// The five explicit vulnerable-site classes of §3.2, plus the runtime
/// consequences the VM can observe when one is actually exploited.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VulnClass {
    /// Bulk memory operations (`strcpy`, `memcpy`).
    MemoryOp,
    /// Dereference of a possibly-NULL or corrupted pointer (loads,
    /// stores, indirect calls through corrupted pointers).
    NullDeref,
    /// Privilege transitions (`setuid`).
    PrivilegeOp,
    /// File operations (`access`, log writes).
    FileOp,
    /// Process forking / exec operations.
    ExecOp,
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VulnClass::MemoryOp => "memory-op",
            VulnClass::NullDeref => "null-deref",
            VulnClass::PrivilegeOp => "privilege-op",
            VulnClass::FileOp => "file-op",
            VulnClass::ExecOp => "exec-op",
        };
        f.write_str(s)
    }
}

impl Inst {
    /// Whether this instruction must terminate a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::Jmp(_) | Inst::Ret(_))
    }

    /// Whether this instruction produces an SSA value usable as an
    /// operand.
    pub fn has_result(&self) -> bool {
        matches!(
            self,
            Inst::Bin { .. }
                | Inst::Cmp { .. }
                | Inst::GlobalAddr(_)
                | Inst::FuncAddr(_)
                | Inst::Alloca { .. }
                | Inst::Malloc { .. }
                | Inst::Load { .. }
                | Inst::Gep { .. }
                | Inst::Call { .. }
                | Inst::Phi { .. }
                | Inst::ThreadCreate { .. }
                | Inst::AtomicLoad { .. }
                | Inst::Input { .. }
        )
    }

    /// Static type of the produced value ([`Type::I64`] when untyped).
    pub fn result_type(&self) -> Type {
        match self {
            Inst::GlobalAddr(_) | Inst::Alloca { .. } | Inst::Malloc { .. } | Inst::Gep { .. } => {
                Type::Ptr
            }
            Inst::FuncAddr(_) => Type::FuncPtr,
            Inst::Load { ty, .. } => *ty,
            _ => Type::I64,
        }
    }

    /// The vulnerable-site class of this instruction, if it is one.
    ///
    /// Loads, stores, and indirect calls are *potential* NULL-dereference
    /// sites; the static analyzer only reports them when a corrupted
    /// value reaches the pointer operand (Algorithm 1).
    pub fn vuln_class(&self) -> Option<VulnClass> {
        match self {
            Inst::MemCopy { .. } | Inst::Free { .. } => Some(VulnClass::MemoryOp),
            Inst::SetPrivilege { .. } => Some(VulnClass::PrivilegeOp),
            Inst::FileAccess { .. } => Some(VulnClass::FileOp),
            Inst::Exec { .. } => Some(VulnClass::ExecOp),
            Inst::Load { .. } | Inst::Store { .. } => Some(VulnClass::NullDeref),
            Inst::Call {
                callee: Callee::Indirect(_),
                ..
            } => Some(VulnClass::NullDeref),
            _ => None,
        }
    }

    /// Whether the instruction is an *explicit* vulnerable site — one of
    /// the four intrinsic classes that are dangerous regardless of which
    /// operand is corrupted (everything except the pointer-dereference
    /// class, which requires corruption of the address operand itself).
    pub fn is_explicit_vuln_site(&self) -> bool {
        matches!(
            self,
            Inst::MemCopy { .. }
                | Inst::Free { .. }
                | Inst::SetPrivilege { .. }
                | Inst::FileAccess { .. }
                | Inst::Exec { .. }
        )
    }

    /// Collects all operands into `out` (cleared first).
    pub fn operands(&self, out: &mut Vec<Operand>) {
        out.clear();
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => out.extend([*a, *b]),
            Inst::GlobalAddr(_)
            | Inst::FuncAddr(_)
            | Inst::Alloca { .. }
            | Inst::Jmp(_)
            | Inst::Yield => {}
            Inst::Malloc { size } => out.push(*size),
            Inst::Free { ptr } => out.push(*ptr),
            Inst::Load { addr, .. } | Inst::AtomicLoad { addr } => out.push(*addr),
            Inst::Store { addr, val } | Inst::AtomicStore { addr, val } => {
                out.extend([*addr, *val])
            }
            Inst::Gep { base, offset } => out.extend([*base, *offset]),
            Inst::Br { cond, .. } => out.push(*cond),
            Inst::Ret(v) => out.extend(v.iter().copied()),
            Inst::Call { callee, args } => {
                if let Callee::Indirect(f) = callee {
                    out.push(*f);
                }
                out.extend(args.iter().copied());
            }
            Inst::Phi { incoming } => out.extend(incoming.iter().map(|(_, v)| *v)),
            Inst::ThreadCreate { arg, .. } => out.push(*arg),
            Inst::ThreadJoin { tid } => out.push(*tid),
            Inst::MutexLock { addr } | Inst::MutexUnlock { addr } => out.push(*addr),
            Inst::CondWait { cond, mutex } => out.extend([*cond, *mutex]),
            Inst::CondSignal { cond } | Inst::CondBroadcast { cond } => out.push(*cond),
            Inst::IoDelay { amount } => out.push(*amount),
            Inst::Input { idx } => out.push(*idx),
            Inst::Output { chan, val } => out.extend([*chan, *val]),
            Inst::MemCopy { dst, src, len } => out.extend([*dst, *src, *len]),
            Inst::SetPrivilege { level } => out.push(*level),
            Inst::FileAccess { fd, data } => out.extend([*fd, *data]),
            Inst::Exec { cmd } => out.push(*cmd),
        }
    }

    /// Successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Br {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Inst::Jmp(bb) => vec![*bb],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators_classified() {
        assert!(Inst::Jmp(BlockId(0)).is_terminator());
        assert!(Inst::Ret(None).is_terminator());
        assert!(!Inst::Yield.is_terminator());
    }

    #[test]
    fn result_types() {
        assert_eq!(Inst::Alloca { size: 4 }.result_type(), Type::Ptr);
        assert_eq!(Inst::FuncAddr(FuncId(0)).result_type(), Type::FuncPtr);
        assert_eq!(
            Inst::Load {
                addr: Operand::Const(0),
                ty: Type::Ptr
            }
            .result_type(),
            Type::Ptr
        );
    }

    #[test]
    fn vuln_classes() {
        let memcpy = Inst::MemCopy {
            dst: Operand::Const(0),
            src: Operand::Const(0),
            len: Operand::Const(1),
        };
        assert_eq!(memcpy.vuln_class(), Some(VulnClass::MemoryOp));
        assert!(memcpy.is_explicit_vuln_site());

        let load = Inst::Load {
            addr: Operand::Const(0),
            ty: Type::I64,
        };
        assert_eq!(load.vuln_class(), Some(VulnClass::NullDeref));
        assert!(!load.is_explicit_vuln_site());

        let indirect = Inst::Call {
            callee: Callee::Indirect(Operand::Const(0)),
            args: vec![],
        };
        assert_eq!(indirect.vuln_class(), Some(VulnClass::NullDeref));
    }

    #[test]
    fn operand_collection() {
        let mut ops = Vec::new();
        Inst::MemCopy {
            dst: Operand::Value(InstId(1)),
            src: Operand::Param(0),
            len: Operand::Const(8),
        }
        .operands(&mut ops);
        assert_eq!(
            ops,
            vec![
                Operand::Value(InstId(1)),
                Operand::Param(0),
                Operand::Const(8)
            ]
        );
    }

    #[test]
    fn successor_listing() {
        let br = Inst::Br {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Inst::Ret(None).successors().is_empty());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(5i64), Operand::Const(5));
        assert_eq!(Operand::from(InstId(3)), Operand::Value(InstId(3)));
        assert_eq!(Operand::Const(9).as_const(), Some(9));
        assert_eq!(Operand::Value(InstId(2)).as_value(), Some(InstId(2)));
        assert_eq!(Operand::Param(1).as_value(), None);
    }
}
