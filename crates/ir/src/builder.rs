//! Ergonomic construction of modules and functions.
//!
//! ```
//! use owl_ir::{ModuleBuilder, Operand, Type};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let flag = mb.global("flag", 1, Type::I64);
//! let main = mb.declare_func("main", 0);
//! {
//!     let mut f = mb.build_func(main);
//!     f.loc("demo.c", 10);
//!     let addr = f.global_addr(flag);
//!     f.store(addr, Operand::Const(1));
//!     f.ret(Some(Operand::Const(0)));
//! }
//! let module = mb.finish();
//! assert_eq!(module.funcs.len(), 1);
//! ```

use crate::ids::{BlockId, FuncId, GlobalId, InstId};
use crate::inst::{BinOp, Callee, Inst, Operand, Pred};
use crate::module::{Block, Function, Global, Loc, Module};
use crate::types::Type;

/// Builds a [`Module`] incrementally.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts a new module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Adds a zero-initialized global of `size` words.
    pub fn global(&mut self, name: impl Into<String>, size: u32, ty: Type) -> GlobalId {
        self.global_init(name, size, vec![], ty)
    }

    /// Adds a global with explicit initial values (missing words are 0).
    pub fn global_init(
        &mut self,
        name: impl Into<String>,
        size: u32,
        init: Vec<i64>,
        ty: Type,
    ) -> GlobalId {
        assert!(init.len() <= size as usize, "init longer than global");
        let id = GlobalId::from_index(self.module.globals.len());
        self.module.globals.push(Global {
            name: name.into(),
            size,
            init,
            ty,
        });
        id
    }

    /// Declares a function (body added later via [`Self::build_func`]).
    pub fn declare_func(&mut self, name: impl Into<String>, num_params: u32) -> FuncId {
        let id = FuncId::from_index(self.module.funcs.len());
        self.module.funcs.push(Function {
            name: name.into(),
            num_params,
            insts: vec![],
            locs: vec![],
            blocks: vec![Block::default()],
            is_internal: true,
        });
        id
    }

    /// Declares an external function: calls to it are modeled as no-ops
    /// returning 0 and inter-procedural analysis does not descend into it
    /// (paper §7.1: uncompiled library code).
    pub fn declare_external(&mut self, name: impl Into<String>, num_params: u32) -> FuncId {
        let id = self.declare_func(name, num_params);
        self.module.funcs[id.index()].is_internal = false;
        self.module.funcs[id.index()].blocks.clear();
        id
    }

    /// Opens a [`FunctionBuilder`] for the body of `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` is external.
    pub fn build_func(&mut self, func: FuncId) -> FunctionBuilder<'_> {
        assert!(
            self.module.funcs[func.index()].is_internal,
            "cannot build body of external function"
        );
        FunctionBuilder {
            module: &mut self.module,
            func,
            cur_block: BlockId(0),
            cur_loc: Loc::UNKNOWN,
        }
    }

    /// Finishes construction and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read-only access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Appends instructions to one function. Obtained from
/// [`ModuleBuilder::build_func`].
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    cur_block: BlockId,
    cur_loc: Loc,
}

impl FunctionBuilder<'_> {
    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// Creates a new (empty) basic block.
    pub fn block(&mut self) -> BlockId {
        let f = &mut self.module.funcs[self.func.index()];
        let id = BlockId::from_index(f.blocks.len());
        f.blocks.push(Block::default());
        id
    }

    /// Makes `block` the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur_block = block;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur_block
    }

    /// Sets the source location applied to subsequently built
    /// instructions.
    pub fn loc(&mut self, file: &str, line: u32) {
        let file = self.module.intern_file(file);
        self.cur_loc = Loc { file, line };
    }

    /// Sets only the line of the current location.
    pub fn line(&mut self, line: u32) {
        self.cur_loc.line = line;
    }

    fn push(&mut self, inst: Inst) -> InstId {
        let loc = self.cur_loc;
        let block = self.cur_block;
        let f = &mut self.module.funcs[self.func.index()];
        let id = InstId::from_index(f.insts.len());
        f.insts.push(inst);
        f.locs.push(loc);
        f.blocks[block.index()].insts.push(id);
        id
    }

    /// `op a, b`.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> InstId {
        self.push(Inst::Bin {
            op,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Wrapping signed addition.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> InstId {
        self.bin(BinOp::Add, a, b)
    }

    /// Wrapping signed subtraction.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> InstId {
        self.bin(BinOp::Sub, a, b)
    }

    /// Unsigned wrapping subtraction (underflow is flagged at runtime).
    pub fn sub_unsigned(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> InstId {
        self.bin(BinOp::SubU, a, b)
    }

    /// Comparison producing 0/1.
    pub fn cmp(&mut self, pred: Pred, a: impl Into<Operand>, b: impl Into<Operand>) -> InstId {
        self.push(Inst::Cmp {
            pred,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Address of a global.
    pub fn global_addr(&mut self, g: GlobalId) -> InstId {
        self.push(Inst::GlobalAddr(g))
    }

    /// Function-pointer constant.
    pub fn func_addr(&mut self, f: FuncId) -> InstId {
        self.push(Inst::FuncAddr(f))
    }

    /// Stack allocation of `size` words.
    pub fn alloca(&mut self, size: u32) -> InstId {
        self.push(Inst::Alloca { size })
    }

    /// Heap allocation of `size` words.
    pub fn malloc(&mut self, size: impl Into<Operand>) -> InstId {
        self.push(Inst::Malloc { size: size.into() })
    }

    /// Heap release.
    pub fn free(&mut self, ptr: impl Into<Operand>) -> InstId {
        self.push(Inst::Free { ptr: ptr.into() })
    }

    /// Typed load.
    pub fn load(&mut self, addr: impl Into<Operand>, ty: Type) -> InstId {
        self.push(Inst::Load {
            addr: addr.into(),
            ty,
        })
    }

    /// Store.
    pub fn store(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) -> InstId {
        self.push(Inst::Store {
            addr: addr.into(),
            val: val.into(),
        })
    }

    /// Pointer arithmetic (`base + offset` words).
    pub fn gep(&mut self, base: impl Into<Operand>, offset: impl Into<Operand>) -> InstId {
        self.push(Inst::Gep {
            base: base.into(),
            offset: offset.into(),
        })
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) -> InstId {
        self.push(Inst::Br {
            cond: cond.into(),
            then_bb,
            else_bb,
        })
    }

    /// Unconditional branch.
    pub fn jmp(&mut self, target: BlockId) -> InstId {
        self.push(Inst::Jmp(target))
    }

    /// Return.
    pub fn ret(&mut self, val: Option<Operand>) -> InstId {
        self.push(Inst::Ret(val))
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> InstId {
        self.push(Inst::Call {
            callee: Callee::Direct(callee),
            args,
        })
    }

    /// Indirect call through a function pointer.
    pub fn call_indirect(&mut self, func_ptr: impl Into<Operand>, args: Vec<Operand>) -> InstId {
        self.push(Inst::Call {
            callee: Callee::Indirect(func_ptr.into()),
            args,
        })
    }

    /// Phi node.
    pub fn phi(&mut self, incoming: Vec<(BlockId, Operand)>) -> InstId {
        self.push(Inst::Phi { incoming })
    }

    /// Replaces the incoming list of a previously built phi.
    /// Loop-carried phis need this: their back-edge values are only
    /// built after the phi itself.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a `Phi` instruction.
    pub fn set_phi(&mut self, phi: InstId, incoming: Vec<(BlockId, Operand)>) {
        let f = &mut self.module.funcs[self.func.index()];
        match &mut f.insts[phi.index()] {
            Inst::Phi { incoming: inc } => *inc = incoming,
            other => panic!("set_phi on non-phi instruction {other:?}"),
        }
    }

    /// Spawn a thread running `func(arg)`.
    pub fn thread_create(&mut self, func: FuncId, arg: impl Into<Operand>) -> InstId {
        self.push(Inst::ThreadCreate {
            func,
            arg: arg.into(),
        })
    }

    /// Join a thread.
    pub fn thread_join(&mut self, tid: impl Into<Operand>) -> InstId {
        self.push(Inst::ThreadJoin { tid: tid.into() })
    }

    /// Acquire a mutex.
    pub fn lock(&mut self, addr: impl Into<Operand>) -> InstId {
        self.push(Inst::MutexLock { addr: addr.into() })
    }

    /// Release a mutex.
    pub fn unlock(&mut self, addr: impl Into<Operand>) -> InstId {
        self.push(Inst::MutexUnlock { addr: addr.into() })
    }

    /// Condition-variable wait (releases `mutex`, sleeps, re-acquires).
    pub fn cond_wait(&mut self, cond: impl Into<Operand>, mutex: impl Into<Operand>) -> InstId {
        self.push(Inst::CondWait {
            cond: cond.into(),
            mutex: mutex.into(),
        })
    }

    /// Wake one waiter on a condition variable.
    pub fn cond_signal(&mut self, cond: impl Into<Operand>) -> InstId {
        self.push(Inst::CondSignal { cond: cond.into() })
    }

    /// Wake all waiters on a condition variable.
    pub fn cond_broadcast(&mut self, cond: impl Into<Operand>) -> InstId {
        self.push(Inst::CondBroadcast { cond: cond.into() })
    }

    /// Sequentially consistent atomic load.
    pub fn atomic_load(&mut self, addr: impl Into<Operand>) -> InstId {
        self.push(Inst::AtomicLoad { addr: addr.into() })
    }

    /// Sequentially consistent atomic store.
    pub fn atomic_store(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) -> InstId {
        self.push(Inst::AtomicStore {
            addr: addr.into(),
            val: val.into(),
        })
    }

    /// Scheduler yield.
    pub fn yield_now(&mut self) -> InstId {
        self.push(Inst::Yield)
    }

    /// Input-controlled IO delay.
    pub fn io_delay(&mut self, amount: impl Into<Operand>) -> InstId {
        self.push(Inst::IoDelay {
            amount: amount.into(),
        })
    }

    /// Read a program input word.
    pub fn input(&mut self, idx: impl Into<Operand>) -> InstId {
        self.push(Inst::Input { idx: idx.into() })
    }

    /// Emit an observable output.
    pub fn output(&mut self, chan: impl Into<Operand>, val: impl Into<Operand>) -> InstId {
        self.push(Inst::Output {
            chan: chan.into(),
            val: val.into(),
        })
    }

    /// Bulk memory copy (vulnerable site: memory op).
    pub fn memcopy(
        &mut self,
        dst: impl Into<Operand>,
        src: impl Into<Operand>,
        len: impl Into<Operand>,
    ) -> InstId {
        self.push(Inst::MemCopy {
            dst: dst.into(),
            src: src.into(),
            len: len.into(),
        })
    }

    /// Privilege transition (vulnerable site: privilege op).
    pub fn set_privilege(&mut self, level: impl Into<Operand>) -> InstId {
        self.push(Inst::SetPrivilege {
            level: level.into(),
        })
    }

    /// File write (vulnerable site: file op).
    pub fn file_access(&mut self, fd: impl Into<Operand>, data: impl Into<Operand>) -> InstId {
        self.push(Inst::FileAccess {
            fd: fd.into(),
            data: data.into(),
        })
    }

    /// Process exec (vulnerable site: exec op).
    pub fn exec(&mut self, cmd: impl Into<Operand>) -> InstId {
        self.push(Inst::Exec { cmd: cmd.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_branching_function() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let f = mb.declare_func("f", 1);
        {
            let mut b = mb.build_func(f);
            b.loc("t.c", 1);
            let addr = b.global_addr(g);
            let v = b.load(addr, Type::I64);
            let then_bb = b.block();
            let else_bb = b.block();
            b.br(v, then_bb, else_bb);
            b.switch_to(then_bb);
            b.ret(Some(Operand::Const(1)));
            b.switch_to(else_bb);
            b.ret(Some(Operand::Const(0)));
        }
        let m = mb.finish();
        let f = m.func(FuncId(0));
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.insts.len(), 5);
        assert!(f.inst(f.blocks[0].terminator()).is_terminator());
    }

    #[test]
    fn external_functions_have_no_body() {
        let mut mb = ModuleBuilder::new("t");
        let e = mb.declare_external("strlen", 1);
        let m = mb.finish();
        assert!(!m.func(e).is_internal);
        assert!(m.func(e).blocks.is_empty());
    }

    #[test]
    #[should_panic(expected = "external")]
    fn building_external_body_panics() {
        let mut mb = ModuleBuilder::new("t");
        let e = mb.declare_external("strlen", 1);
        let _ = mb.build_func(e);
    }

    #[test]
    fn locations_are_attached() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(f);
            b.loc("a.c", 7);
            b.yield_now();
            b.line(9);
            b.ret(None);
        }
        let m = mb.finish();
        let func = m.func(FuncId(0));
        assert_eq!(func.loc(InstId(0)).line, 7);
        assert_eq!(func.loc(InstId(1)).line, 9);
        assert_eq!(m.files, vec!["a.c".to_string()]);
    }

    #[test]
    #[should_panic(expected = "init longer")]
    fn oversized_init_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.global_init("g", 1, vec![1, 2], Type::I64);
    }
}
