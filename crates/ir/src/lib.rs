//! # owl-ir
//!
//! The SSA intermediate representation underlying the OWL
//! concurrency-attack detection framework — a Rust reproduction of
//! *"Understanding and Detecting Concurrency Attacks"* (DSN 2018).
//!
//! The original OWL consumed LLVM bitcode produced by `clang`. This
//! crate substitutes a compact SSA IR with the same analytical surface:
//! virtual registers with def-use chains, basic blocks with explicit
//! control dependence, loads/stores over a shared address space, direct
//! and indirect calls, and intrinsics for the paper's five
//! vulnerable-site classes (§3.2): memory operations, NULL pointer
//! dereferences, privilege operations, file operations, and
//! process-forking operations.
//!
//! ## Example
//!
//! ```
//! use owl_ir::{ModuleBuilder, Operand, Type, verify_module};
//!
//! let mut mb = ModuleBuilder::new("hello");
//! let flag = mb.global("flag", 1, Type::I64);
//! let main = mb.declare_func("main", 0);
//! {
//!     let mut f = mb.build_func(main);
//!     let addr = f.global_addr(flag);
//!     f.store(addr, Operand::Const(1));
//!     f.ret(None);
//! }
//! let module = mb.finish();
//! verify_module(&module).expect("structurally sound");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod builder;
mod ids;
mod inst;
mod module;
mod parser;
mod printer;
mod types;
mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use ids::{BlockId, FuncId, GlobalId, InstId, InstRef};
pub use inst::{BinOp, Callee, Inst, Operand, Pred, VulnClass};
pub use module::{Block, Function, Global, Loc, Module};
pub use parser::{parse_module, ParseError};
pub use printer::{func_to_string, inst_to_string, inst_with_loc, module_to_string};
pub use types::Type;
pub use verify::{assert_verified, verify_module, VerifyError};
