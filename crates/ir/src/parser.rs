//! Textual IR parsing — the inverse of [`crate::module_to_string`].
//!
//! Lets programs be written, stored, and diffed as text (the way LLVM
//! assembly round-trips through `llvm-as`/`llvm-dis`). The grammar is
//! exactly what the printer emits:
//!
//! ```text
//! module name
//! global @flag : 1 x i64
//! global @table : 4 x ptr = [0, 7]
//!
//! func @main() {
//! bb0:
//!   %0 = globaladdr @flag
//!   store 1, %0  ; main.c:3
//!   ret
//! }
//! extern func @write(%arg0)
//! ```
//!
//! Instruction result ids (`%N =`) are taken from the text and re-mapped
//! to fresh ids in textual order, so hand-edited numbering need not be
//! dense.

use crate::ids::{BlockId, FuncId, GlobalId, InstId};
use crate::inst::{BinOp, Callee, Inst, Operand, Pred};
use crate::module::{Block, Function, Global, Loc, Module};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    match s {
        "i64" => Ok(Type::I64),
        "ptr" => Ok(Type::Ptr),
        "funcptr" => Ok(Type::FuncPtr),
        other => err(line, format!("unknown type `{other}`")),
    }
}

struct FuncRefs {
    funcs: HashMap<String, FuncId>,
    globals: HashMap<String, GlobalId>,
}

struct LineCtx<'a> {
    refs: &'a FuncRefs,
    /// textual `%N` -> actual InstId within the function.
    values: HashMap<u32, InstId>,
    line: usize,
}

impl LineCtx<'_> {
    fn operand(&self, s: &str) -> Result<Operand, ParseError> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("%arg") {
            let n: u32 = rest
                .parse()
                .map_err(|_| self.e(format!("bad parameter `{s}`")))?;
            return Ok(Operand::Param(n));
        }
        if let Some(rest) = s.strip_prefix('%') {
            let n: u32 = rest
                .parse()
                .map_err(|_| self.e(format!("bad value ref `{s}`")))?;
            let id = self
                .values
                .get(&n)
                .ok_or_else(|| self.e(format!("use of undefined value `%{n}`")))?;
            return Ok(Operand::Value(*id));
        }
        let c: i64 = s
            .parse()
            .map_err(|_| self.e(format!("bad operand `{s}`")))?;
        Ok(Operand::Const(c))
    }

    fn block(&self, s: &str) -> Result<BlockId, ParseError> {
        let rest = s
            .trim()
            .strip_prefix("bb")
            .ok_or_else(|| self.e(format!("bad block ref `{s}`")))?;
        let n: u32 = rest
            .parse()
            .map_err(|_| self.e(format!("bad block ref `{s}`")))?;
        Ok(BlockId(n))
    }

    fn func(&self, s: &str) -> Result<FuncId, ParseError> {
        let name = s
            .trim()
            .strip_prefix('@')
            .ok_or_else(|| self.e(format!("bad function ref `{s}`")))?;
        self.refs
            .funcs
            .get(name)
            .copied()
            .ok_or_else(|| self.e(format!("unknown function `@{name}`")))
    }

    fn global(&self, s: &str) -> Result<GlobalId, ParseError> {
        let name = s
            .trim()
            .strip_prefix('@')
            .ok_or_else(|| self.e(format!("bad global ref `{s}`")))?;
        self.refs
            .globals
            .get(name)
            .copied()
            .ok_or_else(|| self.e(format!("unknown global `@{name}`")))
    }

    fn e(&self, message: String) -> ParseError {
        ParseError {
            line: self.line,
            message,
        }
    }
}

/// Splits `a, b, c` at top-level commas (phi brackets nest).
fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, ch) in s.char_indices() {
        match ch {
            '[' | '(' => depth += 1,
            ']' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

fn parse_call_args(ctx: &LineCtx<'_>, s: &str) -> Result<Vec<Operand>, ParseError> {
    let inner = s
        .trim()
        .strip_suffix(')')
        .ok_or_else(|| ctx.e(format!("missing `)` in call `{s}`")))?;
    split_args(inner)
        .into_iter()
        .map(|a| ctx.operand(a))
        .collect()
}

fn bin_op(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "subu" => BinOp::SubU,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        _ => return None,
    })
}

fn pred_of(name: &str, line: usize) -> Result<Pred, ParseError> {
    Ok(match name {
        "eq" => Pred::Eq,
        "ne" => Pred::Ne,
        "lt" => Pred::Lt,
        "le" => Pred::Le,
        "gt" => Pred::Gt,
        "ge" => Pred::Ge,
        "ltu" => Pred::LtU,
        other => return err(line, format!("unknown predicate `{other}`")),
    })
}

/// Parses one instruction body (no `%N = ` prefix, no loc comment).
fn parse_inst(ctx: &LineCtx<'_>, text: &str) -> Result<Inst, ParseError> {
    let (op, rest) = match text.split_once(' ') {
        Some((a, b)) => (a, b.trim()),
        None => (text, ""),
    };
    if let Some(bo) = bin_op(op) {
        let args = split_args(rest);
        if args.len() != 2 {
            return err(ctx.line, format!("`{op}` expects 2 operands"));
        }
        return Ok(Inst::Bin {
            op: bo,
            a: ctx.operand(args[0])?,
            b: ctx.operand(args[1])?,
        });
    }
    match op {
        "cmp" => {
            let (p, rest) = rest
                .split_once(' ')
                .ok_or_else(|| ctx.e("cmp needs a predicate".into()))?;
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "cmp expects 2 operands");
            }
            Ok(Inst::Cmp {
                pred: pred_of(p, ctx.line)?,
                a: ctx.operand(args[0])?,
                b: ctx.operand(args[1])?,
            })
        }
        "globaladdr" => Ok(Inst::GlobalAddr(ctx.global(rest)?)),
        "funcaddr" => Ok(Inst::FuncAddr(ctx.func(rest)?)),
        "alloca" => {
            let size: u32 = rest
                .parse()
                .map_err(|_| ctx.e(format!("bad alloca size `{rest}`")))?;
            Ok(Inst::Alloca { size })
        }
        "malloc" => Ok(Inst::Malloc {
            size: ctx.operand(rest)?,
        }),
        "free" => Ok(Inst::Free {
            ptr: ctx.operand(rest)?,
        }),
        "load" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "load expects `type, addr`");
            }
            Ok(Inst::Load {
                ty: parse_type(args[0], ctx.line)?,
                addr: ctx.operand(args[1])?,
            })
        }
        "store" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "store expects `val, addr`");
            }
            Ok(Inst::Store {
                val: ctx.operand(args[0])?,
                addr: ctx.operand(args[1])?,
            })
        }
        "gep" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "gep expects `base, offset`");
            }
            Ok(Inst::Gep {
                base: ctx.operand(args[0])?,
                offset: ctx.operand(args[1])?,
            })
        }
        "br" => {
            let args = split_args(rest);
            if args.len() != 3 {
                return err(ctx.line, "br expects `cond, then, else`");
            }
            Ok(Inst::Br {
                cond: ctx.operand(args[0])?,
                then_bb: ctx.block(args[1])?,
                else_bb: ctx.block(args[2])?,
            })
        }
        "jmp" => Ok(Inst::Jmp(ctx.block(rest)?)),
        "ret" => {
            if rest.is_empty() {
                Ok(Inst::Ret(None))
            } else {
                Ok(Inst::Ret(Some(ctx.operand(rest)?)))
            }
        }
        "call" => {
            if let Some(rest) = rest.strip_prefix('*') {
                let (ptr, args) = rest
                    .split_once('(')
                    .ok_or_else(|| ctx.e("call expects `(`".into()))?;
                Ok(Inst::Call {
                    callee: Callee::Indirect(ctx.operand(ptr)?),
                    args: parse_call_args(ctx, args)?,
                })
            } else {
                let (name, args) = rest
                    .split_once('(')
                    .ok_or_else(|| ctx.e("call expects `(`".into()))?;
                Ok(Inst::Call {
                    callee: Callee::Direct(ctx.func(name)?),
                    args: parse_call_args(ctx, args)?,
                })
            }
        }
        "phi" => {
            let mut incoming = Vec::new();
            for part in split_args(rest) {
                let inner = part
                    .strip_prefix('[')
                    .and_then(|p| p.strip_suffix(']'))
                    .ok_or_else(|| ctx.e(format!("bad phi arm `{part}`")))?;
                let (bb, val) = inner
                    .split_once(':')
                    .ok_or_else(|| ctx.e(format!("bad phi arm `{part}`")))?;
                incoming.push((ctx.block(bb)?, ctx.operand(val)?));
            }
            Ok(Inst::Phi { incoming })
        }
        "thread_create" => {
            let (name, args) = rest
                .split_once('(')
                .ok_or_else(|| ctx.e("thread_create expects `(`".into()))?;
            let args = parse_call_args(ctx, args)?;
            if args.len() != 1 {
                return err(ctx.line, "thread_create expects one argument");
            }
            Ok(Inst::ThreadCreate {
                func: ctx.func(name)?,
                arg: args[0],
            })
        }
        "thread_join" => Ok(Inst::ThreadJoin {
            tid: ctx.operand(rest)?,
        }),
        "lock" => Ok(Inst::MutexLock {
            addr: ctx.operand(rest)?,
        }),
        "unlock" => Ok(Inst::MutexUnlock {
            addr: ctx.operand(rest)?,
        }),
        "cond_wait" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "cond_wait expects `cond, mutex`");
            }
            Ok(Inst::CondWait {
                cond: ctx.operand(args[0])?,
                mutex: ctx.operand(args[1])?,
            })
        }
        "cond_signal" => Ok(Inst::CondSignal {
            cond: ctx.operand(rest)?,
        }),
        "cond_broadcast" => Ok(Inst::CondBroadcast {
            cond: ctx.operand(rest)?,
        }),
        "atomic_load" => Ok(Inst::AtomicLoad {
            addr: ctx.operand(rest)?,
        }),
        "atomic_store" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "atomic_store expects `val, addr`");
            }
            Ok(Inst::AtomicStore {
                val: ctx.operand(args[0])?,
                addr: ctx.operand(args[1])?,
            })
        }
        "yield" => Ok(Inst::Yield),
        "io_delay" => Ok(Inst::IoDelay {
            amount: ctx.operand(rest)?,
        }),
        "input" => Ok(Inst::Input {
            idx: ctx.operand(rest)?,
        }),
        "output" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "output expects `chan, val`");
            }
            Ok(Inst::Output {
                chan: ctx.operand(args[0])?,
                val: ctx.operand(args[1])?,
            })
        }
        "memcopy" => {
            let args = split_args(rest);
            if args.len() != 3 {
                return err(ctx.line, "memcopy expects `dst, src, len`");
            }
            Ok(Inst::MemCopy {
                dst: ctx.operand(args[0])?,
                src: ctx.operand(args[1])?,
                len: ctx.operand(args[2])?,
            })
        }
        "set_privilege" => Ok(Inst::SetPrivilege {
            level: ctx.operand(rest)?,
        }),
        "file_access" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return err(ctx.line, "file_access expects `fd, data`");
            }
            Ok(Inst::FileAccess {
                fd: ctx.operand(args[0])?,
                data: ctx.operand(args[1])?,
            })
        }
        "exec" => Ok(Inst::Exec {
            cmd: ctx.operand(rest)?,
        }),
        other => err(ctx.line, format!("unknown instruction `{other}`")),
    }
}

/// Parses the textual form produced by [`crate::module_to_string`].
///
/// # Errors
///
/// Returns the first syntax error with its line number. The result is
/// *not* implicitly verified; run [`crate::verify_module`] on it.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let lines: Vec<&str> = text.lines().collect();

    // Pass 1: module name, globals, function signatures.
    let mut module = Module::new("module");
    let mut refs = FuncRefs {
        funcs: HashMap::new(),
        globals: HashMap::new(),
    };
    for (ln, raw) in lines.iter().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        let n = ln + 1;
        if let Some(rest) = line.strip_prefix("module ") {
            module.name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("global ") {
            // @name : SIZE x TYPE [= [v, ...]]
            let (name, rest) = rest.split_once(':').ok_or(ParseError {
                line: n,
                message: "global expects `@name : SIZE x TYPE`".into(),
            })?;
            let name = name.trim().strip_prefix('@').ok_or(ParseError {
                line: n,
                message: "global name must start with `@`".into(),
            })?;
            let (dims, init) = match rest.split_once('=') {
                Some((d, i)) => (d, Some(i)),
                None => (rest, None),
            };
            let (size, ty) = dims.trim().split_once(" x ").ok_or(ParseError {
                line: n,
                message: "global expects `SIZE x TYPE`".into(),
            })?;
            let size: u32 = size.trim().parse().map_err(|_| ParseError {
                line: n,
                message: format!("bad global size `{size}`"),
            })?;
            let ty = parse_type(ty.trim(), n)?;
            let init: Vec<i64> = match init {
                None => vec![],
                Some(i) => {
                    let inner = i
                        .trim()
                        .strip_prefix('[')
                        .and_then(|x| x.strip_suffix(']'))
                        .ok_or(ParseError {
                            line: n,
                            message: "global init expects `[v, ...]`".into(),
                        })?;
                    split_args(inner)
                        .into_iter()
                        .map(|v| {
                            v.parse().map_err(|_| ParseError {
                                line: n,
                                message: format!("bad init value `{v}`"),
                            })
                        })
                        .collect::<Result<_, _>>()?
                }
            };
            if init.len() > size as usize {
                return err(n, "init longer than global");
            }
            refs.globals
                .insert(name.to_string(), GlobalId::from_index(module.globals.len()));
            module.globals.push(Global {
                name: name.to_string(),
                size,
                init,
                ty,
            });
        } else if let Some(sig) = line
            .strip_prefix("func ")
            .or_else(|| line.strip_prefix("extern func "))
        {
            let external = line.starts_with("extern");
            let (name, params) = sig.split_once('(').ok_or(ParseError {
                line: n,
                message: "function signature expects `(`".into(),
            })?;
            let name = name.trim().strip_prefix('@').ok_or(ParseError {
                line: n,
                message: "function name must start with `@`".into(),
            })?;
            let params = params
                .split(')')
                .next()
                .unwrap_or("")
                .split(',')
                .filter(|p| !p.trim().is_empty())
                .count() as u32;
            refs.funcs
                .insert(name.to_string(), FuncId::from_index(module.funcs.len()));
            module.funcs.push(Function {
                name: name.to_string(),
                num_params: params,
                insts: vec![],
                locs: vec![],
                blocks: if external {
                    vec![]
                } else {
                    vec![Block::default()]
                },
                is_internal: !external,
            });
        }
    }

    // Pass 2: function bodies.
    let mut cur_func: Option<FuncId> = None;
    let mut cur_block = BlockId(0);
    let mut ctx = LineCtx {
        refs: &refs,
        values: HashMap::new(),
        line: 0,
    };
    for (ln, raw) in lines.iter().enumerate() {
        let n = ln + 1;
        ctx.line = n;
        // Separate the loc comment (the *last* `;` delimits it).
        let (code, comment) = match raw.find(';') {
            Some(i) => (&raw[..i], Some(raw[i + 1..].trim())),
            None => (*raw, None),
        };
        let line = code.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("module ") || line.starts_with("global ") || line.starts_with("extern")
        {
            continue;
        }
        if let Some(sig) = line.strip_prefix("func ") {
            let name = sig
                .split('(')
                .next()
                .and_then(|s| s.trim().strip_prefix('@'))
                .unwrap_or("");
            cur_func = refs.funcs.get(name).copied();
            cur_block = BlockId(0);
            ctx.values.clear();
            continue;
        }
        if line == "}" {
            cur_func = None;
            continue;
        }
        if let Some(bb) = line.strip_suffix(':') {
            cur_block = ctx.block(bb)?;
            let Some(f) = cur_func else {
                return err(n, "block label outside a function");
            };
            let func = &mut module.funcs[f.index()];
            while func.blocks.len() <= cur_block.index() {
                func.blocks.push(Block::default());
            }
            continue;
        }
        let Some(f) = cur_func else {
            return err(n, format!("instruction outside a function: `{line}`"));
        };
        // `%N = body` or `body`.
        let (lhs, body) = match line.split_once('=') {
            Some((l, b)) if l.trim().starts_with('%') && !l.trim().contains(' ') => {
                let raw_id: u32 = l
                    .trim()
                    .strip_prefix('%')
                    .unwrap()
                    .parse()
                    .map_err(|_| ctx.e(format!("bad result id `{l}`")))?;
                (Some(raw_id), b.trim())
            }
            _ => (None, line),
        };
        let inst = parse_inst(&ctx, body)?;
        let loc = match comment {
            Some(c) => match c.rsplit_once(':') {
                Some((file, lineno)) => match lineno.trim().parse::<u32>() {
                    Ok(l) => {
                        let fi = module.intern_file(file.trim());
                        Loc { file: fi, line: l }
                    }
                    Err(_) => Loc::UNKNOWN,
                },
                None => Loc::UNKNOWN,
            },
            None => Loc::UNKNOWN,
        };
        let func = &mut module.funcs[f.index()];
        let id = InstId::from_index(func.insts.len());
        if let Some(raw) = lhs {
            ctx.values.insert(raw, id);
        }
        func.insts.push(inst);
        func.locs.push(loc);
        while func.blocks.len() <= cur_block.index() {
            func.blocks.push(Block::default());
        }
        func.blocks[cur_block.index()].insts.push(id);
    }

    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::module_to_string;
    use crate::verify::verify_module;

    const SAMPLE: &str = r#"
module sample
global @flag : 1 x i64
global @table : 4 x ptr = [0, 7]

func @worker(%arg0) {
bb0:
  %0 = globaladdr @flag
  %1 = load i64, %0  ; worker.c:10
  %2 = add %1, %arg0
  store %2, %0  ; worker.c:12
  ret %2
}

func @main() {
bb0:
  %0 = thread_create @worker(5)
  thread_join %0
  %2 = globaladdr @flag
  %3 = load i64, %2
  output 1, %3
  ret
}

extern func @write(%arg0, %arg1)
"#;

    #[test]
    fn parses_sample_and_verifies() {
        let m = parse_module(SAMPLE).expect("parse");
        assert_eq!(m.name, "sample");
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[1].init, vec![0, 7]);
        assert_eq!(m.funcs.len(), 3);
        assert!(!m
            .func_by_name("write")
            .map(|f| m.func(f).is_internal)
            .unwrap());
        verify_module(&m).expect("verifies");
        // Locations survived.
        let worker = m.func_by_name("worker").unwrap();
        assert_eq!(
            m.format_loc(crate::InstRef::new(worker, InstId(1))),
            "worker.c:10"
        );
    }

    #[test]
    fn parsed_module_executes_like_source() {
        // Full round trip through text into behaviour is covered by the
        // vm crate; here check print(parse(text)) is a fixed point.
        let m = parse_module(SAMPLE).expect("parse");
        let printed = module_to_string(&m);
        let m2 = parse_module(&printed).expect("reparse");
        assert_eq!(module_to_string(&m2), printed, "printing is a fixed point");
    }

    #[test]
    fn error_reports_line_numbers() {
        let bad = "module x\nfunc @f() {\nbb0:\n  bogus_op 1\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bogus_op"));
    }

    #[test]
    fn undefined_value_rejected() {
        let bad = "module x\nfunc @f() {\nbb0:\n  ret %9\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.message.contains("undefined value"), "{e}");
    }

    #[test]
    fn unknown_callee_rejected() {
        let bad = "module x\nfunc @f() {\nbb0:\n  %0 = call @nope()\n  ret\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn sparse_result_ids_are_remapped() {
        // Hand-edited numbering need not be dense.
        let text =
            "module x\nfunc @f() {\nbb0:\n  %10 = add 1, 2\n  %20 = add %10, 3\n  ret %20\n}\n";
        let m = parse_module(text).expect("parse");
        verify_module(&m).expect("verifies");
        let f = m.func_by_name("f").unwrap();
        assert_eq!(m.func(f).insts.len(), 3);
    }

    #[test]
    fn phi_arms_parse() {
        let text = "module x\nfunc @f(%arg0) {\nbb0:\n  br %arg0, bb1, bb2\nbb1:\n  jmp bb3\nbb2:\n  jmp bb3\nbb3:\n  %3 = phi [bb1: 1], [bb2: 2]\n  ret %3\n}\n";
        let m = parse_module(text).expect("parse");
        verify_module(&m).expect("verifies");
    }
}
