//! A deliberately small type lattice.
//!
//! OWL's analyses only need to distinguish plain integers from pointers
//! (for NULL-dereference site classification) and from function pointers
//! (for indirect-call resolution), mirroring how the original system read
//! LLVM types out of race reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an SSA value or memory cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// A 64-bit integer (also used for booleans: zero is false).
    #[default]
    I64,
    /// A pointer into VM memory (word-addressed).
    Ptr,
    /// A pointer to a function.
    FuncPtr,
}

impl Type {
    /// Whether a corrupted value of this type can feed a NULL-pointer
    /// dereference vulnerable site.
    pub fn is_pointer(self) -> bool {
        matches!(self, Type::Ptr | Type::FuncPtr)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I64 => write!(f, "i64"),
            Type::Ptr => write!(f, "ptr"),
            Type::FuncPtr => write!(f, "funcptr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_classification() {
        assert!(Type::Ptr.is_pointer());
        assert!(Type::FuncPtr.is_pointer());
        assert!(!Type::I64.is_pointer());
    }

    #[test]
    fn display() {
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::FuncPtr.to_string(), "funcptr");
    }
}
