//! `owl-cli` — drive the OWL pipeline from the command line.
//!
//! ```text
//! owl-cli list                         # corpus programs
//! owl-cli run <program> [--quick]      # full pipeline + findings
//! owl-cli run <program> --atomicity    # atomicity-violation front-end
//! owl-cli audit <program> [--quick]    # §7.2 path auditing demo
//! owl-cli hints <program> [--quick]    # Figure-4/5 hints for every finding
//! ```

use owl::{Owl, OwlConfig, PathAuditor};
use owl_static::hints;
use owl_vm::RandomScheduler;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: owl-cli <command> [args]\n\
         commands:\n  \
         list                      list corpus programs\n  \
         run <program> [--quick] [--atomicity]\n                            run the pipeline and print findings\n  \
         hints <program> [--quick] print Figure-4/5 hints for every finding\n  \
         audit <program> [--quick] demo §7.2 path auditing"
    );
    ExitCode::from(2)
}

fn config(args: &[String]) -> OwlConfig {
    if args.iter().any(|a| a == "--quick") {
        OwlConfig::quick()
    } else {
        OwlConfig::default()
    }
}

fn load(name: &str) -> Option<owl_corpus::CorpusProgram> {
    if name.eq_ignore_ascii_case("bank") {
        return Some(owl_corpus::extensions::bank_atomicity());
    }
    // Accept case-insensitive names.
    owl_corpus::all_programs()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            println!("corpus programs:");
            for p in owl_corpus::all_programs() {
                println!(
                    "  {:10} {:5} IR insts, {} attack(s)",
                    p.name,
                    p.loc(),
                    p.attacks.len()
                );
            }
            println!("  {:10} extension: atomicity-violation demo", "Bank");
            ExitCode::SUCCESS
        }
        "run" | "hints" | "audit" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(p) = load(name) else {
                eprintln!("unknown program `{name}` (try `owl-cli list`)");
                return ExitCode::FAILURE;
            };
            let cfg = config(&args);
            let owl = Owl::new(&p.module, p.entry, cfg);
            let atomicity = args.iter().any(|a| a == "--atomicity");
            let result = if atomicity {
                owl.run_atomicity(p.name, &p.workloads, &p.exploit_inputs)
            } else {
                owl.run(p.name, &p.workloads, &p.exploit_inputs)
            };
            match cmd.as_str() {
                "run" => {
                    let s = &result.stats;
                    println!(
                        "== {} ({} front-end) ==",
                        p.name,
                        if atomicity { "atomicity" } else { "race" }
                    );
                    println!(
                        "reports: {} raw -> {} annotated -> {} verified ({} eliminated); {:.1}% reduced",
                        s.raw_reports,
                        s.post_annotation_reports,
                        s.remaining,
                        s.verifier_eliminated,
                        100.0 * s.reduction_ratio()
                    );
                    println!("adhoc synchronizations annotated: {}", s.adhoc_syncs);
                    for f in result.vulnerable_findings() {
                        let name = f
                            .race
                            .global_name
                            .clone()
                            .unwrap_or_else(|| format!("{:#x}", f.race.addr));
                        let reached = f.any_site_reached();
                        println!(
                            "finding on `{name}`: {} hint(s), site {}",
                            f.vulns.len(),
                            if reached { "REACHED" } else { "not reached" }
                        );
                    }
                    ExitCode::SUCCESS
                }
                "hints" => {
                    for f in result.vulnerable_findings() {
                        println!("{}", f.race.format(&p.module));
                        for vr in &f.vulns {
                            print!("{}", hints::format_vuln_report(&p.module, vr));
                        }
                        println!();
                    }
                    ExitCode::SUCCESS
                }
                "audit" => {
                    let auditor = PathAuditor::from_result(&p.module, p.entry, &result);
                    println!(
                        "auditing {} instruction(s) of {} ({:.1}% of the program)",
                        auditor.watched_count(),
                        p.module.total_insts(),
                        100.0 * auditor.audit_scope()
                    );
                    for (label, input) in [("benign", Some(p.primary_workload().clone()))]
                        .into_iter()
                        .chain(
                            p.exploit_inputs
                                .first()
                                .map(|e| ("exploit", Some(e.clone()))),
                        )
                    {
                        let Some(input) = input else { continue };
                        let mut detected = false;
                        for seed in 0..20 {
                            let mut sched = RandomScheduler::new(seed);
                            let a = auditor.audit(&input, &mut sched);
                            if a.attack_detected() {
                                detected = true;
                                break;
                            }
                        }
                        println!(
                            "{label:8} traffic: {}",
                            if detected {
                                "ATTACK ALERT"
                            } else {
                                "no attack alerts"
                            }
                        );
                    }
                    ExitCode::SUCCESS
                }
                _ => unreachable!(),
            }
        }
        _ => usage(),
    }
}
