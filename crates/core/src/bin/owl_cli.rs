//! `owl-cli` — drive the OWL pipeline from the command line.
//!
//! ```text
//! owl-cli list                         # corpus programs
//! owl-cli run <program> [--quick]      # full pipeline + findings
//! owl-cli run <program> --json         # machine-readable findings + health
//! owl-cli run <program> --atomicity    # atomicity-violation front-end
//! owl-cli campaign <dir> [--resume]    # crash-safe sweep of the whole corpus
//! owl-cli audit <program> [--quick]    # §7.2 path auditing demo
//! owl-cli hints <program> [--quick]    # Figure-4/5 hints for every finding
//! owl-cli serve <dir>                  # resident analysis daemon (DESIGN.md §13)
//! owl-cli submit <socket> <program>    # submit to a running daemon
//! owl-cli status <socket>              # daemon counters as JSON
//! owl-cli shutdown <socket>            # graceful drain, wait for `bye`
//! ```
//!
//! Exit codes: `0` success, `1` failure, `2` usage error, and — for
//! `submit` — the typed daemon outcomes `3` admission-rejected,
//! `4` deadline-exceeded, `5` quarantined.

use owl::journal::{encode_error, encode_health, encode_summary};
use owl::json::Json;
use owl::serve::{
    encode_request, parse_response, serve, FailureKind, Request, Response, ServeConfig,
};
use owl::{run_campaign, CampaignConfig, Owl, OwlConfig, PathAuditor, ProgramSummary};
use owl_static::hints;
use owl_vm::{FaultPlan, RandomScheduler};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::Duration;

/// Typed `submit` exit code for an admission-rejected request.
const EXIT_REJECTED: u8 = 3;
/// Typed `submit` exit code for a deadline-exceeded request.
const EXIT_DEADLINE: u8 = 4;
/// Typed `submit` exit code for a quarantined request.
const EXIT_QUARANTINED: u8 = 5;

/// `--hb-backend` help lines, derived from [`owl_race::HbBackend::ALL`]
/// so the CLI can never drift from the real backend list.
fn backend_help() -> String {
    owl_race::HbBackend::ALL
        .iter()
        .map(|b| format!("                            `{}` — {}\n", b.name(), b.summary()))
        .collect()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: owl-cli <command> [args]\n\
         commands:\n  \
         list                      list corpus programs\n  \
         run <program> [--quick] [--atomicity] [--json]\n                            run the pipeline and print findings\n  \
         campaign <dir> [--quick] [--resume] [--json]\n                            run the whole corpus with a durable journal in <dir>\n  \
         hints <program> [--quick] print Figure-4/5 hints for every finding\n  \
         audit <program> [--quick] demo §7.2 path auditing\n  \
         serve <dir> [--socket <path>] [--workers <n>] [--queue <n>]\n       [--max-inflight-bytes <n>] [--kill-after <n>]\n                            resident daemon: store + metrics in <dir>,\n                            line-JSON protocol on <dir>/owl.sock\n  \
         submit <socket> <program> [--quick] [--deadline-ms <n>] [--json]\n                            submit one program; exits 0 result, 3 rejected,\n                            4 deadline-exceeded, 5 quarantined\n  \
         status <socket>           print daemon counters as JSON\n  \
         shutdown <socket>         graceful drain; exits 0 on `bye`\n\
         robustness options (run/hints/audit/campaign):\n  \
         --fault-seed <n>          seed for deterministic fault injection\n  \
         --fault-rate <p>          per-check injection probability\n                            (default 0.01 when --fault-seed is given)\n  \
         --stage-deadline-ms <n>   wall-clock budget per pipeline stage\n  \
         --max-verify-attempts <n> attempt budget for both dynamic verifiers\n\
         detector options (run/hints/audit/campaign):\n  \
         --explore-workers <n>     threads exploring schedules in the detection\n                            stage (default 1; reports are identical for any\n                            count and excluded from the campaign fingerprint)\n  \
         --hb-backend <b>          race-detection backend, one of:\n{backends}  \
         --max-trace-mem <n[K|M|G]>\n                            bound the detector's in-flight trace window;\n                            cold segments spill to disk and are replayed\n                            (reports are identical at any budget; without a\n                            spill dir over-budget units abort with a typed\n                            memory-budget verdict)\n  \
         --no-elide                disable the static check-elision pre-pass\n                            (reports are identical either way; elision only\n                            skips shadow-memory work at proved-safe sites)\n  \
         --no-fork                 disable prefix-sharing snapshot/fork in the\n                            detection stage (reports are identical either\n                            way and a journal resumes across the switch;\n                            forking only avoids re-executing each input's\n                            single-threaded startup prefix per seed)\n  \
         --elide-report            print the pre-pass per-site classification\n                            for <program> and exit\n\
         campaign options:\n  \
         --resume                  continue a journal instead of refusing it\n  \
         --max-attempts <n>        per-program retry budget (default 3)\n  \
         --backoff-ms <n>          base retry backoff in milliseconds (default 100)\n  \
         --backoff-seed <n>        seed for the backoff jitter\n  \
         --kill-after <n>          crash-test hook: die after the Nth journal append\n  \
         --workers <n>             worker threads running programs in parallel\n                            (default 1; the summary is identical for any count)\n  \
         --metrics <dir>           write per-stage metrics: <dir>/spans.jsonl and\n                            <dir>/BENCH_campaign.json\n\
         static-analysis options (run/hints/audit/campaign):\n  \
         --no-points-to            disable memory-aware corruption propagation\n  \
         --no-summaries            disable memoized function summaries and the\n                            whole-program caller walk",
        backends = backend_help()
    );
    ExitCode::from(2)
}

/// The value following `--name` in `args`. A token that is itself
/// another `--flag` is not a value: `--fault-seed --quick` reports a
/// missing value instead of trying to parse `--quick` as a seed. A
/// flag given twice is an error, not a silent first-wins: `--workers 2
/// --workers 8` must not quietly run with 2.
fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    let mut hits = args.iter().enumerate().filter(|(_, a)| *a == name);
    let Some((i, _)) = hits.next() else {
        return Ok(None);
    };
    if hits.next().is_some() {
        return Err(format!("{name} given more than once"));
    }
    match args.get(i + 1).map(String::as_str) {
        Some(v) if !v.starts_with("--") => Ok(Some(v)),
        _ => Err(format!("{name} requires a value")),
    }
}

/// Presence of a valueless `--flag`. A non-flag token right after it
/// is a usage error, not a silently ignored operand: positionals come
/// before flags in every command, so `--no-fork 5` can only be a
/// mistaken attempt to pass a value.
fn presence_flag(args: &[String], name: &str) -> Result<bool, String> {
    let mut hits = args.iter().enumerate().filter(|(_, a)| *a == name);
    let Some((i, _)) = hits.next() else {
        return Ok(false);
    };
    if hits.next().is_some() {
        return Err(format!("{name} given more than once"));
    }
    match args.get(i + 1).map(String::as_str) {
        Some(v) if !v.starts_with("--") => Err(format!("{name} takes no value, got `{v}`")),
        _ => Ok(true),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match flag_value(args, name)? {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("invalid value `{raw}` for {name}")),
    }
}

/// Parses a memory size: plain bytes or with a case-insensitive
/// K/M/G (KiB/MiB/GiB) suffix. Zero is rejected — a zero budget
/// would abort every exploration unit before its first event.
fn parse_mem_size(raw: &str) -> Result<u64, String> {
    let (digits, mult) = match raw.as_bytes().last() {
        Some(b'k' | b'K') => (&raw[..raw.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&raw[..raw.len() - 1], 1u64 << 20),
        Some(b'g' | b'G') => (&raw[..raw.len() - 1], 1u64 << 30),
        _ => (raw, 1),
    };
    if digits.is_empty() {
        return Err(format!("`{raw}` has no digits"));
    }
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("`{raw}` is not a byte count with an optional K/M/G suffix"))?;
    let bytes = n
        .checked_mul(mult)
        .ok_or_else(|| format!("`{raw}` overflows a 64-bit byte count"))?;
    if bytes == 0 {
        return Err("a zero trace-memory budget would abort every unit".to_string());
    }
    Ok(bytes)
}

fn config(args: &[String]) -> Result<OwlConfig, String> {
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        OwlConfig::quick()
    } else {
        OwlConfig::default()
    };
    let seed: Option<u64> = parse_flag(args, "--fault-seed")?;
    let rate: Option<f64> = parse_flag(args, "--fault-rate")?;
    match (seed, rate) {
        (Some(s), rate) => {
            let rate = rate.unwrap_or(0.01);
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("--fault-rate must be in [0, 1], got {rate}"));
            }
            cfg = cfg.with_fault_plan(FaultPlan::uniform(s, rate));
        }
        (None, Some(_)) => {
            return Err("--fault-rate requires --fault-seed".to_string());
        }
        (None, None) => {}
    }
    if let Some(ms) = parse_flag::<u64>(args, "--stage-deadline-ms")? {
        cfg = cfg.with_stage_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = parse_flag::<u64>(args, "--max-verify-attempts")? {
        if n == 0 {
            return Err("--max-verify-attempts must be at least 1".to_string());
        }
        cfg = cfg.with_max_verify_attempts(n);
    }
    if let Some(n) = parse_flag::<usize>(args, "--explore-workers")? {
        if n == 0 {
            return Err("--explore-workers must be at least 1".to_string());
        }
        cfg.detect.workers = n;
    }
    if let Some(raw) = flag_value(args, "--hb-backend")? {
        cfg.detect.hb_backend = owl_race::HbBackend::parse(raw).ok_or_else(|| {
            format!(
                "--hb-backend must be one of {}, got `{raw}`",
                owl_race::HbBackend::names()
            )
        })?;
    }
    if let Some(raw) = flag_value(args, "--max-trace-mem")? {
        let bytes =
            parse_mem_size(raw).map_err(|msg| format!("--max-trace-mem: {msg}"))?;
        cfg.detect.stream.max_trace_mem = Some(bytes);
        // Default spill destination for one-shot commands; campaign
        // and serve redirect this into their own directory.
        cfg.detect.stream.spill_dir = Some(
            std::env::temp_dir().join(format!("owl-trace-spill-{}", std::process::id())),
        );
    }
    if args.iter().any(|a| a == "--no-elide") {
        cfg.elide = false;
    }
    if presence_flag(args, "--no-fork")? {
        cfg.detect.fork = false;
    }
    if args.iter().any(|a| a == "--no-points-to") {
        cfg.vuln.points_to = false;
    }
    if args.iter().any(|a| a == "--no-summaries") {
        cfg.vuln.summaries = false;
    }
    Ok(cfg)
}

fn load(name: &str) -> Option<owl_corpus::CorpusProgram> {
    if name.eq_ignore_ascii_case("bank") {
        return Some(owl_corpus::extensions::bank_atomicity());
    }
    if name.eq_ignore_ascii_case("heaprelay") || name.eq_ignore_ascii_case("heap-relay") {
        return Some(owl_corpus::extensions::heap_relay());
    }
    if name.eq_ignore_ascii_case("cacherelay") || name.eq_ignore_ascii_case("cache-relay") {
        return Some(owl_corpus::extensions::cache_relay());
    }
    // Accept case-insensitive names.
    owl_corpus::all_programs()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            println!("corpus programs:");
            for p in owl_corpus::all_programs() {
                println!(
                    "  {:10} {:5} IR insts, {} attack(s)",
                    p.name,
                    p.loc(),
                    p.attacks.len()
                );
            }
            println!("  {:10} extension: atomicity-violation demo", "Bank");
            println!(
                "  {:10} extension: corruption relayed through a heap buffer",
                "HeapRelay"
            );
            println!(
                "  {:10} extension: corrupted pointer through a global cache",
                "CacheRelay"
            );
            ExitCode::SUCCESS
        }
        "run" | "hints" | "audit" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(p) = load(name) else {
                eprintln!("unknown program `{name}` (try `owl-cli list`)");
                return ExitCode::FAILURE;
            };
            let cfg = match config(&args) {
                Ok(cfg) => cfg,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            };
            if args.iter().any(|a| a == "--elide-report") {
                let pre = owl_static::ElisionPrepass::run(&p.module, p.entry);
                print!("{}", pre.report(&p.module));
                return ExitCode::SUCCESS;
            }
            let owl = Owl::new(&p.module, p.entry, cfg.clone());
            let atomicity = args.iter().any(|a| a == "--atomicity");
            let result = if atomicity {
                owl.run_atomicity(p.name, &p.workloads, &p.exploit_inputs)
            } else {
                owl.run(p.name, &p.workloads, &p.exploit_inputs)
            };
            if let Some(err) = &result.error {
                eprintln!("pipeline failed: {err}");
                return ExitCode::FAILURE;
            }
            match cmd.as_str() {
                "run" if args.iter().any(|a| a == "--json") => {
                    let summary = ProgramSummary::from_result(&result);
                    let out = Json::obj([
                        ("program", Json::str(result.program.clone())),
                        (
                            "front_end",
                            Json::str(if atomicity { "atomicity" } else { "race" }),
                        ),
                        ("summary", encode_summary(&summary)),
                        ("health", encode_health(&result.health)),
                        (
                            "quarantined",
                            Json::Arr(
                                result
                                    .quarantined
                                    .iter()
                                    .map(|q| {
                                        Json::obj([
                                            (
                                                "global",
                                                match &q.race.global_name {
                                                    Some(g) => Json::str(g.clone()),
                                                    None => Json::Null,
                                                },
                                            ),
                                            ("error", encode_error(&q.error)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]);
                    println!("{}", out.to_json_string());
                    ExitCode::SUCCESS
                }
                "run" => {
                    let s = &result.stats;
                    println!(
                        "== {} ({} front-end) ==",
                        p.name,
                        if atomicity { "atomicity" } else { "race" }
                    );
                    println!(
                        "reports: {} raw -> {} annotated -> {} verified ({} eliminated); {:.1}% reduced",
                        s.raw_reports,
                        s.post_annotation_reports,
                        s.remaining,
                        s.verifier_eliminated,
                        100.0 * s.reduction_ratio()
                    );
                    println!("adhoc synchronizations annotated: {}", s.adhoc_syncs);
                    for f in result.vulnerable_findings() {
                        let name = f
                            .race
                            .global_name
                            .clone()
                            .unwrap_or_else(|| format!("{:#x}", f.race.addr));
                        let reached = f.any_site_reached();
                        println!(
                            "finding on `{name}`: {} hint(s), site {}",
                            f.vulns.len(),
                            if reached { "REACHED" } else { "not reached" }
                        );
                    }
                    let h = &result.health;
                    println!(
                        "stage 4: points-to solved in {:?}; summary cache {} hit(s) / {} miss(es)",
                        h.points_to_solve, h.summary_cache_hits, h.summary_cache_misses
                    );
                    if cfg.elide {
                        println!(
                            "elision: {} site(s) proved race-free ({} thread-local, \
                             {} lock-dominated, {} read-only); {} event(s) skipped shadow work",
                            h.elision_sites_thread_local
                                + h.elision_sites_lock_dominated
                                + h.elision_sites_read_only,
                            h.elision_sites_thread_local,
                            h.elision_sites_lock_dominated,
                            h.elision_sites_read_only,
                            h.elision_events_elided
                        );
                    }
                    if cfg.detect.stream.max_trace_mem.is_some() {
                        println!(
                            "trace memory: {} pressure event(s), {} segment(s) / {} byte(s) \
                             spilled, {} shadow cell(s) GCed",
                            h.mem_pressure_events,
                            h.trace_spill_segments,
                            h.trace_spilled_bytes,
                            h.shadow_cells_gced
                        );
                    }
                    if cfg.detect.hb_backend.is_predictive() {
                        println!(
                            "prediction: {} candidate(s), {} witnessed ({} by sync reversal), \
                             {} rejected by the witness check",
                            h.predict_candidates,
                            h.predict_witnessed,
                            h.predict_reversal_races,
                            h.predict_witness_rejected
                        );
                    }
                    if h.total_injected_faults() > 0
                        || h.total_quarantined() > 0
                        || h.total_panics() > 0
                    {
                        println!(
                            "health: {} fault(s) injected, {} panic(s) caught, {} report(s) quarantined",
                            h.total_injected_faults(),
                            h.total_panics(),
                            h.total_quarantined()
                        );
                        for (stage, sh) in [
                            ("detect", &h.detect),
                            ("race-verify", &h.race_verify),
                            ("vuln-analyze", &h.vuln_analyze),
                            ("vuln-verify", &h.vuln_verify),
                        ] {
                            println!(
                                "  {stage:12} attempts {} retries {} faults {} deadline-hits {} panics {}",
                                sh.attempts, sh.retries, sh.injected_faults, sh.deadline_hits, sh.panics
                            );
                        }
                    }
                    for q in &result.quarantined {
                        let name = q
                            .race
                            .global_name
                            .clone()
                            .unwrap_or_else(|| format!("{:#x}", q.race.addr));
                        println!("quarantined `{name}`: {}", q.error);
                    }
                    ExitCode::SUCCESS
                }
                "hints" => {
                    for f in result.vulnerable_findings() {
                        println!("{}", f.race.format(&p.module));
                        for vr in &f.vulns {
                            print!("{}", hints::format_vuln_report(&p.module, vr));
                        }
                        println!();
                    }
                    ExitCode::SUCCESS
                }
                "audit" => {
                    let auditor = PathAuditor::from_result(&p.module, p.entry, &result)
                        .with_run_config(cfg.detect.run_config.clone());
                    println!(
                        "auditing {} instruction(s) of {} ({:.1}% of the program)",
                        auditor.watched_count(),
                        p.module.total_insts(),
                        100.0 * auditor.audit_scope()
                    );
                    for (label, input) in [("benign", Some(p.primary_workload().clone()))]
                        .into_iter()
                        .chain(
                            p.exploit_inputs
                                .first()
                                .map(|e| ("exploit", Some(e.clone()))),
                        )
                    {
                        let Some(input) = input else { continue };
                        let mut detected = false;
                        for seed in 0..20 {
                            let mut sched = RandomScheduler::new(seed);
                            let a = auditor.audit(&input, &mut sched);
                            if a.attack_detected() {
                                detected = true;
                                break;
                            }
                        }
                        println!(
                            "{label:8} traffic: {}",
                            if detected {
                                "ATTACK ALERT"
                            } else {
                                "no attack alerts"
                            }
                        );
                    }
                    ExitCode::SUCCESS
                }
                _ => unreachable!(),
            }
        }
        "campaign" => {
            let Some(dir) = args.get(1) else {
                return usage();
            };
            if dir.starts_with("--") {
                return usage();
            }
            let mut cfg = match config(&args) {
                Ok(cfg) => cfg,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            };
            if cfg.detect.stream.max_trace_mem.is_some() {
                cfg.detect.stream.spill_dir =
                    Some(std::path::Path::new(dir).join("trace-spill"));
            }
            let mut ccfg = CampaignConfig::new(cfg);
            let campaign_flags = (|| -> Result<(), String> {
                if let Some(n) = parse_flag::<u64>(&args, "--max-attempts")? {
                    if n == 0 {
                        return Err("--max-attempts must be at least 1".to_string());
                    }
                    ccfg.max_attempts = n;
                }
                if let Some(ms) = parse_flag::<u64>(&args, "--backoff-ms")? {
                    ccfg.backoff_base = Duration::from_millis(ms);
                }
                if let Some(s) = parse_flag::<u64>(&args, "--backoff-seed")? {
                    ccfg.backoff_seed = s;
                }
                if let Some(n) = parse_flag::<u64>(&args, "--kill-after")? {
                    ccfg.kill_after_appends = Some(n);
                }
                if let Some(n) = parse_flag::<usize>(&args, "--workers")? {
                    if n == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                    ccfg.workers = n;
                }
                Ok(())
            })();
            if let Err(msg) = campaign_flags {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
            let metrics_dir = match flag_value(&args, "--metrics") {
                Ok(v) => v.map(std::path::PathBuf::from),
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            };
            let recorder = metrics_dir
                .as_ref()
                .map(|_| std::sync::Arc::new(owl::MetricsRecorder::new()));
            ccfg.metrics = recorder.clone();
            let resume = args.iter().any(|a| a == "--resume");
            let dir = std::path::Path::new(dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create campaign directory {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let journal_path = dir.join("journal.jsonl");
            let programs = owl_corpus::all_programs();
            match run_campaign(&journal_path, &programs, &ccfg, resume) {
                Ok(outcome) => {
                    if outcome.recovery.recovered() {
                        eprintln!(
                            "journal recovered: discarded {} byte(s) in {} record(s) from a corrupt tail",
                            outcome.recovery.discarded_bytes, outcome.recovery.discarded_records
                        );
                    }
                    if let (Some(m), Some(out)) = (&recorder, &metrics_dir) {
                        match m.write_files(out, ccfg.workers, programs.len()) {
                            Ok((spans, summary)) => eprintln!(
                                "metrics: wrote {} and {}",
                                spans.display(),
                                summary.display()
                            ),
                            Err(e) => {
                                eprintln!("cannot write metrics to {}: {e}", out.display());
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    if args.iter().any(|a| a == "--json") {
                        // Surface what recovery discarded and the
                        // robustness counters next to the summary, so
                        // operators see torn-tail repairs and
                        // quarantines without scraping stderr.
                        let mut doc = outcome.summary.to_json();
                        if let Json::Obj(pairs) = &mut doc {
                            pairs.push((
                                "recovery".to_string(),
                                Json::obj([
                                    (
                                        "journal_discarded_bytes",
                                        Json::UInt(outcome.recovery.discarded_bytes),
                                    ),
                                    (
                                        "journal_discarded_records",
                                        Json::UInt(outcome.recovery.discarded_records),
                                    ),
                                    (
                                        "valid_records",
                                        Json::UInt(outcome.summary.records),
                                    ),
                                ]),
                            ));
                            pairs.push((
                                "health".to_string(),
                                encode_health(&outcome.health),
                            ));
                        }
                        println!("{}", doc.to_json_string());
                    } else {
                        print!("{}", outcome.summary.render());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("campaign failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve" => {
            let Some(dir) = args.get(1) else {
                return usage();
            };
            if dir.starts_with("--") {
                return usage();
            }
            let mut owl = match config(&args) {
                Ok(cfg) => cfg,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            };
            if owl.detect.stream.max_trace_mem.is_some() {
                owl.detect.stream.spill_dir =
                    Some(std::path::Path::new(dir).join("trace-spill"));
            }
            let mut scfg = ServeConfig::new(dir);
            scfg.owl = owl;
            // The daemon always records metrics: BENCH_serve.json and
            // spans.jsonl land in <dir> at shutdown.
            scfg.metrics = Some(std::sync::Arc::new(owl::MetricsRecorder::new()));
            let serve_flags = (|| -> Result<(), String> {
                if let Some(p) = flag_value(&args, "--socket")? {
                    scfg.socket = std::path::PathBuf::from(p);
                }
                if let Some(n) = parse_flag::<usize>(&args, "--workers")? {
                    if n == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                    scfg.workers = n;
                }
                if let Some(n) = parse_flag::<usize>(&args, "--queue")? {
                    if n == 0 {
                        return Err("--queue must be at least 1".to_string());
                    }
                    scfg.queue_capacity = n;
                }
                if let Some(n) = parse_flag::<u64>(&args, "--max-inflight-bytes")? {
                    scfg.max_inflight_bytes = n;
                }
                if let Some(ms) = parse_flag::<u64>(&args, "--default-deadline-ms")? {
                    scfg.default_deadline = Duration::from_millis(ms);
                }
                if let Some(n) = parse_flag::<u64>(&args, "--kill-after")? {
                    scfg.kill_after_appends = Some(n);
                }
                Ok(())
            })();
            if let Err(msg) = serve_flags {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
            eprintln!("owl serve: listening on {}", scfg.socket.display());
            match serve(scfg) {
                Ok(report) => {
                    eprintln!(
                        "owl serve: drained — {} executed, {} cache hit(s), {} shed, {} stored",
                        report.executed,
                        report.cache_hits,
                        report.admission.total_shed(),
                        report.stored
                    );
                    if report.recovery.recovered() {
                        eprintln!(
                            "owl serve: store recovered — discarded {} byte(s) in {} record(s)",
                            report.recovery.discarded_bytes, report.recovery.discarded_records
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("owl serve failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "submit" => {
            let (Some(socket), Some(program)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let req = Request::Submit {
                program: program.clone(),
                quick: args.iter().any(|a| a == "--quick"),
                deadline_ms: match parse_flag::<u64>(&args, "--deadline-ms") {
                    Ok(v) => v,
                    Err(msg) => {
                        eprintln!("{msg}");
                        return ExitCode::from(2);
                    }
                },
                sleep_ms: match parse_flag::<u64>(&args, "--sleep-ms") {
                    Ok(v) => v.unwrap_or(0),
                    Err(msg) => {
                        eprintln!("{msg}");
                        return ExitCode::from(2);
                    }
                },
                inject_panic: args.iter().any(|a| a == "--inject-panic"),
            };
            let json = args.iter().any(|a| a == "--json");
            client_roundtrip(socket, &req, |resp| match resp {
                Response::Accepted { id } => {
                    eprintln!("accepted as request {id}");
                    None
                }
                Response::Result {
                    program,
                    cached,
                    summary,
                    ..
                } => {
                    if json {
                        let out = Json::obj([
                            ("program", Json::str(program.clone())),
                            ("cached", Json::Bool(*cached)),
                            ("summary", encode_summary(summary)),
                        ]);
                        println!("{}", out.to_json_string());
                    } else {
                        println!(
                            "{program}{}: {} raw -> {} verified, {} vulnerable",
                            if *cached { " (cached)" } else { "" },
                            summary.raw_reports,
                            summary.remaining,
                            summary.vulnerable
                        );
                    }
                    Some(ExitCode::SUCCESS)
                }
                Response::Rejected { reason } => {
                    eprintln!("rejected: {reason}");
                    Some(ExitCode::from(EXIT_REJECTED))
                }
                Response::Failed { kind, message, .. } => {
                    eprintln!("failed ({}): {message}", kind.as_str());
                    Some(ExitCode::from(match kind {
                        FailureKind::DeadlineExceeded => EXIT_DEADLINE,
                        FailureKind::Quarantined => EXIT_QUARANTINED,
                    }))
                }
                Response::Error { message } => {
                    eprintln!("daemon error: {message}");
                    Some(ExitCode::FAILURE)
                }
                Response::Status(_) | Response::Bye => {
                    eprintln!("unexpected response");
                    Some(ExitCode::FAILURE)
                }
            })
        }
        "status" => {
            let Some(socket) = args.get(1) else {
                return usage();
            };
            client_roundtrip(socket, &Request::Status, |resp| match resp {
                Response::Status(s) => {
                    let out = Json::obj([
                        ("queue_depth", Json::UInt(s.queue_depth)),
                        ("active", Json::UInt(s.active)),
                        ("inflight_bytes", Json::UInt(s.inflight_bytes)),
                        ("draining", Json::Bool(s.draining)),
                        ("executed", Json::UInt(s.executed)),
                        ("cache_hits", Json::UInt(s.cache_hits)),
                        ("shed_queue_full", Json::UInt(s.shed_queue_full)),
                        ("shed_too_large", Json::UInt(s.shed_too_large)),
                        ("shed_draining", Json::UInt(s.shed_draining)),
                        ("stored", Json::UInt(s.stored)),
                        (
                            "recovery_discarded_bytes",
                            Json::UInt(s.recovery_discarded_bytes),
                        ),
                        (
                            "recovery_discarded_records",
                            Json::UInt(s.recovery_discarded_records),
                        ),
                        (
                            "elision_sites_thread_local",
                            Json::UInt(s.elision_sites_thread_local),
                        ),
                        (
                            "elision_sites_lock_dominated",
                            Json::UInt(s.elision_sites_lock_dominated),
                        ),
                        (
                            "elision_sites_read_only",
                            Json::UInt(s.elision_sites_read_only),
                        ),
                        (
                            "elision_events_elided",
                            Json::UInt(s.elision_events_elided),
                        ),
                        ("elision_solve_us", Json::UInt(s.elision_solve_us)),
                        ("trace_spilled_bytes", Json::UInt(s.trace_spilled_bytes)),
                        (
                            "trace_spill_segments",
                            Json::UInt(s.trace_spill_segments),
                        ),
                        ("mem_pressure_events", Json::UInt(s.mem_pressure_events)),
                        ("shadow_cells_gced", Json::UInt(s.shadow_cells_gced)),
                        (
                            "units_aborted_mem_budget",
                            Json::UInt(s.units_aborted_mem_budget),
                        ),
                        ("predict_candidates", Json::UInt(s.predict_candidates)),
                        ("predict_witnessed", Json::UInt(s.predict_witnessed)),
                        (
                            "predict_witness_rejected",
                            Json::UInt(s.predict_witness_rejected),
                        ),
                        (
                            "predict_reversal_races",
                            Json::UInt(s.predict_reversal_races),
                        ),
                        ("units_forked", Json::UInt(s.units_forked)),
                        ("prefix_steps_saved", Json::UInt(s.prefix_steps_saved)),
                        ("schedules_deduped", Json::UInt(s.schedules_deduped)),
                        ("snapshot_bytes", Json::UInt(s.snapshot_bytes)),
                    ]);
                    println!("{}", out.to_json_string());
                    Some(ExitCode::SUCCESS)
                }
                _ => {
                    eprintln!("unexpected response");
                    Some(ExitCode::FAILURE)
                }
            })
        }
        "shutdown" => {
            let Some(socket) = args.get(1) else {
                return usage();
            };
            client_roundtrip(socket, &Request::Shutdown, |resp| match resp {
                Response::Bye => {
                    eprintln!("daemon drained");
                    Some(ExitCode::SUCCESS)
                }
                _ => {
                    eprintln!("unexpected response");
                    Some(ExitCode::FAILURE)
                }
            })
        }
        _ => usage(),
    }
}

/// Sends one request to a daemon socket and feeds response lines to
/// `on_resp` until it produces an exit code (EOF before that is a
/// failure — the daemon died with the request in flight).
fn client_roundtrip(
    socket: &str,
    req: &Request,
    mut on_resp: impl FnMut(&Response) -> Option<ExitCode>,
) -> ExitCode {
    let mut stream = match UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut line = encode_request(req);
    line.push('\n');
    if let Err(e) = stream.write_all(line.as_bytes()) {
        eprintln!("cannot write to {socket}: {e}");
        return ExitCode::FAILURE;
    }
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => {
                eprintln!("daemon closed the connection (request lost)");
                return ExitCode::FAILURE;
            }
            Ok(_) => match parse_response(&buf) {
                Ok(resp) => {
                    if let Some(code) = on_resp(&resp) {
                        return code;
                    }
                }
                Err(msg) => {
                    eprintln!("unparseable response: {msg}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("read error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}
