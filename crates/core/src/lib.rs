//! # owl
//!
//! **OWL: directed concurrency-attack detection** — a Rust
//! reproduction of *"Understanding and Detecting Concurrency Attacks"*
//! (Gu, Gan, Zhao, Ning, Cui, Yang — DSN 2018).
//!
//! Concurrency bugs that corrupt memory can be *weaponized*: a data
//! race in Libsafe bypasses its stack-overflow checks, a race in the
//! Linux `uselib()` path yields kernel code execution, a race in
//! MySQL's `FLUSH PRIVILEGES` escalates privileges. The paper's
//! quantitative study shows why existing detectors miss these attacks:
//! 94.3% of their reports are benign, and the vulnerable few need
//! *different, subtle inputs* to turn a bug into an attack.
//!
//! OWL's answer is to extract hints from the reports themselves and
//! direct everything downstream at the remaining, likely vulnerable
//! inputs and schedules (Figure 3 of the paper):
//!
//! ```text
//!  detector ──► adhoc-sync hints ──► annotate + re-detect
//!      └──► race verifier (thread-specific breakpoints)
//!               └──► Algorithm 1: bug-to-attack propagation
//!                        └──► vulnerability verifier
//! ```
//!
//! This crate is the orchestrator. The substrates live in sibling
//! crates: [`owl_ir`] (SSA IR), [`owl_vm`] (concurrent interpreter),
//! [`owl_race`] (detectors), [`owl_static`] (static analyses),
//! [`owl_verify`] (dynamic verifiers), and [`owl_corpus`] (models of
//! the studied programs).
//!
//! ## Example
//!
//! ```
//! use owl::{evaluate_program, OwlConfig};
//!
//! let libsafe = owl_corpus::program("Libsafe").expect("corpus program");
//! let eval = evaluate_program(&libsafe, &OwlConfig::quick());
//! assert!(eval.attacks[0].detected(), "the Figure-1 attack is found");
//! assert!(eval.result.stats.reduction_ratio() >= 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod campaign;
mod config;
mod eval;
pub mod journal;
pub mod json;
pub mod metrics;
mod pipeline;
pub mod queue;
#[cfg(unix)]
pub mod serve;

pub use audit::{AlertKind, AuditAlert, AuditOutcome, PathAuditor};
pub use campaign::{
    backoff_delay, campaign_fingerprint, run_campaign, CampaignConfig, CampaignFault,
    CampaignOutcome, CampaignSummary, ProgramOutcome, ProgramStatus,
};
pub use config::OwlConfig;
pub use eval::{evaluate_program, AttackOutcome, ProgramEvaluation};
pub use journal::{
    Journal, JournalError, JournalKilled, JournalRecord, JournalSink, ProgramSummary,
    RecoveryReport, SharedJournal,
};
pub use metrics::{Histogram, MetricsRecorder, SpanRecord};
pub use pipeline::{
    Finding, Owl, PipelineError, PipelineHealth, PipelineResult, PipelineStats, Quarantined,
    Stage, StageHealth,
};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use owl_corpus;
pub use owl_ir;
pub use owl_race;
pub use owl_static;
pub use owl_verify;
pub use owl_vm;
