//! Durable run journal: append-only, checksummed JSONL.
//!
//! Detection campaigns are long and crash-prone — a panic, a deadline
//! abort, or a plain `kill -9` must not cost hours of completed
//! verification work. The journal records one fsync'd line per
//! *completed pipeline unit* (a report verified, a finding analyzed, a
//! report quarantined, a program finished or given up on), so a killed
//! run can resume from the last durably-recorded unit instead of
//! starting over.
//!
//! ## Line format
//!
//! ```text
//! {"crc":"<16 lowercase hex>","rec":<record JSON>}\n
//! ```
//!
//! The checksum is FNV-1a/64 over the exact bytes of the record JSON
//! (the canonical form emitted by [`crate::json`]). It is verified
//! byte-for-byte on open, so any in-place corruption — not just torn
//! writes — is detected.
//!
//! ## Recovery policy
//!
//! [`Journal::open`] scans the file line by line. The first line that
//! fails — torn (no trailing newline), syntactically broken, checksum
//! mismatch, or an undecodable record — marks the corruption point:
//! everything from there to EOF is discarded and the file is truncated
//! back to the last valid record. Recovery is automatic and quantified:
//! the [`RecoveryReport`] carries the discarded byte and record counts,
//! which the pipeline surfaces in
//! [`crate::PipelineHealth::journal_discarded_bytes`] /
//! [`crate::PipelineHealth::journal_discarded_records`].
//!
//! ## Kill points
//!
//! For crash testing, [`Journal::set_kill_after`] arms a hard kill
//! point: after the `n`-th successful append the journal panics with a
//! [`JournalKilled`] payload (tagged [`owl_vm::FaultKind::JournalKill`]).
//! The campaign supervisor deliberately re-raises this payload instead
//! of catching it, so it behaves like a real `SIGKILL` landing right
//! after an fsync — the worst moment that still must lose nothing.

use crate::json::{self, Json};
use crate::pipeline::{PipelineError, PipelineResult, Stage};
use owl_race::RaceReport;
use owl_static::{DepKind, VulnReport};
use owl_verify::{AbortCause, VerifyOutcome};
use owl_vm::FaultKind;
use owl_ir::{FuncId, InstId, InstRef, VulnClass};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Panic payload of an armed journal kill point (see
/// [`Journal::set_kill_after`]). Supervisors must re-raise it: it
/// simulates the process dying, not a recoverable stage failure.
/// Shared with the trace spill layer's kill switch, so it lives in
/// [`owl_vm`] and is re-exported here.
pub use owl_vm::JournalKilled;

/// What `Journal::open` found and repaired.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records that survived validation.
    pub valid_records: u64,
    /// Corrupt or torn records discarded from the tail.
    pub discarded_records: u64,
    /// Bytes truncated off the file.
    pub discarded_bytes: u64,
}

impl RecoveryReport {
    /// Whether anything had to be repaired.
    pub fn recovered(&self) -> bool {
        self.discarded_bytes > 0
    }
}

/// Errors from opening or appending to a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A fresh (non-resume) campaign was pointed at a journal that
    /// already holds records.
    NotResumable {
        /// The journal path.
        path: PathBuf,
        /// Records already present.
        records: u64,
    },
    /// The journal was written by a campaign with a different
    /// configuration or program list.
    ConfigMismatch {
        /// Fingerprint recorded in the journal.
        recorded: String,
        /// Fingerprint of the current configuration.
        current: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::NotResumable { path, records } => write!(
                f,
                "journal {} already holds {records} record(s); pass --resume to continue it",
                path.display()
            ),
            JournalError::ConfigMismatch { recorded, current } => write!(
                f,
                "journal was written with a different campaign configuration \
                 (recorded fingerprint {recorded}, current {current})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// FNV-1a 64-bit — small, dependency-free, and plenty for torn-write
/// and bit-rot detection on a line-sized payload.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable identity of one race report within a program — the unit
/// key completed work is journaled under. Built from the normalized
/// site pair plus the racing address and global, so distinct races
/// that share a site pair still get distinct keys.
pub fn unit_key(report: &RaceReport) -> String {
    let (a, b) = report.key();
    format!(
        "{a}|{b}|{:#x}|{}",
        report.addr,
        report.global_name.as_deref().unwrap_or("-")
    )
}

/// One dynamically-verified vulnerability hint, as journaled: the full
/// static [`VulnReport`] (so resume can rebuild the finding) plus the
/// deterministic slice of its stage-5 verification.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedVuln {
    /// The stage-4 hint.
    pub report: VulnReport,
    /// Whether the site was dynamically reached.
    pub reached: bool,
    /// Stage-5 verdict.
    pub verdict: VerifyOutcome,
    /// Verification executions performed.
    pub attempts: u64,
    /// Faults injected across those executions.
    pub injected_faults: u64,
}

/// One hint row of a [`ProgramSummary`].
#[derive(Clone, Debug, PartialEq)]
pub struct HintSummary {
    /// Vulnerable-site class.
    pub class: VulnClass,
    /// Dependence kind.
    pub dep: DepKind,
    /// Whether the site was dynamically reached.
    pub reached: bool,
}

/// One vulnerable finding row of a [`ProgramSummary`].
#[derive(Clone, Debug, PartialEq)]
pub struct FindingSummary {
    /// Racy global (or the address, hex-formatted, when unnamed).
    pub global: String,
    /// The finding's hints.
    pub hints: Vec<HintSummary>,
}

/// The deterministic, journal-resident summary of one finished
/// program: exactly the data the consolidated campaign summary is
/// rebuilt from. Deliberately excludes wall-clock times and cache
/// counters, which legitimately differ between a fresh and a resumed
/// run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgramSummary {
    /// Raw detector reports.
    pub raw_reports: usize,
    /// Adhoc synchronizations annotated.
    pub adhoc_syncs: usize,
    /// Reports after the post-annotation re-run.
    pub post_annotation_reports: usize,
    /// Reports the race verifier eliminated.
    pub verifier_eliminated: usize,
    /// Reports surviving verification.
    pub remaining: usize,
    /// Findings with at least one vulnerability hint.
    pub vulnerable: usize,
    /// Faults injected across all stages.
    pub injected_faults: u64,
    /// Units quarantined across all stages.
    pub quarantined: u64,
    /// The vulnerable findings.
    pub findings: Vec<FindingSummary>,
}

impl ProgramSummary {
    /// Extracts the deterministic summary from a pipeline result.
    pub fn from_result(result: &PipelineResult) -> Self {
        let findings = result
            .vulnerable_findings()
            .map(|f| FindingSummary {
                global: f
                    .race
                    .global_name
                    .clone()
                    .unwrap_or_else(|| format!("{:#x}", f.race.addr)),
                hints: f
                    .vulns
                    .iter()
                    .zip(&f.vuln_verifications)
                    .map(|(vr, vv)| HintSummary {
                        class: vr.class,
                        dep: vr.dep,
                        reached: vv.reached,
                    })
                    .collect(),
            })
            .collect();
        ProgramSummary {
            raw_reports: result.stats.raw_reports,
            adhoc_syncs: result.stats.adhoc_syncs,
            post_annotation_reports: result.stats.post_annotation_reports,
            verifier_eliminated: result.stats.verifier_eliminated,
            remaining: result.stats.remaining,
            vulnerable: result.stats.vulnerable,
            injected_faults: result.health.total_injected_faults(),
            quarantined: result.health.total_quarantined(),
            findings,
        }
    }
}

/// One durably-recorded pipeline unit.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// Campaign header: written once when the journal is created.
    CampaignStarted {
        /// Fingerprint of the campaign configuration (resume refuses a
        /// journal written under a different one).
        fingerprint: String,
        /// Program names, in execution order.
        programs: Vec<String>,
    },
    /// Stage 3 completed for one report (confirmed or eliminated).
    ReportVerified {
        /// Program name.
        program: String,
        /// Unit key ([`unit_key`]).
        key: String,
        /// Racy global, when named.
        global: Option<String>,
        /// Whether the race was confirmed (else eliminated).
        confirmed: bool,
        /// Verification attempts spent.
        attempts: u64,
        /// Faults injected during verification.
        injected_faults: u64,
    },
    /// Stages 4–5 completed for one confirmed report.
    FindingAnalyzed {
        /// Program name.
        program: String,
        /// Unit key ([`unit_key`]).
        key: String,
        /// Racy global, when named.
        global: Option<String>,
        /// The hints with their dynamic verifications.
        vulns: Vec<RecordedVuln>,
    },
    /// A unit was pulled out of the pipeline; preserves the full typed
    /// error (stage, cause, attempt count).
    Quarantined {
        /// Program name.
        program: String,
        /// Unit key, when the quarantine is report-scoped.
        key: Option<String>,
        /// Racy global, when named.
        global: Option<String>,
        /// Why it was quarantined.
        error: PipelineError,
        /// Verification attempts the unit spent before quarantine.
        attempts: u64,
        /// Faults injected into the unit before quarantine.
        injected_faults: u64,
    },
    /// A program ran to completion; carries the data the campaign
    /// summary is rebuilt from.
    ProgramFinished {
        /// Program name.
        program: String,
        /// Campaign attempts used (1 = first try).
        attempts: u64,
        /// Deterministic result summary.
        summary: ProgramSummary,
    },
    /// A program exhausted its retry budget and was abandoned; the
    /// campaign degrades gracefully and moves on.
    ProgramQuarantined {
        /// Program name.
        program: String,
        /// Campaign attempts spent before giving up.
        attempts: u64,
        /// The last attempt's failure.
        error: PipelineError,
    },
    /// A completed analysis result in the `owl serve` result store,
    /// keyed by the `(program, config)` fingerprint. Duplicate
    /// submissions are answered from this record without re-running
    /// any pipeline stage.
    ResultCached {
        /// [`crate::campaign::campaign_fingerprint`] of the single
        /// program plus its configuration.
        fingerprint: String,
        /// Program name.
        program: String,
        /// Deterministic result summary.
        summary: ProgramSummary,
    },
}

impl JournalRecord {
    /// The program this record belongs to (`None` for the header).
    pub fn program(&self) -> Option<&str> {
        match self {
            JournalRecord::CampaignStarted { .. } => None,
            JournalRecord::ReportVerified { program, .. }
            | JournalRecord::FindingAnalyzed { program, .. }
            | JournalRecord::Quarantined { program, .. }
            | JournalRecord::ProgramFinished { program, .. }
            | JournalRecord::ProgramQuarantined { program, .. }
            | JournalRecord::ResultCached { program, .. } => Some(program),
        }
    }
}

// ---------------------------------------------------------------------
// Enum <-> string codecs (stable names; changing one invalidates old
// journals, so bump the fingerprint story in DESIGN.md if you must).
// ---------------------------------------------------------------------

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Detect => "detect",
        Stage::AdhocSync => "adhoc-sync",
        Stage::RaceVerify => "race-verify",
        Stage::VulnAnalyze => "vuln-analyze",
        Stage::VulnVerify => "vuln-verify",
    }
}

fn parse_stage(s: &str) -> Option<Stage> {
    Some(match s {
        "detect" => Stage::Detect,
        "adhoc-sync" => Stage::AdhocSync,
        "race-verify" => Stage::RaceVerify,
        "vuln-analyze" => Stage::VulnAnalyze,
        "vuln-verify" => Stage::VulnVerify,
        _ => return None,
    })
}

fn cause_name(cause: AbortCause) -> &'static str {
    match cause {
        AbortCause::DeadlineExceeded => "deadline-exceeded",
        AbortCause::StepBudgetExhausted => "step-budget-exhausted",
        AbortCause::Panicked => "panicked",
        AbortCause::MemoryBudget => "memory-budget",
    }
}

fn parse_cause(s: &str) -> Option<AbortCause> {
    Some(match s {
        "deadline-exceeded" => AbortCause::DeadlineExceeded,
        "step-budget-exhausted" => AbortCause::StepBudgetExhausted,
        "panicked" => AbortCause::Panicked,
        "memory-budget" => AbortCause::MemoryBudget,
        _ => return None,
    })
}

fn class_name(class: VulnClass) -> &'static str {
    match class {
        VulnClass::MemoryOp => "memory-op",
        VulnClass::NullDeref => "null-deref",
        VulnClass::PrivilegeOp => "privilege-op",
        VulnClass::FileOp => "file-op",
        VulnClass::ExecOp => "exec-op",
    }
}

fn parse_class(s: &str) -> Option<VulnClass> {
    Some(match s {
        "memory-op" => VulnClass::MemoryOp,
        "null-deref" => VulnClass::NullDeref,
        "privilege-op" => VulnClass::PrivilegeOp,
        "file-op" => VulnClass::FileOp,
        "exec-op" => VulnClass::ExecOp,
        _ => return None,
    })
}

fn dep_name(dep: DepKind) -> &'static str {
    match dep {
        DepKind::DataDep => "data-dep",
        DepKind::CtrlDep => "ctrl-dep",
    }
}

fn parse_dep(s: &str) -> Option<DepKind> {
    Some(match s {
        "data-dep" => DepKind::DataDep,
        "ctrl-dep" => DepKind::CtrlDep,
        _ => return None,
    })
}

fn encode_iref(r: InstRef) -> Json {
    Json::Arr(vec![Json::UInt(r.func.0 as u64), Json::UInt(r.inst.0 as u64)])
}

fn decode_iref(v: &Json) -> Option<InstRef> {
    let a = v.as_arr()?;
    if a.len() != 2 {
        return None;
    }
    Some(InstRef {
        func: FuncId(u32::try_from(a[0].as_u64()?).ok()?),
        inst: InstId(u32::try_from(a[1].as_u64()?).ok()?),
    })
}

fn encode_irefs(rs: &[InstRef]) -> Json {
    Json::Arr(rs.iter().map(|r| encode_iref(*r)).collect())
}

fn decode_irefs(v: &Json) -> Option<Vec<InstRef>> {
    v.as_arr()?.iter().map(decode_iref).collect()
}

fn opt_str(v: &Option<String>) -> Json {
    match v {
        Some(s) => Json::str(s.clone()),
        None => Json::Null,
    }
}

fn decode_opt_str(v: Option<&Json>) -> Option<Option<String>> {
    match v? {
        Json::Null => Some(None),
        Json::Str(s) => Some(Some(s.clone())),
        _ => None,
    }
}

/// Encodes a [`PipelineError`] (shared with the CLI's `--json` output).
pub fn encode_error(error: &PipelineError) -> Json {
    match error {
        PipelineError::Panicked { stage, message } => Json::obj([
            ("kind", Json::str("panicked")),
            ("stage", Json::str(stage_name(*stage))),
            ("message", Json::str(message.clone())),
        ]),
        PipelineError::StageDeadline { stage } => Json::obj([
            ("kind", Json::str("stage-deadline")),
            ("stage", Json::str(stage_name(*stage))),
        ]),
        PipelineError::VerifierAborted {
            stage,
            cause,
            attempts,
        } => Json::obj([
            ("kind", Json::str("verifier-aborted")),
            ("stage", Json::str(stage_name(*stage))),
            ("cause", Json::str(cause_name(*cause))),
            ("attempts", Json::UInt(*attempts)),
        ]),
        PipelineError::InvalidEntry { reason } => Json::obj([
            ("kind", Json::str("invalid-entry")),
            ("reason", Json::str(reason.clone())),
        ]),
    }
}

fn decode_error(v: &Json) -> Option<PipelineError> {
    let stage = || parse_stage(v.get("stage")?.as_str()?);
    Some(match v.get("kind")?.as_str()? {
        "panicked" => PipelineError::Panicked {
            stage: stage()?,
            message: v.get("message")?.as_str()?.to_string(),
        },
        "stage-deadline" => PipelineError::StageDeadline { stage: stage()? },
        "verifier-aborted" => PipelineError::VerifierAborted {
            stage: stage()?,
            cause: parse_cause(v.get("cause")?.as_str()?)?,
            attempts: v.get("attempts")?.as_u64()?,
        },
        "invalid-entry" => PipelineError::InvalidEntry {
            reason: v.get("reason")?.as_str()?.to_string(),
        },
        _ => return None,
    })
}

fn encode_verdict(v: VerifyOutcome) -> Json {
    match v {
        VerifyOutcome::Confirmed => Json::obj([("kind", Json::str("confirmed"))]),
        VerifyOutcome::Unconfirmed => Json::obj([("kind", Json::str("unconfirmed"))]),
        VerifyOutcome::Aborted { cause, attempts } => Json::obj([
            ("kind", Json::str("aborted")),
            ("cause", Json::str(cause_name(cause))),
            ("attempts", Json::UInt(attempts)),
        ]),
    }
}

fn decode_verdict(v: &Json) -> Option<VerifyOutcome> {
    Some(match v.get("kind")?.as_str()? {
        "confirmed" => VerifyOutcome::Confirmed,
        "unconfirmed" => VerifyOutcome::Unconfirmed,
        "aborted" => VerifyOutcome::Aborted {
            cause: parse_cause(v.get("cause")?.as_str()?)?,
            attempts: v.get("attempts")?.as_u64()?,
        },
        _ => return None,
    })
}

/// Encodes a [`RecordedVuln`] (shared with the CLI's `--json` output).
pub fn encode_vuln(v: &RecordedVuln) -> Json {
    Json::obj([
        (
            "report",
            Json::obj([
                ("site", encode_iref(v.report.site)),
                ("class", Json::str(class_name(v.report.class))),
                ("dep", Json::str(dep_name(v.report.dep))),
                ("source", encode_iref(v.report.source)),
                ("branches", encode_irefs(&v.report.branches)),
                ("path_branches", encode_irefs(&v.report.path_branches)),
                ("chain", encode_irefs(&v.report.chain)),
            ]),
        ),
        ("reached", Json::Bool(v.reached)),
        ("verdict", encode_verdict(v.verdict)),
        ("attempts", Json::UInt(v.attempts)),
        ("faults", Json::UInt(v.injected_faults)),
    ])
}

fn decode_vuln(v: &Json) -> Option<RecordedVuln> {
    let r = v.get("report")?;
    Some(RecordedVuln {
        report: VulnReport {
            site: decode_iref(r.get("site")?)?,
            class: parse_class(r.get("class")?.as_str()?)?,
            dep: parse_dep(r.get("dep")?.as_str()?)?,
            source: decode_iref(r.get("source")?)?,
            branches: decode_irefs(r.get("branches")?)?,
            path_branches: decode_irefs(r.get("path_branches")?)?,
            chain: decode_irefs(r.get("chain")?)?,
        },
        reached: v.get("reached")?.as_bool()?,
        verdict: decode_verdict(v.get("verdict")?)?,
        attempts: v.get("attempts")?.as_u64()?,
        injected_faults: v.get("faults")?.as_u64()?,
    })
}

/// Encodes a [`ProgramSummary`] (shared with the CLI's `--json`
/// output).
pub fn encode_summary(s: &ProgramSummary) -> Json {
    Json::obj([
        ("raw", Json::UInt(s.raw_reports as u64)),
        ("adhoc", Json::UInt(s.adhoc_syncs as u64)),
        ("annotated", Json::UInt(s.post_annotation_reports as u64)),
        ("eliminated", Json::UInt(s.verifier_eliminated as u64)),
        ("remaining", Json::UInt(s.remaining as u64)),
        ("vulnerable", Json::UInt(s.vulnerable as u64)),
        ("faults", Json::UInt(s.injected_faults)),
        ("quarantined", Json::UInt(s.quarantined)),
        (
            "findings",
            Json::Arr(
                s.findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("global", Json::str(f.global.clone())),
                            (
                                "hints",
                                Json::Arr(
                                    f.hints
                                        .iter()
                                        .map(|h| {
                                            Json::obj([
                                                ("class", Json::str(class_name(h.class))),
                                                ("dep", Json::str(dep_name(h.dep))),
                                                ("reached", Json::Bool(h.reached)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a [`ProgramSummary`] produced by [`encode_summary`] (shared
/// with the `owl serve` wire protocol).
pub fn decode_summary(v: &Json) -> Option<ProgramSummary> {
    let findings = v
        .get("findings")?
        .as_arr()?
        .iter()
        .map(|f| {
            Some(FindingSummary {
                global: f.get("global")?.as_str()?.to_string(),
                hints: f
                    .get("hints")?
                    .as_arr()?
                    .iter()
                    .map(|h| {
                        Some(HintSummary {
                            class: parse_class(h.get("class")?.as_str()?)?,
                            dep: parse_dep(h.get("dep")?.as_str()?)?,
                            reached: h.get("reached")?.as_bool()?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(ProgramSummary {
        raw_reports: v.get("raw")?.as_usize()?,
        adhoc_syncs: v.get("adhoc")?.as_usize()?,
        post_annotation_reports: v.get("annotated")?.as_usize()?,
        verifier_eliminated: v.get("eliminated")?.as_usize()?,
        remaining: v.get("remaining")?.as_usize()?,
        vulnerable: v.get("vulnerable")?.as_usize()?,
        injected_faults: v.get("faults")?.as_u64()?,
        quarantined: v.get("quarantined")?.as_u64()?,
        findings,
    })
}

/// Encodes a [`crate::PipelineHealth`] (shared with the CLI's `--json`
/// output). Wall-clock fields are deliberately omitted — health JSON
/// stays deterministic for equal seeds.
pub fn encode_health(h: &crate::PipelineHealth) -> Json {
    let stage = |s: &crate::StageHealth| {
        Json::obj([
            ("attempts", Json::UInt(s.attempts)),
            ("retries", Json::UInt(s.retries)),
            ("faults", Json::UInt(s.injected_faults)),
            ("deadline_hits", Json::UInt(s.deadline_hits)),
            ("panics", Json::UInt(s.panics)),
            ("quarantined", Json::UInt(s.quarantined)),
        ])
    };
    Json::obj([
        ("detect", stage(&h.detect)),
        ("race_verify", stage(&h.race_verify)),
        ("vuln_analyze", stage(&h.vuln_analyze)),
        ("vuln_verify", stage(&h.vuln_verify)),
        ("summary_cache_hits", Json::UInt(h.summary_cache_hits)),
        ("summary_cache_misses", Json::UInt(h.summary_cache_misses)),
        (
            "journal_discarded_bytes",
            Json::UInt(h.journal_discarded_bytes),
        ),
        (
            "journal_discarded_records",
            Json::UInt(h.journal_discarded_records),
        ),
        ("detector_suppressed", Json::UInt(h.detector_suppressed)),
        (
            "detector_reports_dropped",
            Json::UInt(h.detector_reports_dropped),
        ),
        (
            "elision_sites_thread_local",
            Json::UInt(h.elision_sites_thread_local),
        ),
        (
            "elision_sites_lock_dominated",
            Json::UInt(h.elision_sites_lock_dominated),
        ),
        (
            "elision_sites_read_only",
            Json::UInt(h.elision_sites_read_only),
        ),
        (
            "elision_events_elided",
            Json::UInt(h.elision_events_elided),
        ),
        ("trace_spilled_bytes", Json::UInt(h.trace_spilled_bytes)),
        (
            "trace_spill_segments",
            Json::UInt(h.trace_spill_segments),
        ),
        ("mem_pressure_events", Json::UInt(h.mem_pressure_events)),
        ("shadow_cells_gced", Json::UInt(h.shadow_cells_gced)),
        (
            "units_aborted_mem_budget",
            Json::UInt(h.units_aborted_mem_budget),
        ),
        ("predict_candidates", Json::UInt(h.predict_candidates)),
        ("predict_witnessed", Json::UInt(h.predict_witnessed)),
        (
            "predict_witness_rejected",
            Json::UInt(h.predict_witness_rejected),
        ),
        (
            "predict_reversal_races",
            Json::UInt(h.predict_reversal_races),
        ),
        ("units_forked", Json::UInt(h.units_forked)),
        ("prefix_steps_saved", Json::UInt(h.prefix_steps_saved)),
        ("schedules_deduped", Json::UInt(h.schedules_deduped)),
        ("snapshot_bytes", Json::UInt(h.snapshot_bytes)),
    ])
}

fn encode_record(rec: &JournalRecord) -> Json {
    match rec {
        JournalRecord::CampaignStarted {
            fingerprint,
            programs,
        } => Json::obj([
            ("t", Json::str("campaign-started")),
            ("fingerprint", Json::str(fingerprint.clone())),
            (
                "programs",
                Json::Arr(programs.iter().map(|p| Json::str(p.clone())).collect()),
            ),
        ]),
        JournalRecord::ReportVerified {
            program,
            key,
            global,
            confirmed,
            attempts,
            injected_faults,
        } => Json::obj([
            ("t", Json::str("report-verified")),
            ("program", Json::str(program.clone())),
            ("key", Json::str(key.clone())),
            ("global", opt_str(global)),
            ("confirmed", Json::Bool(*confirmed)),
            ("attempts", Json::UInt(*attempts)),
            ("faults", Json::UInt(*injected_faults)),
        ]),
        JournalRecord::FindingAnalyzed {
            program,
            key,
            global,
            vulns,
        } => Json::obj([
            ("t", Json::str("finding-analyzed")),
            ("program", Json::str(program.clone())),
            ("key", Json::str(key.clone())),
            ("global", opt_str(global)),
            ("vulns", Json::Arr(vulns.iter().map(encode_vuln).collect())),
        ]),
        JournalRecord::Quarantined {
            program,
            key,
            global,
            error,
            attempts,
            injected_faults,
        } => Json::obj([
            ("t", Json::str("quarantined")),
            ("program", Json::str(program.clone())),
            ("key", opt_str(key)),
            ("global", opt_str(global)),
            ("error", encode_error(error)),
            ("attempts", Json::UInt(*attempts)),
            ("faults", Json::UInt(*injected_faults)),
        ]),
        JournalRecord::ProgramFinished {
            program,
            attempts,
            summary,
        } => Json::obj([
            ("t", Json::str("program-finished")),
            ("program", Json::str(program.clone())),
            ("attempts", Json::UInt(*attempts)),
            ("summary", encode_summary(summary)),
        ]),
        JournalRecord::ProgramQuarantined {
            program,
            attempts,
            error,
        } => Json::obj([
            ("t", Json::str("program-quarantined")),
            ("program", Json::str(program.clone())),
            ("attempts", Json::UInt(*attempts)),
            ("error", encode_error(error)),
        ]),
        JournalRecord::ResultCached {
            fingerprint,
            program,
            summary,
        } => Json::obj([
            ("t", Json::str("result-cached")),
            ("fingerprint", Json::str(fingerprint.clone())),
            ("program", Json::str(program.clone())),
            ("summary", encode_summary(summary)),
        ]),
    }
}

fn decode_record(v: &Json) -> Option<JournalRecord> {
    let program = || Some(v.get("program")?.as_str()?.to_string());
    Some(match v.get("t")?.as_str()? {
        "campaign-started" => JournalRecord::CampaignStarted {
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            programs: v
                .get("programs")?
                .as_arr()?
                .iter()
                .map(|p| Some(p.as_str()?.to_string()))
                .collect::<Option<Vec<_>>>()?,
        },
        "report-verified" => JournalRecord::ReportVerified {
            program: program()?,
            key: v.get("key")?.as_str()?.to_string(),
            global: decode_opt_str(v.get("global"))?,
            confirmed: v.get("confirmed")?.as_bool()?,
            attempts: v.get("attempts")?.as_u64()?,
            injected_faults: v.get("faults")?.as_u64()?,
        },
        "finding-analyzed" => JournalRecord::FindingAnalyzed {
            program: program()?,
            key: v.get("key")?.as_str()?.to_string(),
            global: decode_opt_str(v.get("global"))?,
            vulns: v
                .get("vulns")?
                .as_arr()?
                .iter()
                .map(decode_vuln)
                .collect::<Option<Vec<_>>>()?,
        },
        "quarantined" => JournalRecord::Quarantined {
            program: program()?,
            key: decode_opt_str(v.get("key"))?,
            global: decode_opt_str(v.get("global"))?,
            error: decode_error(v.get("error")?)?,
            attempts: v.get("attempts")?.as_u64()?,
            injected_faults: v.get("faults")?.as_u64()?,
        },
        "program-finished" => JournalRecord::ProgramFinished {
            program: program()?,
            attempts: v.get("attempts")?.as_u64()?,
            summary: decode_summary(v.get("summary")?)?,
        },
        "program-quarantined" => JournalRecord::ProgramQuarantined {
            program: program()?,
            attempts: v.get("attempts")?.as_u64()?,
            error: decode_error(v.get("error")?)?,
        },
        "result-cached" => JournalRecord::ResultCached {
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            program: program()?,
            summary: decode_summary(v.get("summary")?)?,
        },
        _ => return None,
    })
}

const LINE_PREFIX: &[u8] = b"{\"crc\":\"";
const LINE_MID: &[u8] = b"\",\"rec\":";

/// Formats one journal line (without the trailing newline the writer
/// appends).
fn format_line(rec: &JournalRecord) -> String {
    let payload = encode_record(rec).to_json_string();
    let crc = fnv1a64(payload.as_bytes());
    format!("{{\"crc\":\"{crc:016x}\",\"rec\":{payload}}}")
}

/// Validates one newline-stripped journal line: prefix shape, checksum
/// over the exact payload bytes, then record decode.
fn parse_line(line: &[u8]) -> Result<JournalRecord, String> {
    if !line.starts_with(LINE_PREFIX) {
        return Err("missing crc prefix".to_string());
    }
    let rest = &line[LINE_PREFIX.len()..];
    if rest.len() < 16 + LINE_MID.len() + 1 {
        return Err("line too short".to_string());
    }
    let (crc_hex, rest) = rest.split_at(16);
    let crc_hex = std::str::from_utf8(crc_hex).map_err(|_| "crc not ASCII".to_string())?;
    let crc = u64::from_str_radix(crc_hex, 16).map_err(|_| "crc not hex".to_string())?;
    if !rest.starts_with(LINE_MID) {
        return Err("malformed line frame".to_string());
    }
    let rest = &rest[LINE_MID.len()..];
    if rest.last() != Some(&b'}') {
        return Err("missing closing brace".to_string());
    }
    let payload = &rest[..rest.len() - 1];
    if fnv1a64(payload) != crc {
        return Err("checksum mismatch".to_string());
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "payload not UTF-8".to_string())?;
    let value = json::parse(payload).map_err(|e| e.to_string())?;
    decode_record(&value).ok_or_else(|| "unknown or malformed record".to_string())
}

/// An open, recovered, append-only run journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: Vec<JournalRecord>,
    recovery: RecoveryReport,
    appends: u64,
    kill_after: Option<u64>,
    killed: bool,
}

impl Journal {
    /// Opens (creating if absent) and recovers a journal: every line is
    /// re-validated — frame, checksum, record decode — and the file is
    /// truncated back to the last valid record if a torn or corrupt
    /// tail is found.
    pub fn open(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut valid_end = 0usize;
        while pos < bytes.len() {
            let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                break; // torn tail: no newline before EOF
            };
            let line = &bytes[pos..pos + nl];
            match parse_line(line) {
                Ok(rec) => {
                    records.push(rec);
                    pos += nl + 1;
                    valid_end = pos;
                }
                Err(_) => break, // first corrupt line: discard the rest
            }
        }

        let discarded = &bytes[valid_end..];
        let discarded_records = if discarded.is_empty() {
            0
        } else {
            let terminated = discarded.iter().filter(|&&b| b == b'\n').count() as u64;
            let torn_tail = u64::from(*discarded.last().expect("non-empty") != b'\n');
            terminated + torn_tail
        };
        let recovery = RecoveryReport {
            valid_records: records.len() as u64,
            discarded_records,
            discarded_bytes: discarded.len() as u64,
        };
        if recovery.recovered() {
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        Ok(Journal {
            file,
            path,
            records,
            recovery,
            appends: 0,
            kill_after: None,
            killed: false,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every valid record, recovered plus appended, in file order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// What open-time recovery found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Appends completed by this handle (not counting recovered
    /// records).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Arms a hard kill point: panic with [`JournalKilled`] right after
    /// the `n`-th successful append (1-based). `None` disarms.
    pub fn set_kill_after(&mut self, n: Option<u64>) {
        self.kill_after = n;
    }

    /// Durably appends one record: write, flush, fsync — the record is
    /// on disk before this returns.
    ///
    /// Once the armed kill point has fired, the journal is dead: any
    /// later append panics with [`JournalKilled`] *before* touching the
    /// file, so concurrent workers racing past a kill cannot write a
    /// single byte beyond the `n`-th record. That is what keeps "kill
    /// after n appends" meaning *exactly n records on disk* even under
    /// a multi-worker campaign.
    pub fn append(&mut self, rec: JournalRecord) -> Result<(), JournalError> {
        if self.killed {
            std::panic::panic_any(JournalKilled {
                appends: self.appends,
                kind: FaultKind::JournalKill,
            });
        }
        let mut line = format_line(&rec);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.records.push(rec);
        self.appends += 1;
        if self.kill_after == Some(self.appends) {
            self.killed = true;
            std::panic::panic_any(JournalKilled {
                appends: self.appends,
                kind: FaultKind::JournalKill,
            });
        }
        Ok(())
    }

    /// Durably appends a batch of records with **one** fsync — the
    /// group-commit path. Every record still occupies its own
    /// checksummed line (the on-disk format is identical to repeated
    /// [`Journal::append`] calls), but the batch shares a single
    /// `write + flush + sync_data`, so a committer paying one fsync
    /// latency can persist every record queued behind it.
    ///
    /// The armed kill point keeps its exact semantics: if the `n`-th
    /// append lands *inside* this batch, only the records up to and
    /// including the `n`-th are written (each one whole), the prefix is
    /// fsync'd, and the journal panics with [`JournalKilled`] — so
    /// "kill after n appends" still means *exactly n records on disk*,
    /// and a batch interrupted by the kill recovers to a clean
    /// record boundary, never a torn line.
    pub fn append_batch(&mut self, recs: Vec<JournalRecord>) -> Result<(), JournalError> {
        if recs.is_empty() {
            return Ok(());
        }
        if self.killed {
            std::panic::panic_any(JournalKilled {
                appends: self.appends,
                kind: FaultKind::JournalKill,
            });
        }
        // Does the armed kill point land inside this batch?
        let kill_at = self
            .kill_after
            .and_then(|n| n.checked_sub(self.appends))
            .filter(|&k| k >= 1 && k <= recs.len() as u64);
        let write_n = kill_at.map_or(recs.len(), |k| k as usize);
        let mut buf = String::new();
        for rec in &recs[..write_n] {
            buf.push_str(&format_line(rec));
            buf.push('\n');
        }
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        for rec in recs.into_iter().take(write_n) {
            self.records.push(rec);
        }
        self.appends += write_n as u64;
        if kill_at.is_some() {
            self.killed = true;
            std::panic::panic_any(JournalKilled {
                appends: self.appends,
                kind: FaultKind::JournalKill,
            });
        }
        Ok(())
    }

    /// The terminal record for `program` (finished or quarantined), if
    /// the campaign already completed it.
    pub fn program_terminal(&self, program: &str) -> Option<&JournalRecord> {
        self.records.iter().find(|r| match r {
            JournalRecord::ProgramFinished { program: p, .. }
            | JournalRecord::ProgramQuarantined { program: p, .. } => p == program,
            _ => false,
        })
    }
}

/// Where the pipeline checkpoints completed units. `Journal` is the
/// single-owner implementation; [`SharedJournal`] serializes the same
/// operations across campaign workers.
///
/// `program_records` returns an owned snapshot rather than borrowing
/// the record stream because a shared sink's records live behind a
/// lock that cannot be held across a whole pipeline run.
pub trait JournalSink {
    /// Durably appends one record (write, flush, fsync), same contract
    /// as [`Journal::append`] — including the armed kill point.
    fn append_record(&mut self, rec: JournalRecord) -> Result<(), JournalError>;

    /// Durably appends a batch of records. The default implementation
    /// falls back to per-record appends (one fsync each); sinks with a
    /// real group-commit path override it.
    fn append_batch_records(&mut self, recs: Vec<JournalRecord>) -> Result<(), JournalError> {
        for rec in recs {
            self.append_record(rec)?;
        }
        Ok(())
    }

    /// Snapshot of the records already journaled for `program`, in
    /// file order.
    fn program_records(&self, program: &str) -> Vec<JournalRecord>;

    /// What open-time recovery found.
    fn recovery_report(&self) -> RecoveryReport;
}

impl JournalSink for Journal {
    fn append_record(&mut self, rec: JournalRecord) -> Result<(), JournalError> {
        self.append(rec)
    }

    fn append_batch_records(&mut self, recs: Vec<JournalRecord>) -> Result<(), JournalError> {
        self.append_batch(recs)
    }

    fn program_records(&self, program: &str) -> Vec<JournalRecord> {
        self.records
            .iter()
            .filter(|r| r.program() == Some(program))
            .cloned()
            .collect()
    }

    fn recovery_report(&self) -> RecoveryReport {
        self.recovery.clone()
    }
}

/// A [`Journal`] behind `Arc<Mutex<_>>`: the serialized writer the
/// parallel campaign hands to every worker. Appends take the lock for
/// the full write+fsync, so records never interleave mid-line and the
/// on-disk order is exactly the lock-acquisition order.
///
/// Locking is poison-tolerant: an armed kill point panics *while
/// holding the lock* (that is the point — it simulates dying mid-run),
/// and the surviving workers must still be able to observe the killed
/// flag rather than deadlock or spuriously panic on `PoisonError`.
#[derive(Clone, Debug)]
pub struct SharedJournal {
    inner: std::sync::Arc<std::sync::Mutex<Journal>>,
}

impl SharedJournal {
    /// Wraps an opened, validated journal for shared use.
    pub fn new(journal: Journal) -> Self {
        SharedJournal {
            inner: std::sync::Arc::new(std::sync::Mutex::new(journal)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Journal> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Serialized [`Journal::append`].
    pub fn append(&self, rec: JournalRecord) -> Result<(), JournalError> {
        self.lock().append(rec)
    }

    /// Serialized [`Journal::append_batch`] — one fsync for the whole
    /// batch.
    pub fn append_batch(&self, recs: Vec<JournalRecord>) -> Result<(), JournalError> {
        self.lock().append_batch(recs)
    }

    /// Snapshot of every record, in file order.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.lock().records().to_vec()
    }

    /// What open-time recovery found.
    pub fn recovery(&self) -> RecoveryReport {
        self.lock().recovery().clone()
    }

    /// Appends completed through this shared handle.
    pub fn appends(&self) -> u64 {
        self.lock().appends()
    }
}

impl JournalSink for SharedJournal {
    fn append_record(&mut self, rec: JournalRecord) -> Result<(), JournalError> {
        self.append(rec)
    }

    fn append_batch_records(&mut self, recs: Vec<JournalRecord>) -> Result<(), JournalError> {
        self.append_batch(recs)
    }

    fn program_records(&self, program: &str) -> Vec<JournalRecord> {
        self.lock()
            .records()
            .iter()
            .filter(|r| r.program() == Some(program))
            .cloned()
            .collect()
    }

    fn recovery_report(&self) -> RecoveryReport {
        self.recovery()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "owl-journal-test-{}-{tag}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::CampaignStarted {
                fingerprint: "abc123".into(),
                programs: vec!["Libsafe".into(), "SSDB".into()],
            },
            JournalRecord::ReportVerified {
                program: "Libsafe".into(),
                key: "@f1:%2|@f3:%4|0x1000|dying".into(),
                global: Some("dying".into()),
                confirmed: true,
                attempts: 3,
                injected_faults: 1,
            },
            JournalRecord::Quarantined {
                program: "Libsafe".into(),
                key: Some("@f1:%2|@f3:%4|0x1008|-".into()),
                global: None,
                error: PipelineError::VerifierAborted {
                    stage: Stage::RaceVerify,
                    cause: AbortCause::StepBudgetExhausted,
                    attempts: 7,
                },
                attempts: 7,
                injected_faults: 2,
            },
            JournalRecord::ProgramFinished {
                program: "Libsafe".into(),
                attempts: 1,
                summary: ProgramSummary {
                    raw_reports: 2,
                    adhoc_syncs: 0,
                    post_annotation_reports: 2,
                    verifier_eliminated: 0,
                    remaining: 2,
                    vulnerable: 1,
                    injected_faults: 1,
                    quarantined: 1,
                    findings: vec![FindingSummary {
                        global: "dying".into(),
                        hints: vec![HintSummary {
                            class: VulnClass::MemoryOp,
                            dep: DepKind::CtrlDep,
                            reached: true,
                        }],
                    }],
                },
            },
        ]
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let path = tmp_path("roundtrip");
        let recs = sample_records();
        {
            let mut j = Journal::open(&path).unwrap();
            for r in &recs {
                j.append(r.clone()).unwrap();
            }
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records(), recs.as_slice());
        assert!(!j.recovery().recovered());
        assert_eq!(j.recovery().valid_records, recs.len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp_path("torn");
        {
            let mut j = Journal::open(&path).unwrap();
            for r in sample_records() {
                j.append(r).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Truncate the last record mid-line (no trailing newline).
        let cut = full.len() - 10;
        std::fs::write(&path, &full[..cut]).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records().len(), sample_records().len() - 1);
        assert_eq!(j.recovery().discarded_records, 1);
        assert!(j.recovery().discarded_bytes > 0);
        // The file itself was repaired.
        let repaired = std::fs::read(&path).unwrap();
        assert!(full.starts_with(&repaired));
        assert_eq!(*repaired.last().unwrap(), b'\n');
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_checksum_discards_from_there() {
        let path = tmp_path("crc");
        {
            let mut j = Journal::open(&path).unwrap();
            for r in sample_records() {
                j.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte inside the second record's line.
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let idx = first_nl + 40;
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::open(&path).unwrap();
        // Only the header survives: the corrupt record and everything
        // after it are discarded.
        assert_eq!(j.records().len(), 1);
        assert_eq!(j.recovery().discarded_records, 3);
        assert_eq!(
            j.recovery().discarded_bytes,
            (bytes.len() - first_nl - 1) as u64
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_point_fires_after_nth_append() {
        let path = tmp_path("kill");
        let mut j = Journal::open(&path).unwrap();
        j.set_kill_after(Some(2));
        j.append(sample_records().remove(0)).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            j.append(sample_records().remove(1))
        }))
        .expect_err("kill point must fire");
        let killed = err
            .downcast_ref::<JournalKilled>()
            .expect("payload is JournalKilled");
        assert_eq!(killed.appends, 2);
        assert_eq!(killed.kind, FaultKind::JournalKill);
        // Both appends are durably on disk — the "crash" lost nothing.
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.records().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_batch_round_trips_and_matches_per_record_format() {
        let batch_path = tmp_path("batch");
        let single_path = tmp_path("single");
        let recs = sample_records();
        {
            let mut j = Journal::open(&batch_path).unwrap();
            j.append_batch(recs.clone()).unwrap();
            assert_eq!(j.appends(), recs.len() as u64);
        }
        {
            let mut j = Journal::open(&single_path).unwrap();
            for r in &recs {
                j.append(r.clone()).unwrap();
            }
        }
        // Byte-identical to per-record appends: one line per record,
        // same checksummed frame.
        assert_eq!(
            std::fs::read(&batch_path).unwrap(),
            std::fs::read(&single_path).unwrap()
        );
        let j = Journal::open(&batch_path).unwrap();
        assert_eq!(j.records(), recs.as_slice());
        assert!(!j.recovery().recovered());
        let _ = std::fs::remove_file(&batch_path);
        let _ = std::fs::remove_file(&single_path);
    }

    #[test]
    fn kill_point_mid_batch_leaves_exactly_n_records() {
        let path = tmp_path("batch-kill");
        let mut j = Journal::open(&path).unwrap();
        j.set_kill_after(Some(3));
        j.append(sample_records().remove(0)).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            j.append_batch(sample_records()[1..].to_vec())
        }))
        .expect_err("kill point lands inside the batch");
        let killed = err
            .downcast_ref::<JournalKilled>()
            .expect("payload is JournalKilled");
        assert_eq!(killed.appends, 3);
        // Exactly three whole records on disk — the batch was cut at
        // the kill point on a clean record boundary.
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.records(), &sample_records()[..3]);
        assert!(!j2.recovery().recovered(), "no torn line to repair");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_batch_tail_truncates_to_a_record_boundary() {
        let path = tmp_path("batch-torn");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append_batch(sample_records()).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash that tore the final record of the batch.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records(), &sample_records()[..sample_records().len() - 1]);
        assert_eq!(j.recovery().discarded_records, 1);
        let repaired = std::fs::read(&path).unwrap();
        assert!(full.starts_with(&repaired));
        assert_eq!(*repaired.last().unwrap(), b'\n');
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn result_cached_record_round_trips() {
        let path = tmp_path("result-cached");
        let rec = JournalRecord::ResultCached {
            fingerprint: "deadbeefdeadbeef".into(),
            program: "Libsafe".into(),
            summary: ProgramSummary {
                raw_reports: 3,
                remaining: 1,
                vulnerable: 1,
                ..ProgramSummary::default()
            },
        };
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(rec.clone()).unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records(), &[rec]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
