//! The daemon's crash-safe result store.
//!
//! Completed analyses are appended to a [`Journal`] as
//! [`JournalRecord::ResultCached`] lines keyed by the `(program,
//! config)` fingerprint ([`ResultStore::fingerprint`], the same
//! normalization as [`crate::campaign::campaign_fingerprint`]).
//! Duplicate submissions hit the in-memory index rebuilt from those
//! records and are answered without executing any pipeline stage; a
//! restarted daemon recovers the index through the journal's standard
//! torn-tail recovery.
//!
//! ## Group commit
//!
//! [`ResultStore::commit`] is durable on return but does **not** pay
//! one fsync per caller: committers enqueue their record under a short
//! lock and then race for the journal; the winner flushes *everything
//! queued so far* with one [`Journal::append_batch`] (a single
//! `write + fsync`), the losers wait until their ticket is covered.
//! Under a burst of completions, one fsync latency persists the whole
//! convoy — the same trick databases use for their write-ahead logs.
//!
//! A [`crate::journal::JournalKilled`] kill point firing inside a
//! flush marks the
//! store dead (waiters error out instead of blocking forever) and
//! re-raises, so the daemon dies exactly like a killed campaign.

use crate::campaign::campaign_fingerprint;
use crate::config::OwlConfig;
use crate::journal::{
    Journal, JournalError, JournalRecord, ProgramSummary, RecoveryReport,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, TryLockError};
use std::time::Duration;

/// Group-commit statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Results committed (durable).
    pub commits: u64,
    /// `append_batch` flushes performed — each one fsync.
    pub batches: u64,
    /// Records covered by those flushes. `batched_records > batches`
    /// means group commit actually coalesced concurrent committers.
    pub batched_records: u64,
}

#[derive(Debug, Default)]
struct Pending {
    /// Records queued for the next flush, tickets ascending.
    queue: Vec<(u64, JournalRecord)>,
    /// Next ticket to hand out (first is 1).
    next_ticket: u64,
    /// Highest ticket durably flushed (0 = none yet).
    flushed_ticket: u64,
    /// Fingerprint → (program, summary), durable entries only.
    index: HashMap<String, (String, ProgramSummary)>,
    /// Set when a kill point or I/O error tore down a flush; every
    /// later commit fails fast instead of waiting forever.
    dead: bool,
    stats: StoreStats,
}

/// The journal-backed result store (see the module docs).
#[derive(Debug)]
pub struct ResultStore {
    pending: Mutex<Pending>,
    flushed: Condvar,
    journal: Mutex<Journal>,
    recovery: RecoveryReport,
}

fn dead_store_error() -> JournalError {
    JournalError::Io(std::io::Error::other(
        "result store is dead (a previous flush was killed or failed)",
    ))
}

impl ResultStore {
    /// Opens (creating if absent) and recovers the store journal at
    /// `path`, rebuilding the fingerprint index from its records.
    pub fn open(path: impl AsRef<Path>) -> Result<ResultStore, JournalError> {
        let journal = Journal::open(path)?;
        let recovery = journal.recovery().clone();
        let mut index = HashMap::new();
        for rec in journal.records() {
            if let JournalRecord::ResultCached {
                fingerprint,
                program,
                summary,
            } = rec
            {
                index.insert(fingerprint.clone(), (program.clone(), summary.clone()));
            }
        }
        let next_ticket = 1;
        Ok(ResultStore {
            pending: Mutex::new(Pending {
                index,
                next_ticket,
                ..Pending::default()
            }),
            flushed: Condvar::new(),
            journal: Mutex::new(journal),
            recovery,
        })
    }

    fn lock_pending(&self) -> MutexGuard<'_, Pending> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The `(program, config)` fingerprint results are keyed by —
    /// [`campaign_fingerprint`] over the single-program list, so the
    /// same scheduling-only knobs (worker counts) are normalized out.
    pub fn fingerprint(owl: &OwlConfig, program: &str) -> String {
        campaign_fingerprint(owl, &[program.to_string()])
    }

    /// What open-time recovery found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Arms the journal's kill point (crash testing), same contract as
    /// [`Journal::set_kill_after`].
    pub fn set_kill_after(&self, n: Option<u64>) {
        self.journal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .set_kill_after(n);
    }

    /// Durable results in the store.
    pub fn len(&self) -> usize {
        self.lock_pending().index.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Group-commit statistics so far.
    pub fn stats(&self) -> StoreStats {
        self.lock_pending().stats
    }

    /// The durable result for `fingerprint`, if any.
    pub fn lookup(&self, fingerprint: &str) -> Option<(String, ProgramSummary)> {
        self.lock_pending().index.get(fingerprint).cloned()
    }

    /// Durably commits one result. Returns once the record — and, via
    /// group commit, every record queued before it — is fsync'd.
    /// Re-committing an already-stored fingerprint is a no-op.
    pub fn commit(
        &self,
        fingerprint: String,
        program: String,
        summary: ProgramSummary,
    ) -> Result<(), JournalError> {
        let ticket = {
            let mut p = self.lock_pending();
            if p.dead {
                return Err(dead_store_error());
            }
            if p.index.contains_key(&fingerprint) {
                return Ok(());
            }
            let ticket = p.next_ticket;
            p.next_ticket += 1;
            p.queue.push((
                ticket,
                JournalRecord::ResultCached {
                    fingerprint,
                    program,
                    summary,
                },
            ));
            ticket
        };
        loop {
            {
                let p = self.lock_pending();
                if p.flushed_ticket >= ticket {
                    return Ok(());
                }
                if p.dead {
                    return Err(dead_store_error());
                }
            }
            match self.journal.try_lock() {
                Ok(mut journal) => self.flush_as_leader(&mut journal)?,
                Err(TryLockError::Poisoned(poisoned)) => {
                    self.flush_as_leader(&mut poisoned.into_inner())?
                }
                Err(TryLockError::WouldBlock) => {
                    // Another committer is flushing; park briefly. The
                    // timeout (not a pure wait) covers the race where
                    // the leader finished between our ticket check and
                    // this wait.
                    let p = self.lock_pending();
                    if p.flushed_ticket >= ticket || p.dead {
                        continue;
                    }
                    let _ = self
                        .flushed
                        .wait_timeout(p, Duration::from_millis(5))
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Steals the whole pending queue and flushes it with one
    /// [`Journal::append_batch`]. Caller holds the journal lock (the
    /// flush-leader token).
    fn flush_as_leader(&self, journal: &mut Journal) -> Result<(), JournalError> {
        let batch: Vec<(u64, JournalRecord)> = {
            let mut p = self.lock_pending();
            std::mem::take(&mut p.queue)
        };
        if batch.is_empty() {
            // A previous leader covered our record; the caller's loop
            // re-checks its ticket.
            return Ok(());
        }
        let max_ticket = batch.last().expect("non-empty batch").0;
        let records: Vec<JournalRecord> = batch.iter().map(|(_, r)| r.clone()).collect();
        let count = records.len() as u64;
        let flushed = catch_unwind(AssertUnwindSafe(|| journal.append_batch(records)));
        match flushed {
            Ok(Ok(())) => {
                let mut p = self.lock_pending();
                p.flushed_ticket = max_ticket;
                p.stats.batches += 1;
                p.stats.batched_records += count;
                p.stats.commits += count;
                for (_, rec) in batch {
                    if let JournalRecord::ResultCached {
                        fingerprint,
                        program,
                        summary,
                    } = rec
                    {
                        p.index.insert(fingerprint, (program, summary));
                    }
                }
                drop(p);
                self.flushed.notify_all();
                Ok(())
            }
            Ok(Err(e)) => {
                self.mark_dead();
                Err(e)
            }
            Err(payload) => {
                // The armed kill point fired mid-flush. Some prefix of
                // the batch is durable (append_batch cut it on a record
                // boundary); mark the store dead so waiters fail fast,
                // then die like the process would.
                self.mark_dead();
                resume_unwind(payload);
            }
        }
    }

    fn mark_dead(&self) {
        let mut p = self.lock_pending();
        p.dead = true;
        drop(p);
        self.flushed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("owl-store-test-{}-{tag}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn summary(raw: usize) -> ProgramSummary {
        ProgramSummary {
            raw_reports: raw,
            ..ProgramSummary::default()
        }
    }

    #[test]
    fn commit_lookup_and_reopen() {
        let path = tmp_path("roundtrip");
        {
            let store = ResultStore::open(&path).unwrap();
            store
                .commit("fp-a".into(), "Libsafe".into(), summary(2))
                .unwrap();
            store
                .commit("fp-b".into(), "SSDB".into(), summary(5))
                .unwrap();
            assert_eq!(store.len(), 2);
            let (program, s) = store.lookup("fp-a").unwrap();
            assert_eq!(program, "Libsafe");
            assert_eq!(s.raw_reports, 2);
            assert!(store.lookup("fp-missing").is_none());
        }
        // A fresh handle rebuilds the index from the journal.
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.lookup("fp-b").unwrap().1.raw_reports, 5);
        assert!(!store.recovery().recovered());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_fingerprint_commit_is_a_noop() {
        let path = tmp_path("dup");
        let store = ResultStore::open(&path).unwrap();
        store
            .commit("fp".into(), "Libsafe".into(), summary(1))
            .unwrap();
        store
            .commit("fp".into(), "Libsafe".into(), summary(9))
            .unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().commits, 1, "second commit wrote nothing");
        assert_eq!(store.lookup("fp").unwrap().1.raw_reports, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_commits_all_become_durable() {
        let path = tmp_path("concurrent");
        let store = Arc::new(ResultStore::open(&path).unwrap());
        let threads: Vec<_> = (0..16)
            .map(|i| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    store
                        .commit(format!("fp-{i}"), format!("P{i}"), summary(i))
                        .unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.commits, 16);
        assert_eq!(stats.batched_records, 16);
        assert!(stats.batches <= 16, "never more flushes than commits");
        drop(store);
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 16, "every commit survived reopen");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_flush_marks_store_dead_and_recovers_on_reopen() {
        let path = tmp_path("killed");
        let store = ResultStore::open(&path).unwrap();
        store
            .commit("fp-0".into(), "P0".into(), summary(0))
            .unwrap();
        store.set_kill_after(Some(2));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            store.commit("fp-1".into(), "P1".into(), summary(1))
        }))
        .expect_err("kill point fires during the flush");
        assert!(
            err.downcast_ref::<crate::journal::JournalKilled>().is_some(),
            "JournalKilled re-raised"
        );
        // The store is dead: later commits fail fast instead of
        // blocking on a flush that will never come.
        assert!(store
            .commit("fp-2".into(), "P2".into(), summary(2))
            .is_err());
        drop(store);
        // The killed record was fsync'd before the panic — reopening
        // recovers both.
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(!reopened.recovery().recovered());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_normalizes_scheduling_knobs() {
        let quick = OwlConfig::quick();
        let fp = ResultStore::fingerprint(&quick, "Libsafe");
        let mut pooled = OwlConfig::quick();
        pooled.detect.workers = 8;
        assert_eq!(fp, ResultStore::fingerprint(&pooled, "Libsafe"));
        assert_ne!(fp, ResultStore::fingerprint(&quick, "SSDB"));
        assert_ne!(fp, ResultStore::fingerprint(&OwlConfig::default(), "Libsafe"));
    }
}
