//! `owl serve`: a resident analysis daemon.
//!
//! One process owns a Unix-domain socket and a journal-backed
//! [`ResultStore`]; clients submit corpus programs over line-delimited
//! JSON ([`protocol`]) and get back the same deterministic
//! [`crate::ProgramSummary`] the campaign runner would produce.
//! DESIGN.md §13 documents the architecture; the short version:
//!
//! * **Admission control** ([`admission`]): every submit passes a
//!   bounded submission window and an in-flight byte budget, or is shed
//!   with a typed [`RejectReason`] — the daemon degrades predictably
//!   under overload instead of queueing without bound.
//! * **Execution**: admitted jobs flow through the campaign's
//!   [`DeadlineQueue`] into a bounded worker pool. Each request runs
//!   under `catch_unwind`; a panicking pipeline quarantines that one
//!   request (`failed`/`quarantined` on the wire) and the daemon keeps
//!   serving. A request still queued past its deadline is cancelled,
//!   never executed.
//! * **Crash-safe result store** ([`store`]): results are group-
//!   committed to an append-only journal keyed by the `(program,
//!   config)` fingerprint. Duplicate submissions — across restarts too
//!   — are answered from the store without executing any pipeline
//!   stage.
//! * **Observability**: a watchdog samples queue depth, active
//!   workers, and in-flight bytes into [`MetricsRecorder`] gauges;
//!   `serve()` writes `spans.jsonl` + `BENCH_serve.json` on exit.
//! * **Graceful drain**: a `shutdown` request stops admission, lets
//!   in-flight work finish (or deadline-cancel), fsyncs the store,
//!   then answers `bye`. The journal's kill point ends the daemon the
//!   way a real crash would: abruptly, with in-flight clients seeing
//!   EOF — and the store recovering on the next start.
//!
//! The crate forbids `unsafe`, so there is deliberately no signal
//! handler: the only orderly exit is the protocol's `shutdown`
//! request, which is also the only one a remote client can trigger.

pub mod admission;
pub mod protocol;
pub mod store;

pub use admission::{AdmissionController, AdmissionSnapshot, RejectReason};
pub use protocol::{
    encode_request, encode_response, parse_request, parse_response, FailureKind, Request,
    Response, StatusReport,
};
pub use store::{ResultStore, StoreStats};

use crate::campaign::record_attempt_metrics;
use crate::config::OwlConfig;
use crate::journal::{JournalError, JournalKilled, ProgramSummary, RecoveryReport};
use crate::metrics::MetricsRecorder;
use crate::pipeline::{Owl, PipelineHealth};
use crate::queue::{DeadlineQueue, Pop};
use owl_corpus::CorpusProgram;
use std::any::Any;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix-domain socket path (a stale file there is replaced).
    pub socket: PathBuf,
    /// Directory for the result store (`store.jsonl`) and the metrics
    /// artifacts (`spans.jsonl`, `BENCH_serve.json`).
    pub dir: PathBuf,
    /// Pipeline configuration for submits without `"quick":true`.
    pub owl: OwlConfig,
    /// Worker threads executing admitted requests (≥ 1).
    pub workers: usize,
    /// Bound on concurrently admitted requests (queued + executing).
    pub queue_capacity: usize,
    /// Bound on admitted payload bytes in flight.
    pub max_inflight_bytes: u64,
    /// Deadline for submits without `deadline_ms`.
    pub default_deadline: Duration,
    /// Arms the store journal's kill point (crash testing), as
    /// [`crate::campaign::CampaignConfig::kill_after_appends`].
    pub kill_after_appends: Option<u64>,
    /// Optional shared metrics recorder.
    pub metrics: Option<Arc<MetricsRecorder>>,
}

impl ServeConfig {
    /// A daemon serving `dir` with 2 workers, an 8-deep submission
    /// window, a 1 MiB byte budget, and a 30 s default deadline; the
    /// socket defaults to `dir/owl.sock`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        ServeConfig {
            socket: dir.join("owl.sock"),
            dir,
            owl: OwlConfig::default(),
            workers: 2,
            queue_capacity: 8,
            max_inflight_bytes: 1 << 20,
            default_deadline: Duration::from_secs(30),
            kill_after_appends: None,
            metrics: None,
        }
    }
}

/// What a daemon lifetime produced (returned by [`serve`] after a
/// graceful drain).
#[derive(Debug)]
pub struct ServeReport {
    /// Requests executed through the full pipeline.
    pub executed: u64,
    /// Requests answered from the result store.
    pub cache_hits: u64,
    /// Final admission levels and shed counters.
    pub admission: AdmissionSnapshot,
    /// Distinct results durable in the store.
    pub stored: u64,
    /// Store group-commit statistics.
    pub store_stats: StoreStats,
    /// What the store's open-time recovery found.
    pub recovery: RecoveryReport,
    /// Health counters merged across every executed request (plus the
    /// store's recovery counters).
    pub health: PipelineHealth,
    /// Most workers observed executing simultaneously.
    pub peak_running: u64,
}

/// Resolves a submitted program name: the corpus programs
/// (case-insensitive) plus the extension models, the same names
/// `owl-cli run` accepts.
pub fn resolve_program(name: &str) -> Option<CorpusProgram> {
    if name.eq_ignore_ascii_case("bank") {
        return Some(owl_corpus::extensions::bank_atomicity());
    }
    if name.eq_ignore_ascii_case("heaprelay") || name.eq_ignore_ascii_case("heap-relay") {
        return Some(owl_corpus::extensions::heap_relay());
    }
    if name.eq_ignore_ascii_case("cacherelay") || name.eq_ignore_ascii_case("cache-relay") {
        return Some(owl_corpus::extensions::cache_relay());
    }
    owl_corpus::all_programs()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

/// Daemon lifecycle phase, advanced monotonically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Admitting and executing.
    Running,
    /// Shutdown requested (or fatal): no new admissions, in-flight
    /// work finishing.
    Draining,
    /// Workers joined, store synced, metrics written — `bye` may be
    /// sent.
    Drained,
}

/// One admitted request travelling from a connection thread to a
/// worker.
struct Job {
    id: u64,
    program: CorpusProgram,
    owl: OwlConfig,
    fingerprint: String,
    bytes: u64,
    deadline: Instant,
    sleep_ms: u64,
    inject_panic: bool,
    /// Write half of the submitting connection; the reading side stays
    /// with the connection thread.
    conn: Arc<Mutex<UnixStream>>,
}

/// Everything the daemon's threads share.
struct ServeShared {
    cfg: ServeConfig,
    admission: AdmissionController,
    queue: DeadlineQueue<Job>,
    store: ResultStore,
    health: Mutex<PipelineHealth>,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    /// Microseconds spent in the check-elision pre-pass, summed over
    /// executed requests (wall-clock lives in stats, not health, so it
    /// is accumulated separately).
    elision_solve_us: AtomicU64,
    running: AtomicU64,
    peak_running: AtomicU64,
    next_id: AtomicU64,
    /// Set at drain start; connection and accept threads exit on it.
    shutdown: AtomicBool,
    phase: Mutex<Phase>,
    phase_changed: Condvar,
    /// First fatal store error, if any.
    fatal: Mutex<Option<JournalError>>,
    /// First captured [`JournalKilled`] payload, if any — re-raised by
    /// [`serve`] after the pool stops, campaign discipline.
    killed: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ServeShared {
    fn set_phase(&self, at_least: Phase) {
        let mut p = self.phase.lock().unwrap_or_else(PoisonError::into_inner);
        if *p < at_least {
            *p = at_least;
        }
        drop(p);
        self.phase_changed.notify_all();
    }

    fn wait_phase(&self, at_least: Phase) {
        let mut p = self.phase.lock().unwrap_or_else(PoisonError::into_inner);
        while *p < at_least {
            p = self
                .phase_changed
                .wait(p)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Starts the drain: stop admitting, close the queue, tell the
    /// accept and connection threads to wind down.
    fn begin_drain(&self) {
        self.admission.drain();
        self.queue.close();
        self.shutdown.store(true, Ordering::SeqCst);
        self.set_phase(Phase::Draining);
    }

    fn status_report(&self) -> StatusReport {
        let a = self.admission.snapshot();
        let recovery = self.store.recovery();
        let h = self.health.lock().unwrap_or_else(PoisonError::into_inner);
        StatusReport {
            queue_depth: self.queue.depth() as u64,
            active: self.running.load(Ordering::SeqCst),
            inflight_bytes: a.inflight_bytes,
            draining: a.draining,
            executed: self.executed.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
            shed_queue_full: a.shed_queue_full,
            shed_too_large: a.shed_too_large,
            shed_draining: a.shed_draining,
            stored: self.store.len() as u64,
            recovery_discarded_bytes: recovery.discarded_bytes,
            recovery_discarded_records: recovery.discarded_records,
            elision_sites_thread_local: h.elision_sites_thread_local,
            elision_sites_lock_dominated: h.elision_sites_lock_dominated,
            elision_sites_read_only: h.elision_sites_read_only,
            elision_events_elided: h.elision_events_elided,
            elision_solve_us: self.elision_solve_us.load(Ordering::SeqCst),
            trace_spilled_bytes: h.trace_spilled_bytes,
            trace_spill_segments: h.trace_spill_segments,
            mem_pressure_events: h.mem_pressure_events,
            shadow_cells_gced: h.shadow_cells_gced,
            units_aborted_mem_budget: h.units_aborted_mem_budget,
            predict_candidates: h.predict_candidates,
            predict_witnessed: h.predict_witnessed,
            predict_witness_rejected: h.predict_witness_rejected,
            predict_reversal_races: h.predict_reversal_races,
            units_forked: h.units_forked,
            prefix_steps_saved: h.prefix_steps_saved,
            schedules_deduped: h.schedules_deduped,
            snapshot_bytes: h.snapshot_bytes,
        }
    }
}

/// Writes one response line; errors (client gone) are ignored — the
/// daemon never dies because a client hung up.
fn respond(conn: &Arc<Mutex<UnixStream>>, resp: &Response) {
    let mut line = encode_response(resp);
    line.push('\n');
    let mut stream = conn.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
}

/// Worker body: pull due jobs, execute (or cancel, or quarantine),
/// answer on the submitting connection, release admission.
fn worker_loop(shared: &Arc<ServeShared>, worker_id: usize) {
    loop {
        let job = match shared.queue.pop() {
            Pop::Item { item, .. } => item,
            Pop::Drained | Pop::Aborted => return,
        };
        let running = shared.running.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak_running.fetch_max(running, Ordering::SeqCst);

        let stop = execute_job(shared, job, worker_id);

        shared.running.fetch_sub(1, Ordering::SeqCst);
        shared.queue.task_done();
        if stop {
            return;
        }
    }
}

/// Runs one admitted job end to end. Returns `true` if the worker must
/// stop (kill point or fatal store error).
fn execute_job(shared: &Arc<ServeShared>, job: Job, worker_id: usize) -> bool {
    // A request queued past its deadline is cancelled, never executed.
    if Instant::now() >= job.deadline {
        respond(
            &job.conn,
            &Response::Failed {
                id: job.id,
                kind: FailureKind::DeadlineExceeded,
                message: "deadline passed while queued".to_string(),
            },
        );
        if let Some(m) = &shared.cfg.metrics {
            m.counter("serve_deadline_cancelled", 1);
        }
        shared.admission.complete(job.bytes);
        return false;
    }
    if job.sleep_ms > 0 {
        // Test instrumentation: hold the worker busy (clamped at parse
        // time) so overload tests can fill the window deterministically.
        std::thread::sleep(Duration::from_millis(
            job.sleep_ms.min(protocol::MAX_SLEEP_MS),
        ));
    }

    let started = Instant::now();
    let p = &job.program;
    let run = catch_unwind(AssertUnwindSafe(|| {
        if job.inject_panic {
            panic!("injected serve fault (request {})", job.id);
        }
        let owl = Owl::new(&p.module, p.entry, job.owl.clone());
        owl.run(p.name, &p.workloads, &p.exploit_inputs)
    }));

    let result = match run {
        Ok(result) => result,
        Err(payload) => {
            // The pipeline (or the injected fault) panicked: quarantine
            // this one request, keep the daemon alive.
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            respond(
                &job.conn,
                &Response::Failed {
                    id: job.id,
                    kind: FailureKind::Quarantined,
                    message,
                },
            );
            if let Some(m) = &shared.cfg.metrics {
                m.counter("serve_quarantined", 1);
            }
            shared.admission.complete(job.bytes);
            return false;
        }
    };

    if let Some(error) = result.error {
        // Keep the failed run's health visible in `status` — a
        // memory-budget abort must surface its pressure and abort
        // counters even though no summary is stored.
        shared
            .health
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(&result.health);
        respond(
            &job.conn,
            &Response::Failed {
                id: job.id,
                kind: FailureKind::Quarantined,
                message: error.to_string(),
            },
        );
        if let Some(m) = &shared.cfg.metrics {
            m.counter("serve_quarantined", 1);
        }
        shared.admission.complete(job.bytes);
        return false;
    }

    // Durability before the response: the result is group-committed
    // (and fsync'd) to the store before the client hears about it, so
    // an acknowledged result is always served from cache after a
    // restart. The commit is a kill site — supervise it like the
    // campaign supervises journal appends.
    let summary = ProgramSummary::from_result(&result);
    let committed = catch_unwind(AssertUnwindSafe(|| {
        shared
            .store
            .commit(job.fingerprint.clone(), p.name.to_string(), summary.clone())
    }));
    match committed {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            let mut slot = shared.fatal.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(e);
            }
            drop(slot);
            shared.queue.abort();
            shared.begin_drain();
            return true;
        }
        Err(payload) if payload.is::<JournalKilled>() => {
            // The simulated hard kill: no response (the client sees
            // EOF — its in-flight request is cleanly reported lost),
            // the payload is re-raised by `serve` once the pool stops.
            let mut slot = shared
                .killed
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            shared.queue.abort();
            shared.begin_drain();
            return true;
        }
        Err(payload) => resume_unwind(payload),
    }

    if let Some(m) = &shared.cfg.metrics {
        record_attempt_metrics(m, p.name, worker_id, 1, started, &result);
        m.counter("serve_executed", 1);
    }
    shared
        .health
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .merge(&result.health);
    shared.elision_solve_us.fetch_add(
        result.stats.elision_solve_time.as_micros() as u64,
        Ordering::SeqCst,
    );
    shared.executed.fetch_add(1, Ordering::SeqCst);

    respond(
        &job.conn,
        &Response::Result {
            id: job.id,
            program: p.name.to_string(),
            cached: false,
            summary,
        },
    );
    shared.admission.complete(job.bytes);
    false
}

/// Handles one submit line on a connection thread: resolve, admit (or
/// shed), answer from cache, or enqueue for a worker.
fn handle_submit(shared: &Arc<ServeShared>, conn: &Arc<Mutex<UnixStream>>, line: &str) {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(message) => {
            respond(conn, &Response::Error { message });
            return;
        }
    };
    match req {
        Request::Submit {
            program,
            quick,
            deadline_ms,
            sleep_ms,
            inject_panic,
        } => {
            let Some(resolved) = resolve_program(&program) else {
                respond(
                    conn,
                    &Response::Rejected {
                        reason: RejectReason::UnknownProgram,
                    },
                );
                return;
            };
            let bytes = line.len() as u64;
            if let Err(reason) = shared.admission.try_admit(bytes) {
                respond(conn, &Response::Rejected { reason });
                if let Some(m) = &shared.cfg.metrics {
                    m.counter("serve_shed", 1);
                }
                return;
            }
            // Admitted: from here every path must release via
            // `admission.complete` (workers do it for enqueued jobs).
            let owl = if quick {
                OwlConfig::quick()
            } else {
                shared.cfg.owl.clone()
            };
            let fingerprint = ResultStore::fingerprint(&owl, resolved.name);
            if let Some((program, summary)) = shared.store.lookup(&fingerprint) {
                // Fingerprint hit: answer from the durable store, no
                // pipeline stage runs (and no stage span is recorded —
                // which is how the tests prove it).
                shared.cache_hits.fetch_add(1, Ordering::SeqCst);
                if let Some(m) = &shared.cfg.metrics {
                    m.counter("serve_cache_hits", 1);
                }
                respond(
                    conn,
                    &Response::Result {
                        id: 0,
                        program,
                        cached: true,
                        summary,
                    },
                );
                shared.admission.complete(bytes);
                return;
            }
            let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
            let deadline = Instant::now()
                + deadline_ms
                    .map(Duration::from_millis)
                    .unwrap_or(shared.cfg.default_deadline);
            // `accepted` goes out before the job is visible to workers
            // so the client always reads it before the `result`.
            respond(conn, &Response::Accepted { id });
            let enqueued = shared.queue.push(
                Instant::now(),
                Job {
                    id,
                    program: resolved,
                    owl,
                    fingerprint,
                    bytes,
                    deadline,
                    sleep_ms,
                    inject_panic,
                    conn: Arc::clone(conn),
                },
            );
            if !enqueued {
                // Aborted between admit and push (daemon dying): the
                // client sees EOF for this id, like any in-flight
                // request at a crash.
                shared.admission.complete(bytes);
            }
        }
        Request::Status => {
            respond(conn, &Response::Status(Box::new(shared.status_report())));
        }
        Request::Shutdown => {
            shared.begin_drain();
            // `bye` only after the drain completes: workers joined,
            // store synced, metrics written.
            shared.wait_phase(Phase::Drained);
            respond(conn, &Response::Bye);
        }
    }
}

/// Connection thread: read request lines until the client hangs up or
/// the daemon shuts down. The read side polls with a short timeout so
/// a parked connection cannot outlive the daemon; responses to
/// still-running jobs survive this thread via the shared write half.
fn connection_loop(shared: Arc<ServeShared>, stream: UnixStream) {
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = reader_stream.set_read_timeout(Some(Duration::from_millis(50)));
    let conn = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(reader_stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if !line.trim().is_empty() {
                    handle_submit(&shared, &conn, &line);
                    if matches!(parse_request(&line), Ok(Request::Shutdown)) {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // No data yet; `line` keeps any partial read. Exit once
                // the daemon is shutting down — in-flight responses are
                // delivered through the write half the jobs hold.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Runs the daemon until a `shutdown` request (or the kill point)
/// ends it. Blocking; returns the lifetime report after a graceful
/// drain, re-raises [`JournalKilled`] after a simulated crash.
pub fn serve(cfg: ServeConfig) -> Result<ServeReport, JournalError> {
    std::fs::create_dir_all(&cfg.dir)?;
    let store = ResultStore::open(cfg.dir.join("store.jsonl"))?;
    store.set_kill_after(cfg.kill_after_appends);

    // Replace a stale socket file (a previous daemon that died without
    // unlinking), then listen.
    if cfg.socket.exists() {
        std::fs::remove_file(&cfg.socket)?;
    }
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;

    let workers = cfg.workers.max(1);
    let admission = AdmissionController::new(cfg.queue_capacity, cfg.max_inflight_bytes);
    let shared = Arc::new(ServeShared {
        cfg,
        admission,
        queue: DeadlineQueue::new(),
        store,
        health: Mutex::new(PipelineHealth::default()),
        executed: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        elision_solve_us: AtomicU64::new(0),
        running: AtomicU64::new(0),
        peak_running: AtomicU64::new(0),
        next_id: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        phase: Mutex::new(Phase::Running),
        phase_changed: Condvar::new(),
        fatal: Mutex::new(None),
        killed: Mutex::new(None),
    });

    let mut worker_handles = Vec::with_capacity(workers);
    for worker_id in 0..workers {
        let shared = Arc::clone(&shared);
        worker_handles.push(std::thread::spawn(move || worker_loop(&shared, worker_id)));
    }

    // Watchdog: sample load gauges until the drain starts.
    let watchdog = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                if let Some(m) = &shared.cfg.metrics {
                    m.gauge("serve_queue_depth", shared.queue.depth() as u64);
                    m.gauge("serve_active", shared.running.load(Ordering::SeqCst));
                    m.gauge(
                        "serve_inflight_bytes",
                        shared.admission.snapshot().inflight_bytes,
                    );
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };

    // Accept loop: poll (the listener is non-blocking so shutdown is
    // observed within one tick), one thread per connection.
    let accepter = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut conns = Vec::new();
            while !shared.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&shared);
                        conns.push(std::thread::spawn(move || {
                            connection_loop(shared, stream)
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            conns
        })
    };

    // Block until something starts the drain (a shutdown request, the
    // kill point, or a fatal store error), then finish in-flight work.
    shared.wait_phase(Phase::Draining);
    for h in worker_handles {
        let _ = h.join();
    }
    let _ = watchdog.join();

    // Everything durable is already fsync'd per group commit; write
    // the observability artifacts, then release the shutdown
    // connection's `bye`.
    if let Some(m) = &shared.cfg.metrics {
        let a = shared.admission.snapshot();
        m.counter("serve_shed_queue_full", a.shed_queue_full);
        m.counter("serve_shed_too_large", a.shed_too_large);
        m.counter("serve_shed_draining", a.shed_draining);
        let _ = m.write_files_named(
            &shared.cfg.dir,
            "serve",
            workers,
            shared.executed.load(Ordering::SeqCst) as usize,
        );
    }
    shared.set_phase(Phase::Drained);

    let conns = accepter.join().unwrap_or_default();
    for c in conns {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(&shared.cfg.socket);

    if let Some(payload) = shared
        .killed
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        // The simulated hard kill, re-raised with its original payload
        // (campaign discipline) so the crash tests can downcast it.
        resume_unwind(payload);
    }
    if let Some(e) = shared
        .fatal
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(e);
    }

    let recovery = shared.store.recovery().clone();
    let mut health = shared
        .health
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    health.journal_discarded_bytes += recovery.discarded_bytes;
    health.journal_discarded_records += recovery.discarded_records;
    Ok(ServeReport {
        executed: shared.executed.load(Ordering::SeqCst),
        cache_hits: shared.cache_hits.load(Ordering::SeqCst),
        admission: shared.admission.snapshot(),
        stored: shared.store.len() as u64,
        store_stats: shared.store.stats(),
        recovery,
        health,
        peak_running: shared.peak_running.load(Ordering::SeqCst),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_program_accepts_cli_names() {
        assert_eq!(resolve_program("libsafe").unwrap().name, "Libsafe");
        assert_eq!(resolve_program("SSDB").unwrap().name, "SSDB");
        assert_eq!(resolve_program("heap-relay").unwrap().name, resolve_program("heaprelay").unwrap().name);
        assert!(resolve_program("bank").is_some());
        assert!(resolve_program("no-such-program").is_none());
    }

    #[test]
    fn serve_config_defaults_are_bounded() {
        let cfg = ServeConfig::new("/tmp/owl-serve-x");
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_capacity, 8);
        assert!(cfg.socket.ends_with("owl.sock"));
    }
}
