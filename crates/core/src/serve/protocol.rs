//! The `owl serve` wire protocol: line-delimited JSON over a Unix
//! domain socket.
//!
//! Each request is one canonical-JSON object on one line; each
//! response is likewise one object per line. The grammar (DESIGN.md
//! §13 has the full state machine):
//!
//! ```text
//! request  := submit | status | shutdown
//! submit   := {"op":"submit","program":<name>,
//!              "quick":<bool>?,"deadline_ms":<n>?,
//!              "sleep_ms":<n>?,"inject_panic":<bool>?}
//! status   := {"op":"status"}
//! shutdown := {"op":"shutdown"}
//!
//! response := accepted | rejected | result | failed
//!           | status | bye | error
//! accepted := {"resp":"accepted","id":<n>}
//! rejected := {"resp":"rejected","reason":<reason>}
//! result   := {"resp":"result","id":<n>,"program":<name>,
//!              "cached":<bool>,"summary":<summary>}
//! failed   := {"resp":"failed","id":<n>,"kind":<kind>,
//!              "message":<text>}
//! bye      := {"resp":"bye"}
//! error    := {"resp":"error","message":<text>}
//! ```
//!
//! A `submit` is answered by `rejected` (admission refused it), by an
//! immediate `result` with `"cached":true` (fingerprint hit in the
//! result store), or by `accepted` now and `result`/`failed` later on
//! the same connection once a worker finishes it.
//!
//! `sleep_ms` and `inject_panic` are test instrumentation, the same
//! spirit as the campaign's [`crate::campaign::CampaignFault`]:
//! `sleep_ms` holds a worker busy to make back-pressure deterministic,
//! `inject_panic` forces the quarantine path.

use crate::journal::{decode_summary, encode_summary, ProgramSummary};
use crate::json::{self, Json};
use crate::serve::admission::RejectReason;

/// Upper bound on `sleep_ms` so a stray client cannot park a worker
/// for minutes.
pub const MAX_SLEEP_MS: u64 = 2_000;

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run (or answer from cache) one corpus program.
    Submit {
        /// Corpus program name (case-insensitive, as `owl-cli run`).
        program: String,
        /// Use [`crate::OwlConfig::quick`] instead of the default.
        quick: bool,
        /// Per-request deadline budget; `None` uses the server
        /// default. A request still queued past its deadline is
        /// cancelled, never executed.
        deadline_ms: Option<u64>,
        /// Test instrumentation: hold the worker for this long before
        /// executing (clamped to [`MAX_SLEEP_MS`]).
        sleep_ms: u64,
        /// Test instrumentation: panic instead of executing, forcing
        /// the quarantine path.
        inject_panic: bool,
    },
    /// Report queue depth, counters, and recovery state.
    Status,
    /// Graceful drain: stop admitting, finish in-flight work, fsync
    /// the store, then answer `bye` and exit.
    Shutdown,
}

/// Why a request failed after being accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The request's deadline passed before a worker could run it.
    DeadlineExceeded,
    /// The pipeline (or an injected fault) panicked; the request was
    /// quarantined, the daemon kept running.
    Quarantined,
}

impl FailureKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::DeadlineExceeded => "deadline-exceeded",
            FailureKind::Quarantined => "quarantined",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<FailureKind> {
        Some(match s {
            "deadline-exceeded" => FailureKind::DeadlineExceeded,
            "quarantined" => FailureKind::Quarantined,
            _ => return None,
        })
    }
}

/// Aggregate service counters carried by a `status` response.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// Requests queued, not yet picked up by a worker.
    pub queue_depth: u64,
    /// Requests currently executing.
    pub active: u64,
    /// Payload bytes admitted and not yet completed.
    pub inflight_bytes: u64,
    /// Whether the daemon is draining (shutdown requested).
    pub draining: bool,
    /// Requests executed through the full pipeline.
    pub executed: u64,
    /// Requests answered from the result store.
    pub cache_hits: u64,
    /// Requests shed with `queue-full`.
    pub shed_queue_full: u64,
    /// Requests shed with `too-large`.
    pub shed_too_large: u64,
    /// Requests shed with `draining`.
    pub shed_draining: u64,
    /// Distinct results in the store.
    pub stored: u64,
    /// Bytes the store's open-time recovery truncated.
    pub recovery_discarded_bytes: u64,
    /// Records the store's open-time recovery discarded.
    pub recovery_discarded_records: u64,
    /// Access sites the check-elision pre-pass proved thread-local,
    /// summed over executed requests.
    pub elision_sites_thread_local: u64,
    /// Sites proved lock-dominated, summed over executed requests.
    pub elision_sites_lock_dominated: u64,
    /// Sites proved read-only-shared, summed over executed requests.
    pub elision_sites_read_only: u64,
    /// Detection-stage events whose shadow-memory work was elided,
    /// summed over executed requests.
    pub elision_events_elided: u64,
    /// Microseconds spent solving the check-elision pre-pass, summed
    /// over executed requests.
    pub elision_solve_us: u64,
    /// Trace bytes spilled to disk segments under `--max-trace-mem`,
    /// summed over executed requests.
    pub trace_spilled_bytes: u64,
    /// Spill segments written (each spilled, replayed, and deleted),
    /// summed over executed requests.
    pub trace_spill_segments: u64,
    /// Memory-pressure events (soft-limit crossings), summed over
    /// executed requests.
    pub mem_pressure_events: u64,
    /// Shadow cells (epoch cells / vector clocks) reclaimed by the
    /// detector's GC, summed over executed requests.
    pub shadow_cells_gced: u64,
    /// Exploration units aborted with a typed memory-budget verdict,
    /// summed over executed requests.
    pub units_aborted_mem_budget: u64,
    /// Predictive-backend candidate pairs submitted to the witness
    /// machinery, summed over executed requests.
    pub predict_candidates: u64,
    /// Predicted races with a validated witness reordering, summed
    /// over executed requests.
    pub predict_witnessed: u64,
    /// Predicted-race candidates rejected before reporting, summed
    /// over executed requests.
    pub predict_witness_rejected: u64,
    /// Witnessed predicted races that needed a lock-acquire reversal,
    /// summed over executed requests.
    pub predict_reversal_races: u64,
    /// Exploration units launched from a mid-run snapshot
    /// (prefix-sharing fork mode), summed over executed requests.
    pub units_forked: u64,
    /// VM steps not re-executed thanks to prefix sharing, summed over
    /// executed requests.
    pub prefix_steps_saved: u64,
    /// Exploration units deduped by schedule signature (outcome reused
    /// without executing the VM), summed over executed requests.
    pub schedules_deduped: u64,
    /// Estimated snapshot footprint in bytes, summed over executed
    /// requests.
    pub snapshot_bytes: u64,
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The submit was admitted; a `result` or `failed` with the same
    /// id follows on this connection.
    Accepted {
        /// Request id, unique per daemon lifetime.
        id: u64,
    },
    /// Admission refused the submit; nothing was queued.
    Rejected {
        /// The typed shed reason.
        reason: RejectReason,
    },
    /// A completed analysis.
    Result {
        /// Request id (0 for an immediate cache hit).
        id: u64,
        /// Program name as resolved by the corpus.
        program: String,
        /// Whether the result came from the store without executing
        /// any pipeline stage.
        cached: bool,
        /// The deterministic result summary.
        summary: ProgramSummary,
    },
    /// An admitted request that did not produce a result.
    Failed {
        /// Request id.
        id: u64,
        /// What happened.
        kind: FailureKind,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to `status`.
    Status(Box<StatusReport>),
    /// Answer to `shutdown`, sent after the drain completes.
    Bye,
    /// The request line could not be understood.
    Error {
        /// What was wrong with it.
        message: String,
    },
}

/// Encodes a request as one wire line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let v = match req {
        Request::Submit {
            program,
            quick,
            deadline_ms,
            sleep_ms,
            inject_panic,
        } => {
            let mut pairs = vec![
                ("op".to_string(), Json::str("submit")),
                ("program".to_string(), Json::str(program.clone())),
                ("quick".to_string(), Json::Bool(*quick)),
            ];
            if let Some(ms) = deadline_ms {
                pairs.push(("deadline_ms".to_string(), Json::UInt(*ms)));
            }
            if *sleep_ms > 0 {
                pairs.push(("sleep_ms".to_string(), Json::UInt(*sleep_ms)));
            }
            if *inject_panic {
                pairs.push(("inject_panic".to_string(), Json::Bool(true)));
            }
            Json::Obj(pairs)
        }
        Request::Status => Json::obj([("op", Json::str("status"))]),
        Request::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
    };
    v.to_json_string()
}

/// Parses one request line. `Err` carries the message for an `error`
/// response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line.trim()).map_err(|e| format!("bad request JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(|j| j.as_str())
        .ok_or_else(|| "request is missing `op`".to_string())?;
    match op {
        "submit" => {
            let program = v
                .get("program")
                .and_then(|j| j.as_str())
                .ok_or_else(|| "submit is missing `program`".to_string())?
                .to_string();
            Ok(Request::Submit {
                program,
                quick: v.get("quick").and_then(|j| j.as_bool()).unwrap_or(false),
                deadline_ms: v.get("deadline_ms").and_then(|j| j.as_u64()),
                sleep_ms: v
                    .get("sleep_ms")
                    .and_then(|j| j.as_u64())
                    .unwrap_or(0)
                    .min(MAX_SLEEP_MS),
                inject_panic: v
                    .get("inject_panic")
                    .and_then(|j| j.as_bool())
                    .unwrap_or(false),
            })
        }
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Encodes a response as one wire line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let v = match resp {
        Response::Accepted { id } => Json::obj([
            ("resp", Json::str("accepted")),
            ("id", Json::UInt(*id)),
        ]),
        Response::Rejected { reason } => Json::obj([
            ("resp", Json::str("rejected")),
            ("reason", Json::str(reason.as_str())),
        ]),
        Response::Result {
            id,
            program,
            cached,
            summary,
        } => Json::obj([
            ("resp", Json::str("result")),
            ("id", Json::UInt(*id)),
            ("program", Json::str(program.clone())),
            ("cached", Json::Bool(*cached)),
            ("summary", encode_summary(summary)),
        ]),
        Response::Failed { id, kind, message } => Json::obj([
            ("resp", Json::str("failed")),
            ("id", Json::UInt(*id)),
            ("kind", Json::str(kind.as_str())),
            ("message", Json::str(message.clone())),
        ]),
        Response::Status(s) => Json::obj([
            ("resp", Json::str("status")),
            ("queue_depth", Json::UInt(s.queue_depth)),
            ("active", Json::UInt(s.active)),
            ("inflight_bytes", Json::UInt(s.inflight_bytes)),
            ("draining", Json::Bool(s.draining)),
            ("executed", Json::UInt(s.executed)),
            ("cache_hits", Json::UInt(s.cache_hits)),
            ("shed_queue_full", Json::UInt(s.shed_queue_full)),
            ("shed_too_large", Json::UInt(s.shed_too_large)),
            ("shed_draining", Json::UInt(s.shed_draining)),
            ("stored", Json::UInt(s.stored)),
            (
                "recovery_discarded_bytes",
                Json::UInt(s.recovery_discarded_bytes),
            ),
            (
                "recovery_discarded_records",
                Json::UInt(s.recovery_discarded_records),
            ),
            (
                "elision_sites_thread_local",
                Json::UInt(s.elision_sites_thread_local),
            ),
            (
                "elision_sites_lock_dominated",
                Json::UInt(s.elision_sites_lock_dominated),
            ),
            (
                "elision_sites_read_only",
                Json::UInt(s.elision_sites_read_only),
            ),
            (
                "elision_events_elided",
                Json::UInt(s.elision_events_elided),
            ),
            ("elision_solve_us", Json::UInt(s.elision_solve_us)),
            ("trace_spilled_bytes", Json::UInt(s.trace_spilled_bytes)),
            (
                "trace_spill_segments",
                Json::UInt(s.trace_spill_segments),
            ),
            ("mem_pressure_events", Json::UInt(s.mem_pressure_events)),
            ("shadow_cells_gced", Json::UInt(s.shadow_cells_gced)),
            (
                "units_aborted_mem_budget",
                Json::UInt(s.units_aborted_mem_budget),
            ),
            ("predict_candidates", Json::UInt(s.predict_candidates)),
            ("predict_witnessed", Json::UInt(s.predict_witnessed)),
            (
                "predict_witness_rejected",
                Json::UInt(s.predict_witness_rejected),
            ),
            (
                "predict_reversal_races",
                Json::UInt(s.predict_reversal_races),
            ),
            ("units_forked", Json::UInt(s.units_forked)),
            ("prefix_steps_saved", Json::UInt(s.prefix_steps_saved)),
            ("schedules_deduped", Json::UInt(s.schedules_deduped)),
            ("snapshot_bytes", Json::UInt(s.snapshot_bytes)),
        ]),
        Response::Bye => Json::obj([("resp", Json::str("bye"))]),
        Response::Error { message } => Json::obj([
            ("resp", Json::str("error")),
            ("message", Json::str(message.clone())),
        ]),
    };
    v.to_json_string()
}

/// Parses one response line (the client side of the protocol).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
    let resp = v
        .get("resp")
        .and_then(|j| j.as_str())
        .ok_or_else(|| "response is missing `resp`".to_string())?;
    let id = || v.get("id").and_then(|j| j.as_u64()).unwrap_or(0);
    match resp {
        "accepted" => Ok(Response::Accepted { id: id() }),
        "rejected" => {
            let reason = v
                .get("reason")
                .and_then(|j| j.as_str())
                .and_then(RejectReason::parse)
                .ok_or_else(|| "rejected without a known reason".to_string())?;
            Ok(Response::Rejected { reason })
        }
        "result" => {
            let summary = v
                .get("summary")
                .and_then(decode_summary)
                .ok_or_else(|| "result without a decodable summary".to_string())?;
            Ok(Response::Result {
                id: id(),
                program: v
                    .get("program")
                    .and_then(|j| j.as_str())
                    .unwrap_or_default()
                    .to_string(),
                cached: v.get("cached").and_then(|j| j.as_bool()).unwrap_or(false),
                summary,
            })
        }
        "failed" => {
            let kind = v
                .get("kind")
                .and_then(|j| j.as_str())
                .and_then(FailureKind::parse)
                .ok_or_else(|| "failed without a known kind".to_string())?;
            Ok(Response::Failed {
                id: id(),
                kind,
                message: v
                    .get("message")
                    .and_then(|j| j.as_str())
                    .unwrap_or_default()
                    .to_string(),
            })
        }
        "status" => {
            let u = |key: &str| v.get(key).and_then(|j| j.as_u64()).unwrap_or(0);
            Ok(Response::Status(Box::new(StatusReport {
                queue_depth: u("queue_depth"),
                active: u("active"),
                inflight_bytes: u("inflight_bytes"),
                draining: v
                    .get("draining")
                    .and_then(|j| j.as_bool())
                    .unwrap_or(false),
                executed: u("executed"),
                cache_hits: u("cache_hits"),
                shed_queue_full: u("shed_queue_full"),
                shed_too_large: u("shed_too_large"),
                shed_draining: u("shed_draining"),
                stored: u("stored"),
                recovery_discarded_bytes: u("recovery_discarded_bytes"),
                recovery_discarded_records: u("recovery_discarded_records"),
                elision_sites_thread_local: u("elision_sites_thread_local"),
                elision_sites_lock_dominated: u("elision_sites_lock_dominated"),
                elision_sites_read_only: u("elision_sites_read_only"),
                elision_events_elided: u("elision_events_elided"),
                elision_solve_us: u("elision_solve_us"),
                trace_spilled_bytes: u("trace_spilled_bytes"),
                trace_spill_segments: u("trace_spill_segments"),
                mem_pressure_events: u("mem_pressure_events"),
                shadow_cells_gced: u("shadow_cells_gced"),
                units_aborted_mem_budget: u("units_aborted_mem_budget"),
                predict_candidates: u("predict_candidates"),
                predict_witnessed: u("predict_witnessed"),
                predict_witness_rejected: u("predict_witness_rejected"),
                predict_reversal_races: u("predict_reversal_races"),
                units_forked: u("units_forked"),
                prefix_steps_saved: u("prefix_steps_saved"),
                schedules_deduped: u("schedules_deduped"),
                snapshot_bytes: u("snapshot_bytes"),
            })))
        }
        "bye" => Ok(Response::Bye),
        "error" => Ok(Response::Error {
            message: v
                .get("message")
                .and_then(|j| j.as_str())
                .unwrap_or_default()
                .to_string(),
        }),
        other => Err(format!("unknown response `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                program: "Libsafe".into(),
                quick: true,
                deadline_ms: Some(500),
                sleep_ms: 25,
                inject_panic: false,
            },
            Request::Submit {
                program: "SSDB".into(),
                quick: false,
                deadline_ms: None,
                sleep_ms: 0,
                inject_panic: true,
            },
            Request::Status,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn sleep_ms_is_clamped() {
        let line = r#"{"op":"submit","program":"Libsafe","sleep_ms":999999}"#;
        let Request::Submit { sleep_ms, .. } = parse_request(line).unwrap() else {
            panic!("submit expected");
        };
        assert_eq!(sleep_ms, MAX_SLEEP_MS);
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Accepted { id: 7 },
            Response::Rejected {
                reason: RejectReason::QueueFull,
            },
            Response::Result {
                id: 7,
                program: "Libsafe".into(),
                cached: true,
                summary: ProgramSummary {
                    raw_reports: 2,
                    vulnerable: 1,
                    ..ProgramSummary::default()
                },
            },
            Response::Failed {
                id: 9,
                kind: FailureKind::DeadlineExceeded,
                message: "queued past its deadline".into(),
            },
            Response::Status(Box::new(StatusReport {
                queue_depth: 3,
                shed_queue_full: 11,
                draining: true,
                ..StatusReport::default()
            })),
            Response::Bye,
            Response::Error {
                message: "bad request JSON".into(),
            },
        ];
        for resp in resps {
            let line = encode_response(&resp);
            assert_eq!(parse_response(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_reported_not_panicked() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"launch"}"#).is_err());
        assert!(parse_request(r#"{"op":"submit"}"#).is_err());
        assert!(parse_response(r#"{"resp":"rejected"}"#).is_err());
    }
}
