//! Admission control and load shedding for the `owl serve` daemon.
//!
//! A resident analysis service must fail *predictably* under overload:
//! rather than queueing without bound (latency collapse) or dropping
//! connections (indistinguishable from a crash), every submission
//! passes this controller, which either admits it — counting it
//! against a bounded submission window and an in-flight byte budget —
//! or sheds it with a typed [`RejectReason`] the client can act on.
//!
//! The window covers a request from admission until its response is
//! written (queued *and* executing), so `queue_capacity` is the hard
//! bound on concurrent admitted work; the worker-pool size separately
//! bounds how many of those execute at once. Draining flips one flag
//! and everything new is shed with [`RejectReason::Draining`] while
//! in-flight requests finish.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Why a submission was shed. Stable wire names via
/// [`RejectReason::as_str`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded submission window is full — back-pressure; retry
    /// after a result comes back.
    QueueFull,
    /// The request would exceed the in-flight byte budget (or is
    /// larger than the whole budget by itself).
    TooLarge,
    /// The daemon is draining for shutdown and admits nothing new.
    Draining,
    /// The named program is not in the corpus.
    UnknownProgram,
}

impl RejectReason {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::TooLarge => "too-large",
            RejectReason::Draining => "draining",
            RejectReason::UnknownProgram => "unknown-program",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<RejectReason> {
        Some(match s {
            "queue-full" => RejectReason::QueueFull,
            "too-large" => RejectReason::TooLarge,
            "draining" => RejectReason::Draining,
            "unknown-program" => RejectReason::UnknownProgram,
            _ => return None,
        })
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Counters and levels the controller exposes (for `status` responses
/// and the final [`crate::serve::ServeReport`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Requests admitted and not yet completed.
    pub in_flight: u64,
    /// Payload bytes admitted and not yet completed.
    pub inflight_bytes: u64,
    /// Whether the controller is draining.
    pub draining: bool,
    /// Submissions shed with [`RejectReason::QueueFull`].
    pub shed_queue_full: u64,
    /// Submissions shed with [`RejectReason::TooLarge`].
    pub shed_too_large: u64,
    /// Submissions shed with [`RejectReason::Draining`].
    pub shed_draining: u64,
}

impl AdmissionSnapshot {
    /// Total submissions shed for capacity or drain reasons.
    pub fn total_shed(&self) -> u64 {
        self.shed_queue_full + self.shed_too_large + self.shed_draining
    }
}

#[derive(Debug, Default)]
struct State {
    in_flight: u64,
    inflight_bytes: u64,
    draining: bool,
    shed_queue_full: u64,
    shed_too_large: u64,
    shed_draining: u64,
}

/// The daemon's admission controller (see the module docs).
#[derive(Debug)]
pub struct AdmissionController {
    queue_capacity: u64,
    max_inflight_bytes: u64,
    state: Mutex<State>,
}

impl AdmissionController {
    /// A controller admitting at most `queue_capacity` concurrent
    /// requests totaling at most `max_inflight_bytes` payload bytes.
    pub fn new(queue_capacity: usize, max_inflight_bytes: u64) -> Self {
        AdmissionController {
            queue_capacity: queue_capacity.max(1) as u64,
            max_inflight_bytes,
            state: Mutex::new(State::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a `bytes`-sized request or sheds it with a typed reason.
    /// An admitted request holds its slot and bytes until
    /// [`AdmissionController::complete`].
    pub fn try_admit(&self, bytes: u64) -> Result<(), RejectReason> {
        let mut s = self.lock();
        if s.draining {
            s.shed_draining += 1;
            return Err(RejectReason::Draining);
        }
        if bytes > self.max_inflight_bytes {
            s.shed_too_large += 1;
            return Err(RejectReason::TooLarge);
        }
        if s.in_flight >= self.queue_capacity {
            s.shed_queue_full += 1;
            return Err(RejectReason::QueueFull);
        }
        if s.inflight_bytes + bytes > self.max_inflight_bytes {
            s.shed_too_large += 1;
            return Err(RejectReason::TooLarge);
        }
        s.in_flight += 1;
        s.inflight_bytes += bytes;
        Ok(())
    }

    /// Releases an admitted request's slot and bytes (call exactly
    /// once per successful [`AdmissionController::try_admit`], after
    /// the response is written).
    pub fn complete(&self, bytes: u64) {
        let mut s = self.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
        s.inflight_bytes = s.inflight_bytes.saturating_sub(bytes);
    }

    /// Stops admitting: every later [`AdmissionController::try_admit`]
    /// sheds with [`RejectReason::Draining`].
    pub fn drain(&self) {
        self.lock().draining = true;
    }

    /// Whether the controller is draining.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Current levels and shed counters.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let s = self.lock();
        AdmissionSnapshot {
            in_flight: s.in_flight,
            inflight_bytes: s.inflight_bytes,
            draining: s.draining,
            shed_queue_full: s.shed_queue_full,
            shed_too_large: s.shed_too_large,
            shed_draining: s.shed_draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_sheds_queue_full() {
        let a = AdmissionController::new(2, 1_000);
        assert!(a.try_admit(10).is_ok());
        assert!(a.try_admit(10).is_ok());
        assert_eq!(a.try_admit(10), Err(RejectReason::QueueFull));
        a.complete(10);
        assert!(a.try_admit(10).is_ok(), "slot freed by completion");
        let s = a.snapshot();
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.shed_queue_full, 1);
    }

    #[test]
    fn byte_budget_sheds_too_large() {
        let a = AdmissionController::new(10, 100);
        assert_eq!(a.try_admit(101), Err(RejectReason::TooLarge));
        assert!(a.try_admit(60).is_ok());
        assert_eq!(a.try_admit(60), Err(RejectReason::TooLarge));
        a.complete(60);
        assert!(a.try_admit(60).is_ok());
        assert_eq!(a.snapshot().shed_too_large, 2);
    }

    #[test]
    fn draining_sheds_everything_new() {
        let a = AdmissionController::new(4, 1_000);
        assert!(a.try_admit(1).is_ok());
        a.drain();
        assert_eq!(a.try_admit(1), Err(RejectReason::Draining));
        assert!(a.is_draining());
        let s = a.snapshot();
        assert_eq!(s.in_flight, 1, "in-flight work survives the drain flag");
        assert_eq!(s.shed_draining, 1);
    }

    #[test]
    fn reject_reasons_round_trip_their_wire_names() {
        for r in [
            RejectReason::QueueFull,
            RejectReason::TooLarge,
            RejectReason::Draining,
            RejectReason::UnknownProgram,
        ] {
            assert_eq!(RejectReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(RejectReason::parse("no-such-reason"), None);
    }
}
