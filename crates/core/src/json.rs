//! A minimal JSON tree, canonical serializer, and strict parser.
//!
//! The run journal ([`crate::journal`]) and the CLI's `--json` output
//! need real (de)serialization, and the workspace's `serde` dependency
//! only provides derive markers in the offline build — so this module
//! carries the whole format: a [`Json`] tree with ordered object keys,
//! a canonical compact writer (no whitespace, insertion-ordered keys,
//! minimal escapes), and a recursive-descent parser that round-trips
//! exactly what the writer emits. Canonical output is what makes the
//! journal's checksums meaningful: equal records serialize to equal
//! bytes.
//!
//! Numbers are kept in three shapes (`UInt`, `Int`, `Float`) so 64-bit
//! counters (seeds, step counts, attempt totals) never pass through an
//! `f64` and lose precision.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so serialization is
/// canonical and deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters and ids).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an object from `(key, value)` pairs with owned keys —
    /// for objects keyed by runtime data (stage names, counter names).
    pub fn obj_owned(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `usize`, when it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to the canonical compact form.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(v) => {
                // `{:?}` is Rust's shortest round-trippable repr; NaN
                // and infinities are not valid JSON, so degrade to null.
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // Called with `pos` at the first hex digit (after `u`)... except
        // the escape loop advances after the match arm, so consume
        // exactly four digits starting at `pos + 0`.
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if integral {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_round_trip() {
        let v = Json::obj([
            ("name", Json::str("owl")),
            ("count", Json::UInt(u64::MAX)),
            ("delta", Json::Int(-42)),
            ("rate", Json::Float(0.01)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::UInt(1), Json::str("a\"b\\c\n")]),
            ),
        ]);
        let s = v.to_json_string();
        let back = parse(&s).expect("round trip parses");
        assert_eq!(back, v);
        assert_eq!(back.to_json_string(), s, "serialization is canonical");
    }

    #[test]
    fn u64_precision_is_preserved() {
        let n = u64::MAX - 3;
        let s = Json::UInt(n).to_json_string();
        assert_eq!(parse(&s).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::str("tab\t nl\n quote\" back\\ unicode \u{1F600} ctrl\u{1}");
        let s = v.to_json_string();
        assert_eq!(parse(&s).unwrap(), v);
        // Standard escapes from other writers parse too.
        assert_eq!(
            parse(r#""A😀""#).unwrap(),
            Json::str("A\u{1F600}")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, -2, 1.5], "b": "x", "c": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }
}
