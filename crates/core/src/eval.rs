//! Corpus-facing evaluation: runs the pipeline on a corpus program and
//! scores every attack the program hosts — the machinery behind the
//! paper's Tables 1, 2, 3, and 4.

use crate::config::OwlConfig;
use crate::pipeline::{Owl, PipelineResult};
use owl_corpus::{AttackSpec, CorpusProgram};
use owl_race::executions_until;
use owl_static::DepKind;

/// How one attack fared under the pipeline.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// The attack being scored.
    pub spec: AttackSpec,
    /// A verified race on the attack's racy global produced a
    /// vulnerable input hint of the expected class.
    pub hinted: bool,
    /// The hinted site was dynamically reached by the vulnerability
    /// verifier.
    pub reached: bool,
    /// The dependence kinds of the matching hints.
    pub dep_kinds: Vec<DepKind>,
    /// Executions needed to realize the attack with the exploit inputs
    /// (`None` if it did not trigger within the budget) — Table 4's
    /// "within 20 repeated executions" measurement.
    pub trigger_executions: Option<u64>,
}

impl AttackOutcome {
    /// OWL "detected" the attack: hint produced and site verified
    /// reachable.
    pub fn detected(&self) -> bool {
        self.hinted && self.reached
    }

    /// Whether a matching hint carries the spec's ground-truth
    /// dependence kind. `None` when the spec pins no kind or no hint
    /// matched the expected class.
    pub fn dep_matched(&self) -> Option<bool> {
        let expected = self.spec.expected_dep?;
        if self.dep_kinds.is_empty() {
            return None;
        }
        Some(self.dep_kinds.iter().any(|d| d.to_string() == expected))
    }
}

/// Pipeline result plus per-attack scoring for one corpus program.
#[derive(Clone, Debug)]
pub struct ProgramEvaluation {
    /// Program name.
    pub name: &'static str,
    /// The study's LoC proxy (instruction count).
    pub loc: usize,
    /// Full pipeline result.
    pub result: PipelineResult,
    /// Scored attacks.
    pub attacks: Vec<AttackOutcome>,
}

impl ProgramEvaluation {
    /// Number of attacks OWL detected.
    pub fn detected_count(&self) -> usize {
        self.attacks.iter().filter(|a| a.detected()).count()
    }
}

/// Runs the pipeline on `program` and scores its attacks.
pub fn evaluate_program(program: &CorpusProgram, config: &OwlConfig) -> ProgramEvaluation {
    let owl = Owl::new(&program.module, program.entry, config.clone());
    let result = owl.run(program.name, &program.workloads, &program.exploit_inputs);

    let mut attacks = Vec::new();
    for spec in &program.attacks {
        let mut hinted = false;
        let mut reached = false;
        let mut dep_kinds = Vec::new();
        for f in &result.findings {
            if f.race.global_name.as_deref() != Some(spec.race_global) {
                continue;
            }
            for (vr, vv) in f.vulns.iter().zip(&f.vuln_verifications) {
                if vr.class == spec.expected_class {
                    hinted = true;
                    dep_kinds.push(vr.dep);
                    if vv.reached {
                        reached = true;
                    }
                }
            }
        }
        // Table 4 measurement: executions-to-trigger under the exploit
        // inputs.
        let trigger_executions = program
            .exploit_inputs
            .iter()
            .filter_map(|input| {
                executions_until(
                    &program.module,
                    program.entry,
                    input,
                    &config.detect.run_config,
                    7,
                    20,
                    spec.oracle,
                )
            })
            .min();
        attacks.push(AttackOutcome {
            spec: spec.clone(),
            hinted,
            reached,
            dep_kinds,
            trigger_executions,
        });
    }

    ProgramEvaluation {
        name: program.name,
        loc: program.loc(),
        result,
        attacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libsafe_end_to_end() {
        let p = owl_corpus::program("Libsafe").expect("Libsafe is in the corpus");
        let eval = evaluate_program(&p, &OwlConfig::quick());
        assert_eq!(eval.attacks.len(), 1);
        let a = &eval.attacks[0];
        assert!(
            a.hinted,
            "memcopy hint expected: {:?}",
            eval.result.findings
        );
        assert!(a.reached, "memcopy site reachable");
        assert!(a.detected());
        assert!(
            a.trigger_executions.is_some_and(|n| n <= 20),
            "exploit within 20 runs: {:?}",
            a.trigger_executions
        );
        assert!(
            a.dep_kinds.contains(&DepKind::CtrlDep),
            "the Libsafe attack is control-dependent: {:?}",
            a.dep_kinds
        );
        assert_eq!(
            a.dep_matched(),
            Some(true),
            "spec ground truth agrees with the hint: {:?}",
            a.dep_kinds
        );
    }

    #[test]
    fn ssdb_unknown_attack_detected() {
        let p = owl_corpus::program("SSDB").expect("SSDB is in the corpus");
        let eval = evaluate_program(&p, &OwlConfig::quick());
        let a = &eval.attacks[0];
        assert!(!a.spec.known, "SSDB's attack was previously unknown");
        assert!(a.detected(), "CVE-2016-1000324 must be detected: {a:?}");
        assert!(eval.result.stats.adhoc_syncs == 0, "Table 3: SSDB A.S. = 0");
    }
}
