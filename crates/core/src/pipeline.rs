//! The OWL pipeline (paper Figure 3).
//!
//! 1. A concurrency bug detector runs over the program's workloads and
//!    produces raw race reports.
//! 2. The static adhoc-synchronization detector extracts benign
//!    **schedule** hints from those reports; the program is annotated
//!    and the detector re-runs, shrinking the report set.
//! 3. The dynamic race verifier checks each surviving report by
//!    catching the race "in the racing moment"; unverifiable reports
//!    are eliminated.
//! 4. The static vulnerability analyzer (Algorithm 1) chases each
//!    verified corrupted read to the five vulnerable-site classes,
//!    producing vulnerable **input** hints.
//! 5. The dynamic vulnerability verifier re-runs the program against
//!    candidate inputs and checks whether each hinted site is actually
//!    reachable (and the attack realizable).

use crate::config::OwlConfig;
use owl_ir::{FuncId, InstRef, Module};
use owl_race::{explore, ExplorerConfig, HbAnnotation, RaceReport};
use owl_static::{AdhocSyncDetector, VulnAnalyzer, VulnReport, VulnStats};
use owl_verify::{RaceVerification, RaceVerifier, VulnVerification, VulnVerifier};
use owl_vm::ProgramInput;
use std::time::{Duration, Instant};

/// Table-3-shaped stage counters for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// R.R. — raw race reports from the detector.
    pub raw_reports: usize,
    /// A.S. — adhoc synchronizations statically identified and
    /// annotated.
    pub adhoc_syncs: usize,
    /// Reports produced by the post-annotation detector re-run.
    pub post_annotation_reports: usize,
    /// R.V.E. — reports the dynamic race verifier could not confirm.
    pub verifier_eliminated: usize,
    /// R. — reports remaining after verification.
    pub remaining: usize,
    /// Races whose corrupted read reaches a vulnerable site (OWL's
    /// final, security-relevant reports).
    pub vulnerable: usize,
    /// Wall-clock spent in the static vulnerability analyzer.
    pub analysis_time: Duration,
    /// Number of reports analyzed (denominator for the average cost).
    pub analysis_count: usize,
    /// Aggregated traversal counters from Algorithm 1.
    pub analysis_work: VulnStats,
    /// Wall-clock spent in detection (both runs).
    pub detect_time: Duration,
    /// Wall-clock spent in dynamic verification (races + vulns).
    pub verify_time: Duration,
}

impl PipelineStats {
    /// Fraction of raw reports pruned before a developer sees them.
    pub fn reduction_ratio(&self) -> f64 {
        if self.raw_reports == 0 {
            return 0.0;
        }
        1.0 - (self.remaining as f64 / self.raw_reports as f64)
    }

    /// Average static-analysis cost per analyzed report.
    pub fn avg_analysis_cost(&self) -> Duration {
        if self.analysis_count == 0 {
            return Duration::ZERO;
        }
        self.analysis_time / self.analysis_count as u32
    }
}

/// One verified race together with its bug-to-attack analysis.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The race report (post-annotation).
    pub race: RaceReport,
    /// Dynamic race verification evidence.
    pub verification: RaceVerification,
    /// Vulnerable input hints from Algorithm 1 (may be empty for
    /// verified-but-benign races).
    pub vulns: Vec<VulnReport>,
    /// Dynamic vulnerability verifications, parallel to `vulns`.
    pub vuln_verifications: Vec<VulnVerification>,
}

impl Finding {
    /// Whether any hinted site was dynamically reached.
    pub fn any_site_reached(&self) -> bool {
        self.vuln_verifications.iter().any(|v| v.reached)
    }
}

/// Everything the pipeline produced for one program.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Program name.
    pub program: String,
    /// Stage counters (Table 3 row).
    pub stats: PipelineStats,
    /// Annotations applied after stage 2.
    pub annotations: Vec<HbAnnotation>,
    /// Verified races with their analyses (stage 3–5 output).
    pub findings: Vec<Finding>,
}

impl PipelineResult {
    /// Findings that carry at least one vulnerable input hint — OWL's
    /// final reports (Table 2's last column).
    pub fn vulnerable_findings(&self) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(|f| !f.vulns.is_empty())
    }

    /// The finding covering a given racy global, if any.
    pub fn finding_on(&self, global: &str) -> Option<&Finding> {
        self.findings
            .iter()
            .find(|f| f.race.global_name.as_deref() == Some(global) && !f.vulns.is_empty())
            .or_else(|| {
                self.findings
                    .iter()
                    .find(|f| f.race.global_name.as_deref() == Some(global))
            })
    }
}

/// The OWL pipeline bound to one program.
#[derive(Debug)]
pub struct Owl<'m> {
    module: &'m Module,
    entry: FuncId,
    config: OwlConfig,
}

impl<'m> Owl<'m> {
    /// Creates a pipeline for `module`, starting at `entry`.
    pub fn new(module: &'m Module, entry: FuncId, config: OwlConfig) -> Self {
        Owl {
            module,
            entry,
            config,
        }
    }

    /// Pipeline with default configuration.
    pub fn with_defaults(module: &'m Module, entry: FuncId) -> Self {
        Self::new(module, entry, OwlConfig::default())
    }

    /// Runs the full pipeline.
    ///
    /// * `workloads` drive detection (all of them).
    /// * `workloads[0]` (the primary workload) drives race
    ///   verification, reproducing the paper's one-input verification
    ///   regime (§5.2).
    /// * `extra_inputs` are additional candidate inputs (e.g. suspected
    ///   exploit inputs) the vulnerability verifier sweeps on top of
    ///   the workloads.
    pub fn run(
        &self,
        name: &str,
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
    ) -> PipelineResult {
        let mut stats = PipelineStats::default();
        let default_workloads = [ProgramInput::empty()];
        let workloads: &[ProgramInput] = if workloads.is_empty() {
            &default_workloads
        } else {
            workloads
        };

        // Stage 1: raw detection.
        let t0 = Instant::now();
        let raw = explore(self.module, self.entry, workloads, &self.config.detect);
        stats.raw_reports = raw.reports.len();

        // Stage 2: adhoc-synchronization hints + annotate + re-detect.
        let adhoc = AdhocSyncDetector::new(self.module);
        let annotations: Vec<HbAnnotation> = adhoc
            .detect(&raw.reports)
            .into_iter()
            .map(|(_, a)| a)
            .collect();
        stats.adhoc_syncs = annotations.len();
        let annotated_cfg = ExplorerConfig {
            annotations: annotations.clone(),
            ..self.config.detect.clone()
        };
        let reduced = explore(self.module, self.entry, workloads, &annotated_cfg);
        stats.post_annotation_reports = reduced.reports.len();
        stats.detect_time = t0.elapsed();

        let findings =
            self.verify_and_analyze(&reduced.reports, workloads, extra_inputs, &mut stats);

        PipelineResult {
            program: name.to_string(),
            stats,
            annotations,
            findings,
        }
    }

    /// Runs the pipeline with an **atomicity-violation** front-end
    /// instead of the race detector — the CTrigger/AVIO integration the
    /// paper lists as future work (§8.3). Atomicity reports are
    /// converted to race-shaped access pairs, and the verification and
    /// analysis stages run unchanged.
    pub fn run_atomicity(
        &self,
        name: &str,
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
    ) -> PipelineResult {
        let mut stats = PipelineStats::default();
        let default_workloads = [ProgramInput::empty()];
        let workloads: &[ProgramInput] = if workloads.is_empty() {
            &default_workloads
        } else {
            workloads
        };

        // Detection: sweep schedules feeding the atomicity detector.
        let t0 = Instant::now();
        let mut detector = owl_race::AtomicityDetector::new();
        for input in workloads {
            for k in 0..self.config.detect.runs_per_input {
                let seed = self.config.detect.base_seed + k;
                let mut sched = owl_vm::RandomScheduler::new(seed);
                let vm = owl_vm::Vm::new(
                    self.module,
                    self.entry,
                    input.clone(),
                    self.config.detect.run_config.clone(),
                );
                let _ = vm.run(&mut sched, &mut detector);
            }
        }
        let atomicity_reports = detector.finish(self.module);
        stats.raw_reports = atomicity_reports.len();
        stats.post_annotation_reports = atomicity_reports.len();
        stats.detect_time = t0.elapsed();

        // Stage 3 (atomicity flavour): the racing-moment check does not
        // apply — both accesses may be individually lock-protected, so
        // they can never be co-suspended. CTrigger-style verification
        // instead re-executes and confirms the unserializable
        // interleaving re-manifests.
        let tv = Instant::now();
        let primary = workloads[0].clone();
        let mut verified: Vec<(RaceReport, RaceVerification)> = Vec::new();
        for report in &atomicity_reports {
            let mut confirmed = false;
            let mut attempts = 0;
            for k in 0..self.config.race_verify.max_schedules {
                attempts = k + 1;
                let mut re = owl_race::AtomicityDetector::new();
                let mut sched = owl_vm::RandomScheduler::new(self.config.race_verify.base_seed + k);
                let vm = owl_vm::Vm::new(
                    self.module,
                    self.entry,
                    primary.clone(),
                    self.config.race_verify.run_config.clone(),
                );
                let _ = vm.run(&mut sched, &mut re);
                if re.reports().iter().any(|r| r.key() == report.key()) {
                    confirmed = true;
                    break;
                }
            }
            if confirmed {
                verified.push((
                    report.as_race_report(),
                    RaceVerification {
                        confirmed: true,
                        attempts,
                        hints: None,
                        outcome: None,
                    },
                ));
            } else {
                stats.verifier_eliminated += 1;
            }
        }
        stats.remaining = verified.len();
        let mut findings = self.analyze_findings(verified, &mut stats);
        self.verify_vuln_sites(&mut findings, workloads, extra_inputs, &mut stats);
        stats.verify_time += tv.elapsed();

        PipelineResult {
            program: name.to_string(),
            stats,
            annotations: Vec::new(),
            findings,
        }
    }

    /// Stages 3–5, shared by all detector front-ends: dynamic race
    /// verification on the primary workload, Algorithm 1 on each
    /// verified report, dynamic vulnerability verification over the
    /// candidate inputs.
    fn verify_and_analyze(
        &self,
        reports: &[RaceReport],
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
        stats: &mut PipelineStats,
    ) -> Vec<Finding> {
        let primary = workloads[0].clone();
        let tv = Instant::now();

        // Stage 3: dynamic race verification (primary workload).
        let race_verifier = RaceVerifier::new(self.module, self.config.race_verify.clone());
        let mut verified: Vec<(RaceReport, RaceVerification)> = Vec::new();
        for report in reports {
            let v = race_verifier.verify(self.entry, &primary, report);
            if v.confirmed {
                verified.push((report.clone(), v));
            } else {
                stats.verifier_eliminated += 1;
            }
        }
        stats.remaining = verified.len();
        let mut findings = self.analyze_findings(verified, stats);
        self.verify_vuln_sites(&mut findings, workloads, extra_inputs, stats);
        stats.verify_time += tv.elapsed();
        findings
    }

    /// Stage 4: static vulnerability analysis on each verified report.
    fn analyze_findings(
        &self,
        verified: Vec<(RaceReport, RaceVerification)>,
        stats: &mut PipelineStats,
    ) -> Vec<Finding> {
        let mut analyzer = VulnAnalyzer::new(self.module, self.config.vuln.clone());
        let mut findings = Vec::new();
        for (race, verification) in verified {
            let vulns = match race.read_access() {
                Some(read) => {
                    let ta = Instant::now();
                    let stack: Vec<InstRef> = read.stack.to_vec();
                    let (reports, work) = analyzer.analyze(read.site, &stack);
                    stats.analysis_time += ta.elapsed();
                    stats.analysis_count += 1;
                    stats.analysis_work.insts_visited += work.insts_visited;
                    stats.analysis_work.funcs_entered += work.funcs_entered;
                    reports
                }
                None => Vec::new(),
            };
            findings.push(Finding {
                race,
                verification,
                vulns,
                vuln_verifications: Vec::new(),
            });
        }
        stats.vulnerable = findings.iter().filter(|f| !f.vulns.is_empty()).count();
        findings
    }

    /// Stage 5: dynamic vulnerability verification over candidate
    /// inputs (workloads + suspected exploit inputs).
    fn verify_vuln_sites(
        &self,
        findings: &mut [Finding],
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
        _stats: &mut PipelineStats,
    ) {
        let vuln_verifier = VulnVerifier::new(self.module, self.config.vuln_verify.clone());
        let mut candidates: Vec<ProgramInput> = workloads.to_vec();
        candidates.extend_from_slice(extra_inputs);
        for f in findings.iter_mut() {
            for vr in &f.vulns {
                f.vuln_verifications
                    .push(vuln_verifier.verify(self.entry, &candidates, vr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// A minimal vulnerable program: racy flag guards an exec, plus one
    /// adhoc sync and one benign racy counter.
    fn tiny_program() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("tiny");
        let flag = mb.global("flag", 1, Type::I64);
        let counter = mb.global("counter", 1, Type::I64);
        let aflag = mb.global("aflag", 1, Type::I64);
        let setter = mb.declare_func("setter", 1);
        let handler = mb.declare_func("handler", 1);
        let spinner = mb.declare_func("spinner", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(setter);
            let fa = b.global_addr(flag);
            b.store(fa, 1);
            let ca = b.global_addr(counter);
            let v = b.load(ca, Type::I64);
            let v2 = b.add(v, 1);
            b.store(ca, v2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(handler);
            let fa = b.global_addr(flag);
            let v = b.load(fa, Type::I64);
            let fire = b.block();
            let out = b.block();
            b.br(v, fire, out);
            b.switch_to(fire);
            b.exec(42);
            b.jmp(out);
            b.switch_to(out);
            let ca = b.global_addr(counter);
            let c = b.load(ca, Type::I64);
            let c2 = b.add(c, 1);
            b.store(ca, c2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(spinner);
            let aa = b.global_addr(aflag);
            let head = b.block();
            let exit = b.block();
            b.jmp(head);
            b.switch_to(head);
            let v = b.load(aa, Type::I64);
            b.br(v, exit, head);
            b.switch_to(exit);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(setter, 0);
            let t2 = b.thread_create(handler, 0);
            let t3 = b.thread_create(spinner, 0);
            let aa = b.global_addr(aflag);
            b.store(aa, 1);
            b.thread_join(t1);
            b.thread_join(t2);
            b.thread_join(t3);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        (m, main_id)
    }

    #[test]
    fn pipeline_finds_the_vulnerable_race() {
        let (m, main) = tiny_program();
        let owl = Owl::new(&m, main, OwlConfig::quick());
        let result = owl.run("tiny", &[ProgramInput::empty()], &[]);
        assert!(result.stats.raw_reports >= 2, "{:?}", result.stats);
        assert_eq!(result.stats.adhoc_syncs, 1, "the spinner is adhoc");
        assert!(
            result.stats.post_annotation_reports < result.stats.raw_reports
                || result.stats.adhoc_syncs == 0,
            "annotation should reduce reports"
        );
        let flag_finding = result
            .finding_on("flag")
            .unwrap_or_else(|| panic!("flag race must survive: {:?}", result.findings));
        assert!(!flag_finding.vulns.is_empty(), "exec hint expected");
        assert!(flag_finding.any_site_reached(), "exec site reachable");
        // The benign counter race survives verification but carries no
        // vulnerability.
        if let Some(c) = result.finding_on("counter") {
            assert!(c.vulns.is_empty(), "counter is benign: {:?}", c.vulns);
        }
    }

    #[test]
    fn stats_ratios_behave() {
        let mut s = PipelineStats::default();
        assert_eq!(s.reduction_ratio(), 0.0);
        s.raw_reports = 100;
        s.remaining = 6;
        assert!((s.reduction_ratio() - 0.94).abs() < 1e-9);
        assert_eq!(s.avg_analysis_cost(), Duration::ZERO);
    }
}
