//! The OWL pipeline (paper Figure 3), run under a supervisor.
//!
//! 1. A concurrency bug detector runs over the program's workloads and
//!    produces raw race reports.
//! 2. The static adhoc-synchronization detector extracts benign
//!    **schedule** hints from those reports; the program is annotated
//!    and the detector re-runs, shrinking the report set.
//! 3. The dynamic race verifier checks each surviving report by
//!    catching the race "in the racing moment"; unverifiable reports
//!    are eliminated.
//! 4. The static vulnerability analyzer (Algorithm 1) chases each
//!    verified corrupted read to the five vulnerable-site classes,
//!    producing vulnerable **input** hints.
//! 5. The dynamic vulnerability verifier re-runs the program against
//!    candidate inputs and checks whether each hinted site is actually
//!    reachable (and the attack realizable).
//!
//! ## Supervision
//!
//! Real detection campaigns run for hours over flaky programs; one
//! pathological report must not take the whole run down. The pipeline
//! therefore supervises stages 3–5 per report: panics are caught and
//! the offending report is moved to [`PipelineResult::quarantined`]
//! with a typed [`PipelineError`]; an optional per-stage wall-clock
//! deadline ([`OwlConfig::stage_deadline`]) quarantines whatever a
//! stage did not get to; verifications that abort (see
//! [`owl_verify::VerifyOutcome`]) are quarantined rather than silently
//! counted as eliminations. [`PipelineHealth`] summarizes attempts,
//! retries, injected faults, deadline hits, and panics per stage.

use crate::config::OwlConfig;
use crate::journal::{unit_key, JournalError, JournalRecord, JournalSink, RecordedVuln};
use owl_ir::analysis::{CallGraph, PointsTo};
use owl_ir::{FuncId, Module};
use owl_race::{explore_with_deadline, ExplorerConfig, HbAnnotation, RaceReport};
use owl_static::{
    AdhocSyncDetector, ElisionPrepass, SummaryCache, VulnAnalyzer, VulnReport, VulnStats,
};
use owl_verify::{
    AbortCause, RaceVerification, RaceVerifier, VerifyOutcome, VulnVerification, VulnVerifier,
};
use owl_vm::ProgramInput;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Table-3-shaped stage counters for one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// R.R. — raw race reports from the detector.
    pub raw_reports: usize,
    /// A.S. — adhoc synchronizations statically identified and
    /// annotated.
    pub adhoc_syncs: usize,
    /// Reports produced by the post-annotation detector re-run.
    pub post_annotation_reports: usize,
    /// R.V.E. — reports the dynamic race verifier could not confirm.
    pub verifier_eliminated: usize,
    /// R. — reports remaining after verification.
    pub remaining: usize,
    /// Races whose corrupted read reaches a vulnerable site (OWL's
    /// final, security-relevant reports).
    pub vulnerable: usize,
    /// Wall-clock spent in the static vulnerability analyzer.
    pub analysis_time: Duration,
    /// Number of reports analyzed (denominator for the average cost).
    pub analysis_count: usize,
    /// Aggregated traversal counters from Algorithm 1.
    pub analysis_work: VulnStats,
    /// Wall-clock spent in detection (both runs).
    pub detect_time: Duration,
    /// Wall-clock spent purely in dynamic race detection (stage 1's
    /// raw sweep plus stage 2's post-annotation re-run) — the explorer
    /// share of [`PipelineStats::detect_time`].
    pub race_detect_time: Duration,
    /// Wall-clock spent in stage 2's static adhoc-synchronization
    /// identification.
    pub static_analysis_time: Duration,
    /// Wall-clock spent in dynamic verification (races + vulns).
    pub verify_time: Duration,
    /// Wall-clock spent in stage 3 (dynamic race verification) alone.
    pub race_verify_time: Duration,
    /// Wall-clock spent in stage 5 (dynamic vulnerability
    /// verification) alone.
    pub vuln_verify_time: Duration,
    /// Wall-clock spent solving the check-elision pre-pass (zero when
    /// [`crate::OwlConfig::elide`] is off).
    pub elision_solve_time: Duration,
}

impl PipelineStats {
    /// Fraction of raw reports pruned before a developer sees them.
    pub fn reduction_ratio(&self) -> f64 {
        if self.raw_reports == 0 {
            return 0.0;
        }
        1.0 - (self.remaining as f64 / self.raw_reports as f64)
    }

    /// Average static-analysis cost per analyzed report.
    pub fn avg_analysis_cost(&self) -> Duration {
        if self.analysis_count == 0 {
            return Duration::ZERO;
        }
        self.analysis_time / self.analysis_count as u32
    }
}

/// A supervised pipeline stage (used to tag errors and health).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Stages 1–2: detection and the post-annotation re-run.
    Detect,
    /// Stage 2's static adhoc-synchronization identification.
    AdhocSync,
    /// Stage 3: dynamic race verification.
    RaceVerify,
    /// Stage 4: static vulnerability analysis (Algorithm 1).
    VulnAnalyze,
    /// Stage 5: dynamic vulnerability verification.
    VulnVerify,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Detect => f.write_str("detect"),
            Stage::AdhocSync => f.write_str("adhoc-sync"),
            Stage::RaceVerify => f.write_str("race-verify"),
            Stage::VulnAnalyze => f.write_str("vuln-analyze"),
            Stage::VulnVerify => f.write_str("vuln-verify"),
        }
    }
}

/// Why a report (or the whole run) was quarantined instead of flowing
/// through the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// A stage panicked while processing the report; the supervisor
    /// caught the unwind.
    Panicked {
        /// The stage that panicked.
        stage: Stage,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The per-stage wall-clock deadline expired before the stage got
    /// to this report.
    StageDeadline {
        /// The stage whose deadline expired.
        stage: Stage,
    },
    /// A dynamic verifier gave up without a meaningful answer.
    VerifierAborted {
        /// The verification stage that aborted.
        stage: Stage,
        /// Why it aborted.
        cause: AbortCause,
        /// Attempts it completed before aborting.
        attempts: u64,
    },
    /// The pipeline's entry function cannot be executed at all, so no
    /// stage ran.
    InvalidEntry {
        /// What is wrong with the entry.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Panicked { stage, message } => {
                write!(f, "{stage} stage panicked: {message}")
            }
            PipelineError::StageDeadline { stage } => {
                write!(f, "{stage} stage deadline expired")
            }
            PipelineError::VerifierAborted {
                stage,
                cause,
                attempts,
            } => write!(f, "{stage} aborted after {attempts} attempt(s): {cause}"),
            PipelineError::InvalidEntry { reason } => {
                write!(f, "invalid entry function: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A race report the supervisor pulled out of the pipeline together
/// with the reason.
#[derive(Clone, Debug)]
pub struct Quarantined {
    /// The report that was being processed.
    pub race: RaceReport,
    /// Why it was quarantined.
    pub error: PipelineError,
}

/// Supervision counters for one stage.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageHealth {
    /// Work units attempted (executions for detection, verification
    /// attempts for the verifiers, reports for the analyzer).
    pub attempts: u64,
    /// Attempts beyond the first per report (the retry-with-reseed
    /// budget actually spent).
    pub retries: u64,
    /// Faults the VM's fault plan injected during this stage.
    pub injected_faults: u64,
    /// Times a wall-clock deadline cut this stage short.
    pub deadline_hits: u64,
    /// Panics the supervisor caught in this stage.
    pub panics: u64,
    /// Reports quarantined out of this stage.
    pub quarantined: u64,
}

/// Per-stage [`StageHealth`] for a whole pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineHealth {
    /// Stages 1–2 (detection runs, both sweeps).
    pub detect: StageHealth,
    /// Stage 3 (dynamic race verification).
    pub race_verify: StageHealth,
    /// Stage 4 (static vulnerability analysis).
    pub vuln_analyze: StageHealth,
    /// Stage 5 (dynamic vulnerability verification).
    pub vuln_verify: StageHealth,
    /// Stage-4 summary-cache hits: memoized callee walks replayed
    /// instead of recomputed (across reports and worker threads).
    pub summary_cache_hits: u64,
    /// Stage-4 summary-cache misses: callee walks actually computed.
    pub summary_cache_misses: u64,
    /// Wall-clock spent solving the whole-module points-to analysis
    /// (done once per stage-4 entry, shared by every report).
    pub points_to_solve: Duration,
    /// Bytes the run journal's open-time recovery truncated off a
    /// torn or corrupt tail (zero when no journal was used or the
    /// journal was clean).
    pub journal_discarded_bytes: u64,
    /// Records discarded by the run journal's open-time recovery.
    pub journal_discarded_records: u64,
    /// Race observations the detector suppressed because they matched
    /// an adhoc-synchronization annotation, summed over both detection
    /// sweeps. (Live runs only — not journaled.)
    pub detector_suppressed: u64,
    /// Observations of new site pairs the detector dropped because the
    /// report cap was full. Non-zero means the raw report set is
    /// truncated. (Live runs only — not journaled.)
    pub detector_reports_dropped: u64,
    /// Access sites the check-elision pre-pass proved thread-local.
    pub elision_sites_thread_local: u64,
    /// Access sites the pre-pass proved lock-dominated.
    pub elision_sites_lock_dominated: u64,
    /// Access sites the pre-pass proved read-only-shared.
    pub elision_sites_read_only: u64,
    /// Data-access events whose epoch shadow-memory work was skipped
    /// at elided sites, summed over both detection sweeps.
    pub elision_events_elided: u64,
    /// Bytes of trace the streaming detection units spilled to segment
    /// files under memory pressure, summed over both sweeps. (Live
    /// runs only — not journaled.)
    pub trace_spilled_bytes: u64,
    /// Spill segments written (each verified by checksum on replay and
    /// deleted). (Live runs only — not journaled.)
    pub trace_spill_segments: u64,
    /// Times a detection unit's in-flight window crossed the soft
    /// memory limit. (Live runs only — not journaled.)
    pub mem_pressure_events: u64,
    /// Shadow cells the detectors' thread-exit/free GC reclaimed.
    /// (Live runs only — not journaled.)
    pub shadow_cells_gced: u64,
    /// Detection units aborted with a typed memory-budget verdict
    /// because their trace outgrew `--max-trace-mem` with nowhere to
    /// spill. Reconstructed on resume from quarantine records.
    pub units_aborted_mem_budget: u64,
    /// Conflicting access pairs the predictive detection backends
    /// submitted to the witness machinery, summed over both detection
    /// sweeps. Zero for non-predictive backends. (Live runs only —
    /// not journaled.)
    pub predict_candidates: u64,
    /// Predicted-race candidates with a validated witness reordering.
    /// (Live runs only — not journaled.)
    pub predict_witnessed: u64,
    /// Predicted-race candidates rejected by the closure, scheduler,
    /// or witness validator. (Live runs only — not journaled.)
    pub predict_witness_rejected: u64,
    /// Witnessed predicted races that required reversing a
    /// lock-acquire order (`syncrev` backend only). (Live runs only —
    /// not journaled.)
    pub predict_reversal_races: u64,
    /// Detection units the explorer launched from a mid-run snapshot
    /// instead of instruction zero (prefix-sharing fork mode), summed
    /// over both sweeps. Zero under `--no-fork`. (Live runs only —
    /// not journaled.)
    pub units_forked: u64,
    /// VM steps detection units did not re-execute thanks to prefix
    /// sharing. Zero under `--no-fork`. (Live runs only — not
    /// journaled.)
    pub prefix_steps_saved: u64,
    /// Detection units whose realized schedule collapsed to an
    /// already-run signature, so their outcome was reused without
    /// executing the VM. Zero under `--no-fork`. (Live runs only —
    /// not journaled.)
    pub schedules_deduped: u64,
    /// Estimated bytes of machine state captured by per-input
    /// snapshots (heap payloads are CoW-shared). Zero under
    /// `--no-fork`. (Live runs only — not journaled.)
    pub snapshot_bytes: u64,
}

impl PipelineHealth {
    /// All faults injected across every stage.
    pub fn total_injected_faults(&self) -> u64 {
        self.detect.injected_faults
            + self.race_verify.injected_faults
            + self.vuln_analyze.injected_faults
            + self.vuln_verify.injected_faults
    }

    /// All reports quarantined across every stage.
    pub fn total_quarantined(&self) -> u64 {
        self.detect.quarantined
            + self.race_verify.quarantined
            + self.vuln_analyze.quarantined
            + self.vuln_verify.quarantined
    }

    /// All panics caught across every stage.
    pub fn total_panics(&self) -> u64 {
        self.detect.panics
            + self.race_verify.panics
            + self.vuln_analyze.panics
            + self.vuln_verify.panics
    }

    /// Accumulates another run's counters into this one — the daemon's
    /// watchdog folds every completed request's health into one
    /// service-wide view.
    pub fn merge(&mut self, other: &PipelineHealth) {
        for (mine, theirs) in [
            (&mut self.detect, &other.detect),
            (&mut self.race_verify, &other.race_verify),
            (&mut self.vuln_analyze, &other.vuln_analyze),
            (&mut self.vuln_verify, &other.vuln_verify),
        ] {
            mine.attempts += theirs.attempts;
            mine.retries += theirs.retries;
            mine.injected_faults += theirs.injected_faults;
            mine.deadline_hits += theirs.deadline_hits;
            mine.panics += theirs.panics;
            mine.quarantined += theirs.quarantined;
        }
        self.summary_cache_hits += other.summary_cache_hits;
        self.summary_cache_misses += other.summary_cache_misses;
        self.points_to_solve += other.points_to_solve;
        self.journal_discarded_bytes += other.journal_discarded_bytes;
        self.journal_discarded_records += other.journal_discarded_records;
        self.detector_suppressed += other.detector_suppressed;
        self.detector_reports_dropped += other.detector_reports_dropped;
        self.elision_sites_thread_local += other.elision_sites_thread_local;
        self.elision_sites_lock_dominated += other.elision_sites_lock_dominated;
        self.elision_sites_read_only += other.elision_sites_read_only;
        self.elision_events_elided += other.elision_events_elided;
        self.trace_spilled_bytes += other.trace_spilled_bytes;
        self.trace_spill_segments += other.trace_spill_segments;
        self.mem_pressure_events += other.mem_pressure_events;
        self.shadow_cells_gced += other.shadow_cells_gced;
        self.units_aborted_mem_budget += other.units_aborted_mem_budget;
        self.predict_candidates += other.predict_candidates;
        self.predict_witnessed += other.predict_witnessed;
        self.predict_witness_rejected += other.predict_witness_rejected;
        self.predict_reversal_races += other.predict_reversal_races;
        self.units_forked += other.units_forked;
        self.prefix_steps_saved += other.prefix_steps_saved;
        self.schedules_deduped += other.schedules_deduped;
        self.snapshot_bytes += other.snapshot_bytes;
    }
}

/// Renders a caught panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One verified race together with its bug-to-attack analysis.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The race report (post-annotation).
    pub race: RaceReport,
    /// Dynamic race verification evidence.
    pub verification: RaceVerification,
    /// Vulnerable input hints from Algorithm 1 (may be empty for
    /// verified-but-benign races).
    pub vulns: Vec<VulnReport>,
    /// Dynamic vulnerability verifications, parallel to `vulns`.
    pub vuln_verifications: Vec<VulnVerification>,
}

impl Finding {
    /// Whether any hinted site was dynamically reached.
    pub fn any_site_reached(&self) -> bool {
        self.vuln_verifications.iter().any(|v| v.reached)
    }
}

/// Everything the pipeline produced for one program.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Program name.
    pub program: String,
    /// Stage counters (Table 3 row).
    pub stats: PipelineStats,
    /// Annotations applied after stage 2.
    pub annotations: Vec<HbAnnotation>,
    /// Verified races with their analyses (stage 3–5 output).
    pub findings: Vec<Finding>,
    /// Reports the supervisor pulled out of the pipeline (panics,
    /// deadline expiries, aborted verifications).
    pub quarantined: Vec<Quarantined>,
    /// Supervision counters per stage.
    pub health: PipelineHealth,
    /// A run-level error that prevented the pipeline from running at
    /// all (currently only [`PipelineError::InvalidEntry`]).
    pub error: Option<PipelineError>,
}

impl PipelineResult {
    /// Findings that carry at least one vulnerable input hint — OWL's
    /// final reports (Table 2's last column).
    pub fn vulnerable_findings(&self) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(|f| !f.vulns.is_empty())
    }

    /// The finding covering a given racy global, if any.
    pub fn finding_on(&self, global: &str) -> Option<&Finding> {
        self.findings
            .iter()
            .find(|f| f.race.global_name.as_deref() == Some(global) && !f.vulns.is_empty())
            .or_else(|| {
                self.findings
                    .iter()
                    .find(|f| f.race.global_name.as_deref() == Some(global))
            })
    }

    /// An empty result carrying only a run-level error.
    fn failed(name: &str, error: PipelineError) -> Self {
        PipelineResult {
            program: name.to_string(),
            stats: PipelineStats::default(),
            annotations: Vec::new(),
            findings: Vec::new(),
            quarantined: Vec::new(),
            health: PipelineHealth::default(),
            error: Some(error),
        }
    }
}

/// The OWL pipeline bound to one program.
#[derive(Debug)]
pub struct Owl<'m> {
    module: &'m Module,
    entry: FuncId,
    config: OwlConfig,
}

impl<'m> Owl<'m> {
    /// Creates a pipeline for `module`, starting at `entry`.
    pub fn new(module: &'m Module, entry: FuncId, config: OwlConfig) -> Self {
        Owl {
            module,
            entry,
            config,
        }
    }

    /// Pipeline with default configuration.
    pub fn with_defaults(module: &'m Module, entry: FuncId) -> Self {
        Self::new(module, entry, OwlConfig::default())
    }

    /// Checks that the entry function can actually be executed, so the
    /// VM constructor cannot panic deep inside a stage.
    fn validate_entry(&self) -> Result<(), PipelineError> {
        let f = self.module.func(self.entry);
        if !f.is_internal {
            return Err(PipelineError::InvalidEntry {
                reason: format!("`{}` is external (no body to execute)", f.name),
            });
        }
        if f.num_params != 0 {
            return Err(PipelineError::InvalidEntry {
                reason: format!(
                    "`{}` takes {} parameter(s); the entry must take none",
                    f.name, f.num_params
                ),
            });
        }
        Ok(())
    }

    /// Runs the full pipeline.
    ///
    /// * `workloads` drive detection (all of them).
    /// * `workloads[0]` (the primary workload) drives race
    ///   verification, reproducing the paper's one-input verification
    ///   regime (§5.2).
    /// * `extra_inputs` are additional candidate inputs (e.g. suspected
    ///   exploit inputs) the vulnerability verifier sweeps on top of
    ///   the workloads.
    pub fn run(
        &self,
        name: &str,
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
    ) -> PipelineResult {
        if let Err(e) = self.validate_entry() {
            return PipelineResult::failed(name, e);
        }
        let mut stats = PipelineStats::default();
        let mut health = PipelineHealth::default();
        let mut quarantined = Vec::new();
        let default_workloads = [ProgramInput::empty()];
        let workloads: &[ProgramInput] = if workloads.is_empty() {
            &default_workloads
        } else {
            workloads
        };

        let (annotations, reports) =
            match self.detect_and_annotate(name, workloads, &mut stats, &mut health) {
                Ok(out) => out,
                Err(error) => {
                    return PipelineResult {
                        program: name.to_string(),
                        stats,
                        annotations: Vec::new(),
                        findings: Vec::new(),
                        quarantined,
                        health,
                        error: Some(error),
                    };
                }
            };
        let findings = self.verify_and_analyze(
            &reports,
            workloads,
            extra_inputs,
            &mut stats,
            &mut health,
            &mut quarantined,
        );

        PipelineResult {
            program: name.to_string(),
            stats,
            annotations,
            findings,
            quarantined,
            health,
            error: None,
        }
    }

    /// Stages 1–2: raw detection, adhoc-synchronization annotation,
    /// and the post-annotation re-run. Shared by [`Owl::run`] and
    /// [`Owl::run_with_journal`]; fully deterministic for a fixed
    /// configuration (seeded explorer, seeded fault plan), which is
    /// what makes it safe to re-execute on resume instead of
    /// journaling its reports.
    ///
    /// Returns a [`PipelineError::VerifierAborted`] with
    /// [`AbortCause::MemoryBudget`] when any exploration unit blew the
    /// `--max-trace-mem` hard limit and had no spill directory to
    /// degrade into — the unit's reports were discarded, so continuing
    /// to the verifiers would verify an incomplete stream.
    fn detect_and_annotate(
        &self,
        name: &str,
        workloads: &[ProgramInput],
        stats: &mut PipelineStats,
        health: &mut PipelineHealth,
    ) -> Result<(Vec<HbAnnotation>, Vec<RaceReport>), PipelineError> {
        let deadline = self.config.stage_deadline;

        // Stage 0 (optional): check-elision pre-pass. Installs the
        // proved-race-free site set in *both* sweeps' configs so the
        // VM stamps their events and the epoch detector skips its
        // shadow work there. Purely an optimization: report streams
        // are byte-identical with it on or off.
        let mut detect_cfg = self.config.detect.clone();
        detect_cfg.stream.tag_prefix = spill_tag(name);
        if self.config.elide {
            let pre = ElisionPrepass::run(self.module, self.entry);
            let es = pre.stats();
            stats.elision_solve_time = pre.solve_time();
            health.elision_sites_thread_local += es.thread_local as u64;
            health.elision_sites_lock_dominated += es.lock_dominated as u64;
            health.elision_sites_read_only += es.read_only as u64;
            detect_cfg.elided_sites = Some(pre.elided_sites());
        }

        // Stage 1: raw detection.
        let t0 = Instant::now();
        let raw = explore_with_deadline(self.module, self.entry, workloads, &detect_cfg, deadline);
        let raw_detect = t0.elapsed();
        stats.raw_reports = raw.reports.len();
        health.detect.attempts += raw.runs;
        health.detect.injected_faults += raw.injected_faults;
        health.detect.deadline_hits += raw.deadline_hit as u64;
        absorb_stream_health(health, &raw);
        if raw.units_aborted_mem_budget > 0 {
            stats.detect_time = t0.elapsed();
            return Err(PipelineError::VerifierAborted {
                stage: Stage::Detect,
                cause: AbortCause::MemoryBudget,
                attempts: raw.units_aborted_mem_budget,
            });
        }

        // Stage 2: adhoc-synchronization hints + annotate + re-detect.
        let t_static = Instant::now();
        let adhoc = AdhocSyncDetector::new(self.module);
        let annotations: Vec<HbAnnotation> = adhoc
            .detect(&raw.reports)
            .into_iter()
            .map(|(_, a)| a)
            .collect();
        stats.static_analysis_time = t_static.elapsed();
        stats.adhoc_syncs = annotations.len();
        let annotated_cfg = ExplorerConfig {
            annotations: annotations.clone(),
            ..detect_cfg
        };
        let t_rerun = Instant::now();
        let reduced =
            explore_with_deadline(self.module, self.entry, workloads, &annotated_cfg, deadline);
        stats.race_detect_time = raw_detect + t_rerun.elapsed();
        stats.post_annotation_reports = reduced.reports.len();
        health.detect.attempts += reduced.runs;
        health.detect.injected_faults += reduced.injected_faults;
        health.detect.deadline_hits += reduced.deadline_hit as u64;
        absorb_stream_health(health, &reduced);
        if reduced.units_aborted_mem_budget > 0 {
            stats.detect_time = t0.elapsed();
            return Err(PipelineError::VerifierAborted {
                stage: Stage::Detect,
                cause: AbortCause::MemoryBudget,
                attempts: reduced.units_aborted_mem_budget,
            });
        }
        health.detector_suppressed += (raw.suppressed + reduced.suppressed) as u64;
        health.elision_events_elided += raw.events_elided + reduced.events_elided;
        let dropped = raw.reports_dropped + reduced.reports_dropped;
        health.detector_reports_dropped += dropped as u64;
        if dropped > 0 {
            eprintln!(
                "detect: report cap truncated {dropped} race observation(s); \
                 raise HbConfig::max_reports to keep them"
            );
        }
        stats.detect_time = t0.elapsed();
        Ok((annotations, reduced.reports))
    }

    /// Runs the full pipeline with checkpoint/resume against a run
    /// journal.
    ///
    /// Stages 1–2 are seeded-deterministic and cheap relative to the
    /// dynamic verifiers, so they re-execute on every call; stages 3–5
    /// are journaled per unit. A unit whose record is already in the
    /// journal is **replayed** — its recorded verdict and health
    /// contribution are restored without executing anything — and a
    /// unit computed live is appended (write + flush + fsync) the
    /// moment it completes. Killing the process at any point therefore
    /// loses at most the one unit that was in flight; a rerun with the
    /// same journal picks up exactly where the record stream ends and
    /// produces the same deterministic summary an uninterrupted run
    /// would have.
    ///
    /// Journal recovery counters ([`JournalSink::recovery_report`])
    /// are surfaced
    /// in the result's [`PipelineHealth::journal_discarded_bytes`] and
    /// [`PipelineHealth::journal_discarded_records`].
    ///
    /// Stages 1–2 honor [`OwlConfig::stage_deadline`] as usual, but
    /// the journaled stages 3–5 deliberately do not: wall-clock cuts
    /// are inherently non-deterministic and would break byte-identical
    /// resume. Campaign runs bound stage work with the verifiers'
    /// seeded step budgets instead.
    pub fn run_with_journal<J: JournalSink>(
        &self,
        name: &str,
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
        journal: &mut J,
    ) -> Result<PipelineResult, JournalError> {
        if let Err(e) = self.validate_entry() {
            return Ok(PipelineResult::failed(name, e));
        }
        let recovery = journal.recovery_report();
        let mut stats = PipelineStats::default();
        let mut health = PipelineHealth {
            journal_discarded_bytes: recovery.discarded_bytes,
            journal_discarded_records: recovery.discarded_records,
            ..PipelineHealth::default()
        };
        let mut quarantined = Vec::new();
        let default_workloads = [ProgramInput::empty()];
        let workloads: &[ProgramInput] = if workloads.is_empty() {
            &default_workloads
        } else {
            workloads
        };

        let (annotations, reports) =
            match self.detect_and_annotate(name, workloads, &mut stats, &mut health) {
                Ok(out) => out,
                Err(error) => {
                    return Ok(PipelineResult {
                        program: name.to_string(),
                        stats,
                        annotations: Vec::new(),
                        findings: Vec::new(),
                        quarantined,
                        health,
                        error: Some(error),
                    });
                }
            };
        let program_records = journal.program_records(name);
        let mut index = ResumeIndex::for_program(&program_records, name);
        let tv = Instant::now();
        let t3 = Instant::now();

        // Stage 3, journaled: replay recorded verdicts, verify the
        // rest live and journal each verdict as it lands.
        let primary = workloads[0].clone();
        let race_verifier = RaceVerifier::new(self.module, self.config.race_verify.clone());
        let mut verified: Vec<(RaceReport, RaceVerification)> = Vec::new();
        for report in &reports {
            let key = unit_key(report);
            if let Some(replay) = index.next_verify(&key) {
                match replay {
                    VerifyReplay::Verdict {
                        confirmed,
                        attempts,
                        injected_faults,
                    } => {
                        health.race_verify.attempts += attempts;
                        health.race_verify.retries += attempts.saturating_sub(1);
                        health.race_verify.injected_faults += injected_faults;
                        if confirmed {
                            verified.push((
                                report.clone(),
                                replayed_race_verification(attempts, injected_faults),
                            ));
                        } else {
                            stats.verifier_eliminated += 1;
                        }
                    }
                    VerifyReplay::Quarantined {
                        error,
                        attempts,
                        injected_faults,
                    } => {
                        health.race_verify.attempts += attempts;
                        health.race_verify.retries += attempts.saturating_sub(1);
                        health.race_verify.injected_faults += injected_faults;
                        apply_quarantine_health(&mut health.race_verify, &error);
                        quarantined.push(Quarantined {
                            race: report.clone(),
                            error,
                        });
                    }
                }
                continue;
            }
            match catch_unwind(AssertUnwindSafe(|| {
                race_verifier.verify(self.entry, &primary, report)
            })) {
                Ok(v) => {
                    health.race_verify.attempts += v.attempts;
                    health.race_verify.retries += v.attempts.saturating_sub(1);
                    health.race_verify.injected_faults += v.injected_faults;
                    match v.verdict {
                        VerifyOutcome::Confirmed | VerifyOutcome::Unconfirmed => {
                            let confirmed = v.verdict == VerifyOutcome::Confirmed;
                            journal.append_record(JournalRecord::ReportVerified {
                                program: name.to_string(),
                                key,
                                global: report.global_name.clone(),
                                confirmed,
                                attempts: v.attempts,
                                injected_faults: v.injected_faults,
                            })?;
                            if confirmed {
                                verified.push((report.clone(), v));
                            } else {
                                stats.verifier_eliminated += 1;
                            }
                        }
                        VerifyOutcome::Aborted { cause, attempts } => {
                            let error = PipelineError::VerifierAborted {
                                stage: Stage::RaceVerify,
                                cause,
                                attempts,
                            };
                            journal.append_record(JournalRecord::Quarantined {
                                program: name.to_string(),
                                key: Some(key),
                                global: report.global_name.clone(),
                                error: error.clone(),
                                attempts: v.attempts,
                                injected_faults: v.injected_faults,
                            })?;
                            apply_quarantine_health(&mut health.race_verify, &error);
                            quarantined.push(Quarantined {
                                race: report.clone(),
                                error,
                            });
                        }
                    }
                }
                Err(payload) => {
                    let error = PipelineError::Panicked {
                        stage: Stage::RaceVerify,
                        message: panic_message(payload),
                    };
                    journal.append_record(JournalRecord::Quarantined {
                        program: name.to_string(),
                        key: Some(key),
                        global: report.global_name.clone(),
                        error: error.clone(),
                        attempts: 0,
                        injected_faults: 0,
                    })?;
                    apply_quarantine_health(&mut health.race_verify, &error);
                    quarantined.push(Quarantined {
                        race: report.clone(),
                        error,
                    });
                }
            }
        }
        stats.remaining = verified.len();
        stats.race_verify_time += t3.elapsed();

        // Stages 4–5, journaled per confirmed report: static analysis
        // plus dynamic vulnerability verification form one unit, so a
        // finding is either fully recorded or re-derived from scratch.
        let needs_live = verified
            .iter()
            .any(|(race, _)| !index.has_analyze(&unit_key(race)));
        let vuln_cfg = &self.config.vuln;
        let mut analyzer = needs_live.then(|| {
            let tp = Instant::now();
            let points_to = vuln_cfg
                .points_to
                .then(|| Arc::new(PointsTo::new(self.module)));
            health.points_to_solve += tp.elapsed();
            let callgraph = vuln_cfg.summaries.then(|| {
                Arc::new(match &points_to {
                    Some(p) => CallGraph::with_points_to(self.module, p),
                    None => CallGraph::new(self.module),
                })
            });
            let cache = vuln_cfg.summaries.then(|| Arc::new(SummaryCache::new()));
            VulnAnalyzer::with_shared(self.module, vuln_cfg.clone(), points_to, callgraph, cache)
        });
        let vuln_verifier = VulnVerifier::new(self.module, self.config.vuln_verify.clone());
        let mut candidates: Vec<ProgramInput> = workloads.to_vec();
        candidates.extend_from_slice(extra_inputs);
        let mut findings = Vec::new();
        for (race, verification) in verified {
            let key = unit_key(&race);
            if let Some(replay) = index.next_analyze(&key) {
                match replay {
                    AnalyzeReplay::Finding(vulns) => {
                        health.vuln_analyze.attempts += 1;
                        let mut reports = Vec::with_capacity(vulns.len());
                        let mut verifications = Vec::with_capacity(vulns.len());
                        for rv in vulns {
                            health.vuln_verify.attempts += rv.attempts;
                            health.vuln_verify.retries += rv.attempts.saturating_sub(1);
                            health.vuln_verify.injected_faults += rv.injected_faults;
                            if let VerifyOutcome::Aborted { cause, attempts } = rv.verdict {
                                let error = PipelineError::VerifierAborted {
                                    stage: Stage::VulnVerify,
                                    cause,
                                    attempts,
                                };
                                apply_quarantine_health(&mut health.vuln_verify, &error);
                                quarantined.push(Quarantined {
                                    race: race.clone(),
                                    error,
                                });
                            }
                            verifications.push(replayed_vuln_verification(&rv));
                            reports.push(rv.report);
                        }
                        findings.push(Finding {
                            race,
                            verification,
                            vulns: reports,
                            vuln_verifications: verifications,
                        });
                    }
                    AnalyzeReplay::Quarantined { error } => {
                        health.vuln_analyze.attempts += 1;
                        apply_quarantine_health(&mut health.vuln_analyze, &error);
                        quarantined.push(Quarantined { race, error });
                    }
                }
                continue;
            }

            // Live stage 4.
            health.vuln_analyze.attempts += 1;
            let analyzer = analyzer
                .as_mut()
                .expect("analyzer built whenever a live unit exists");
            let read_info = race
                .read_access()
                .map(|read| (read.site, read.stack.to_vec()));
            let vulns = match read_info {
                Some((site, stack)) => {
                    let ta = Instant::now();
                    let analyzed =
                        catch_unwind(AssertUnwindSafe(|| analyzer.analyze(site, &stack)));
                    stats.analysis_time += ta.elapsed();
                    match analyzed {
                        Ok((reports, work)) => {
                            stats.analysis_count += 1;
                            stats.analysis_work.insts_visited += work.insts_visited;
                            stats.analysis_work.funcs_entered += work.funcs_entered;
                            reports
                        }
                        Err(payload) => {
                            let error = PipelineError::Panicked {
                                stage: Stage::VulnAnalyze,
                                message: panic_message(payload),
                            };
                            journal.append_record(JournalRecord::Quarantined {
                                program: name.to_string(),
                                key: Some(key),
                                global: race.global_name.clone(),
                                error: error.clone(),
                                attempts: 0,
                                injected_faults: 0,
                            })?;
                            apply_quarantine_health(&mut health.vuln_analyze, &error);
                            quarantined.push(Quarantined { race, error });
                            continue;
                        }
                    }
                }
                None => Vec::new(),
            };

            // Live stage 5 over this finding's hints.
            let t5 = Instant::now();
            let mut recorded = Vec::with_capacity(vulns.len());
            let mut verifications = Vec::with_capacity(vulns.len());
            for vr in &vulns {
                let v = match catch_unwind(AssertUnwindSafe(|| {
                    vuln_verifier.verify(self.entry, &candidates, vr)
                })) {
                    Ok(v) => v,
                    Err(payload) => {
                        health.vuln_verify.panics += 1;
                        health.vuln_verify.quarantined += 1;
                        quarantined.push(Quarantined {
                            race: race.clone(),
                            error: PipelineError::Panicked {
                                stage: Stage::VulnVerify,
                                message: panic_message(payload),
                            },
                        });
                        aborted_vuln_verification(AbortCause::Panicked, 0)
                    }
                };
                health.vuln_verify.attempts += v.attempts;
                health.vuln_verify.retries += v.attempts.saturating_sub(1);
                health.vuln_verify.injected_faults += v.injected_faults;
                if let VerifyOutcome::Aborted { cause, attempts } = v.verdict {
                    if cause != AbortCause::Panicked {
                        let error = PipelineError::VerifierAborted {
                            stage: Stage::VulnVerify,
                            cause,
                            attempts,
                        };
                        apply_quarantine_health(&mut health.vuln_verify, &error);
                        quarantined.push(Quarantined {
                            race: race.clone(),
                            error,
                        });
                    }
                }
                recorded.push(RecordedVuln {
                    report: vr.clone(),
                    reached: v.reached,
                    verdict: v.verdict,
                    attempts: v.attempts,
                    injected_faults: v.injected_faults,
                });
                verifications.push(v);
            }
            stats.vuln_verify_time += t5.elapsed();
            journal.append_record(JournalRecord::FindingAnalyzed {
                program: name.to_string(),
                key,
                global: race.global_name.clone(),
                vulns: recorded,
            })?;
            findings.push(Finding {
                race,
                verification,
                vulns,
                vuln_verifications: verifications,
            });
        }
        stats.vulnerable = findings.iter().filter(|f| !f.vulns.is_empty()).count();
        stats.verify_time += tv.elapsed();

        Ok(PipelineResult {
            program: name.to_string(),
            stats,
            annotations,
            findings,
            quarantined,
            health,
            error: None,
        })
    }

    /// Runs the pipeline with an **atomicity-violation** front-end
    /// instead of the race detector — the CTrigger/AVIO integration the
    /// paper lists as future work (§8.3). Atomicity reports are
    /// converted to race-shaped access pairs, and the verification and
    /// analysis stages run unchanged.
    pub fn run_atomicity(
        &self,
        name: &str,
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
    ) -> PipelineResult {
        if let Err(e) = self.validate_entry() {
            return PipelineResult::failed(name, e);
        }
        let mut stats = PipelineStats::default();
        let mut health = PipelineHealth::default();
        let mut quarantined = Vec::new();
        let default_workloads = [ProgramInput::empty()];
        let workloads: &[ProgramInput] = if workloads.is_empty() {
            &default_workloads
        } else {
            workloads
        };

        // Detection: sweep schedules feeding the atomicity detector.
        let t0 = Instant::now();
        let mut detector = owl_race::AtomicityDetector::new();
        for input in workloads {
            for k in 0..self.config.detect.runs_per_input {
                let seed = self.config.detect.base_seed + k;
                let mut sched = owl_vm::RandomScheduler::new(seed);
                let vm = owl_vm::Vm::new(
                    self.module,
                    self.entry,
                    input.clone(),
                    self.config.detect.run_config.clone(),
                );
                let outcome = vm.run(&mut sched, &mut detector);
                health.detect.attempts += 1;
                health.detect.injected_faults += outcome.injected_faults.len() as u64;
            }
        }
        let atomicity_reports = detector.finish(self.module);
        stats.raw_reports = atomicity_reports.len();
        stats.post_annotation_reports = atomicity_reports.len();
        stats.detect_time = t0.elapsed();
        // The atomicity front-end has no static-annotation stage: all
        // of detection is dynamic.
        stats.race_detect_time = stats.detect_time;

        // Stage 3 (atomicity flavour): the racing-moment check does not
        // apply — both accesses may be individually lock-protected, so
        // they can never be co-suspended. CTrigger-style verification
        // instead re-executes and confirms the unserializable
        // interleaving re-manifests.
        let tv = Instant::now();
        let t3 = Instant::now();
        let stage_start = Instant::now();
        let mut stage_expired = false;
        let primary = workloads[0].clone();
        let mut verified: Vec<(RaceReport, RaceVerification)> = Vec::new();
        for report in &atomicity_reports {
            if let Some(d) = self.config.stage_deadline {
                if !stage_expired && !verified.is_empty() && stage_start.elapsed() >= d {
                    stage_expired = true;
                    health.race_verify.deadline_hits += 1;
                }
            }
            if stage_expired {
                health.race_verify.quarantined += 1;
                quarantined.push(Quarantined {
                    race: report.as_race_report(),
                    error: PipelineError::StageDeadline {
                        stage: Stage::RaceVerify,
                    },
                });
                continue;
            }
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let mut confirmed = false;
                let mut attempts = 0u64;
                let mut faults = 0u64;
                for k in 0..self.config.race_verify.max_schedules {
                    attempts = k + 1;
                    let mut re = owl_race::AtomicityDetector::new();
                    let mut sched =
                        owl_vm::RandomScheduler::new(self.config.race_verify.base_seed + k);
                    let vm = owl_vm::Vm::new(
                        self.module,
                        self.entry,
                        primary.clone(),
                        self.config.race_verify.run_config.clone(),
                    );
                    let outcome = vm.run(&mut sched, &mut re);
                    faults += outcome.injected_faults.len() as u64;
                    if re.reports().iter().any(|r| r.key() == report.key()) {
                        confirmed = true;
                        break;
                    }
                }
                (confirmed, attempts, faults)
            }));
            match attempt {
                Ok((confirmed, attempts, faults)) => {
                    health.race_verify.attempts += attempts;
                    health.race_verify.retries += attempts.saturating_sub(1);
                    health.race_verify.injected_faults += faults;
                    if confirmed {
                        verified.push((
                            report.as_race_report(),
                            RaceVerification {
                                confirmed: true,
                                verdict: VerifyOutcome::Confirmed,
                                attempts,
                                hints: None,
                                outcome: None,
                                injected_faults: faults,
                            },
                        ));
                    } else {
                        stats.verifier_eliminated += 1;
                    }
                }
                Err(payload) => {
                    health.race_verify.panics += 1;
                    health.race_verify.quarantined += 1;
                    quarantined.push(Quarantined {
                        race: report.as_race_report(),
                        error: PipelineError::Panicked {
                            stage: Stage::RaceVerify,
                            message: panic_message(payload),
                        },
                    });
                }
            }
        }
        stats.remaining = verified.len();
        stats.race_verify_time += t3.elapsed();
        let mut findings =
            self.analyze_findings(verified, &mut stats, &mut health, &mut quarantined);
        self.verify_vuln_sites(
            &mut findings,
            workloads,
            extra_inputs,
            &mut stats,
            &mut health,
            &mut quarantined,
        );
        stats.verify_time += tv.elapsed();

        PipelineResult {
            program: name.to_string(),
            stats,
            annotations: Vec::new(),
            findings,
            quarantined,
            health,
            error: None,
        }
    }

    /// Stages 3–5, shared by all detector front-ends: dynamic race
    /// verification on the primary workload, Algorithm 1 on each
    /// verified report, dynamic vulnerability verification over the
    /// candidate inputs. Each report is supervised: panics and aborted
    /// verifications quarantine the report instead of taking the run
    /// down.
    fn verify_and_analyze(
        &self,
        reports: &[RaceReport],
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
        stats: &mut PipelineStats,
        health: &mut PipelineHealth,
        quarantined: &mut Vec<Quarantined>,
    ) -> Vec<Finding> {
        let primary = workloads[0].clone();
        let tv = Instant::now();

        // Stage 3: dynamic race verification (primary workload).
        let t3 = Instant::now();
        let stage_start = Instant::now();
        let mut stage_expired = false;
        let mut processed = 0u64;
        let race_verifier = RaceVerifier::new(self.module, self.config.race_verify.clone());
        let mut verified: Vec<(RaceReport, RaceVerification)> = Vec::new();
        for report in reports {
            if let Some(d) = self.config.stage_deadline {
                if !stage_expired && processed > 0 && stage_start.elapsed() >= d {
                    stage_expired = true;
                    health.race_verify.deadline_hits += 1;
                }
            }
            if stage_expired {
                health.race_verify.quarantined += 1;
                quarantined.push(Quarantined {
                    race: report.clone(),
                    error: PipelineError::StageDeadline {
                        stage: Stage::RaceVerify,
                    },
                });
                continue;
            }
            processed += 1;
            match catch_unwind(AssertUnwindSafe(|| {
                race_verifier.verify(self.entry, &primary, report)
            })) {
                Ok(v) => {
                    health.race_verify.attempts += v.attempts;
                    health.race_verify.retries += v.attempts.saturating_sub(1);
                    health.race_verify.injected_faults += v.injected_faults;
                    match v.verdict {
                        VerifyOutcome::Confirmed => verified.push((report.clone(), v)),
                        VerifyOutcome::Unconfirmed => stats.verifier_eliminated += 1,
                        VerifyOutcome::Aborted { cause, attempts } => {
                            if cause == AbortCause::DeadlineExceeded {
                                health.race_verify.deadline_hits += 1;
                            }
                            health.race_verify.quarantined += 1;
                            quarantined.push(Quarantined {
                                race: report.clone(),
                                error: PipelineError::VerifierAborted {
                                    stage: Stage::RaceVerify,
                                    cause,
                                    attempts,
                                },
                            });
                        }
                    }
                }
                Err(payload) => {
                    health.race_verify.panics += 1;
                    health.race_verify.quarantined += 1;
                    quarantined.push(Quarantined {
                        race: report.clone(),
                        error: PipelineError::Panicked {
                            stage: Stage::RaceVerify,
                            message: panic_message(payload),
                        },
                    });
                }
            }
        }
        stats.remaining = verified.len();
        stats.race_verify_time += t3.elapsed();
        let mut findings = self.analyze_findings(verified, stats, health, quarantined);
        self.verify_vuln_sites(&mut findings, workloads, extra_inputs, stats, health, quarantined);
        stats.verify_time += tv.elapsed();
        findings
    }

    /// Stage 4: static vulnerability analysis on each verified report,
    /// supervised. An analyzer panic quarantines the report and
    /// rebuilds the analyzer (its memoization may be poisoned).
    ///
    /// Module-level state — the points-to solution, the refined call
    /// graph, and the summary cache — is built once here and shared by
    /// every per-report analyzer. When no per-stage deadline is
    /// configured the reports are independent, so they fan out across
    /// worker threads; each worker has its own analyzer but all share
    /// the one summary cache, so a callee summarized by one worker
    /// replays for free on the others. Results land in per-report
    /// slots, keeping finding order and every counter deterministic.
    fn analyze_findings(
        &self,
        verified: Vec<(RaceReport, RaceVerification)>,
        stats: &mut PipelineStats,
        health: &mut PipelineHealth,
        quarantined: &mut Vec<Quarantined>,
    ) -> Vec<Finding> {
        let stage_start = Instant::now();
        let vuln_cfg = &self.config.vuln;
        let tp = Instant::now();
        let points_to = vuln_cfg
            .points_to
            .then(|| Arc::new(PointsTo::new(self.module)));
        health.points_to_solve += tp.elapsed();
        let callgraph = vuln_cfg.summaries.then(|| {
            Arc::new(match &points_to {
                Some(p) => CallGraph::with_points_to(self.module, p),
                None => CallGraph::new(self.module),
            })
        });
        let cache = vuln_cfg.summaries.then(|| Arc::new(SummaryCache::new()));
        let make_analyzer = || {
            VulnAnalyzer::with_shared(
                self.module,
                vuln_cfg.clone(),
                points_to.clone(),
                callgraph.clone(),
                cache.clone(),
            )
        };

        let mut findings = Vec::new();
        let parallel = self.config.stage_deadline.is_none() && verified.len() >= 2;
        if parallel {
            let n = verified.len();
            let workers = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(n);
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<ReportAnalysis>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let verified_ref = &verified;
            let next_ref = &next;
            let slots_ref = &slots;
            let make_ref = &make_analyzer;
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(move || {
                        let mut analyzer = make_ref();
                        loop {
                            let i = next_ref.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (race, _) = &verified_ref[i];
                            let out = match race.read_access().map(|r| (r.site, r.stack.to_vec()))
                            {
                                Some((site, stack)) => {
                                    let ta = Instant::now();
                                    let analyzed = catch_unwind(AssertUnwindSafe(|| {
                                        analyzer.analyze(site, &stack)
                                    }));
                                    let elapsed = ta.elapsed();
                                    match analyzed {
                                        Ok((reports, work)) => ReportAnalysis::Analyzed {
                                            reports,
                                            work,
                                            elapsed,
                                        },
                                        Err(payload) => {
                                            // Internal caches may be
                                            // poisoned mid-walk.
                                            analyzer = make_ref();
                                            ReportAnalysis::Panicked(panic_message(payload))
                                        }
                                    }
                                }
                                None => ReportAnalysis::NoRead,
                            };
                            *slots_ref[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                        }
                    });
                }
            });
            for ((race, verification), slot) in verified.into_iter().zip(slots) {
                health.vuln_analyze.attempts += 1;
                let out = slot
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every slot is filled before the scope ends");
                match out {
                    ReportAnalysis::Analyzed {
                        reports,
                        work,
                        elapsed,
                    } => {
                        stats.analysis_time += elapsed;
                        stats.analysis_count += 1;
                        stats.analysis_work.insts_visited += work.insts_visited;
                        stats.analysis_work.funcs_entered += work.funcs_entered;
                        findings.push(Finding {
                            race,
                            verification,
                            vulns: reports,
                            vuln_verifications: Vec::new(),
                        });
                    }
                    ReportAnalysis::NoRead => findings.push(Finding {
                        race,
                        verification,
                        vulns: Vec::new(),
                        vuln_verifications: Vec::new(),
                    }),
                    ReportAnalysis::Panicked(message) => {
                        health.vuln_analyze.panics += 1;
                        health.vuln_analyze.quarantined += 1;
                        quarantined.push(Quarantined {
                            race,
                            error: PipelineError::Panicked {
                                stage: Stage::VulnAnalyze,
                                message,
                            },
                        });
                    }
                }
            }
        } else {
            let mut stage_expired = false;
            let mut analyzer = make_analyzer();
            for (race, verification) in verified {
                if let Some(d) = self.config.stage_deadline {
                    if !stage_expired && !findings.is_empty() && stage_start.elapsed() >= d {
                        stage_expired = true;
                        health.vuln_analyze.deadline_hits += 1;
                    }
                }
                if stage_expired {
                    health.vuln_analyze.quarantined += 1;
                    quarantined.push(Quarantined {
                        race,
                        error: PipelineError::StageDeadline {
                            stage: Stage::VulnAnalyze,
                        },
                    });
                    continue;
                }
                health.vuln_analyze.attempts += 1;
                let read_info = race
                    .read_access()
                    .map(|read| (read.site, read.stack.to_vec()));
                let vulns = match read_info {
                    Some((site, stack)) => {
                        let ta = Instant::now();
                        let analyzed =
                            catch_unwind(AssertUnwindSafe(|| analyzer.analyze(site, &stack)));
                        stats.analysis_time += ta.elapsed();
                        match analyzed {
                            Ok((reports, work)) => {
                                stats.analysis_count += 1;
                                stats.analysis_work.insts_visited += work.insts_visited;
                                stats.analysis_work.funcs_entered += work.funcs_entered;
                                reports
                            }
                            Err(payload) => {
                                health.vuln_analyze.panics += 1;
                                health.vuln_analyze.quarantined += 1;
                                quarantined.push(Quarantined {
                                    race,
                                    error: PipelineError::Panicked {
                                        stage: Stage::VulnAnalyze,
                                        message: panic_message(payload),
                                    },
                                });
                                analyzer = make_analyzer();
                                continue;
                            }
                        }
                    }
                    None => Vec::new(),
                };
                findings.push(Finding {
                    race,
                    verification,
                    vulns,
                    vuln_verifications: Vec::new(),
                });
            }
        }
        if let Some(c) = &cache {
            health.summary_cache_hits += c.hits();
            health.summary_cache_misses += c.misses();
        }
        stats.vulnerable = findings.iter().filter(|f| !f.vulns.is_empty()).count();
        findings
    }

    /// Stage 5: dynamic vulnerability verification over candidate
    /// inputs (workloads + suspected exploit inputs), supervised. A
    /// panicking or aborting verification is recorded as a synthesized
    /// aborted [`VulnVerification`] so `vuln_verifications` stays
    /// parallel to `vulns`, and the finding's race is quarantined.
    fn verify_vuln_sites(
        &self,
        findings: &mut [Finding],
        workloads: &[ProgramInput],
        extra_inputs: &[ProgramInput],
        stats: &mut PipelineStats,
        health: &mut PipelineHealth,
        quarantined: &mut Vec<Quarantined>,
    ) {
        let t5 = Instant::now();
        let stage_start = Instant::now();
        let mut stage_expired = false;
        let mut processed = 0u64;
        let vuln_verifier = VulnVerifier::new(self.module, self.config.vuln_verify.clone());
        let mut candidates: Vec<ProgramInput> = workloads.to_vec();
        candidates.extend_from_slice(extra_inputs);
        for f in findings.iter_mut() {
            for vr in &f.vulns {
                if let Some(d) = self.config.stage_deadline {
                    if !stage_expired && processed > 0 && stage_start.elapsed() >= d {
                        stage_expired = true;
                        health.vuln_verify.deadline_hits += 1;
                    }
                }
                if stage_expired {
                    health.vuln_verify.quarantined += 1;
                    quarantined.push(Quarantined {
                        race: f.race.clone(),
                        error: PipelineError::StageDeadline {
                            stage: Stage::VulnVerify,
                        },
                    });
                    f.vuln_verifications
                        .push(aborted_vuln_verification(AbortCause::DeadlineExceeded, 0));
                    continue;
                }
                processed += 1;
                match catch_unwind(AssertUnwindSafe(|| {
                    vuln_verifier.verify(self.entry, &candidates, vr)
                })) {
                    Ok(v) => {
                        health.vuln_verify.attempts += v.attempts;
                        health.vuln_verify.retries += v.attempts.saturating_sub(1);
                        health.vuln_verify.injected_faults += v.injected_faults;
                        if let VerifyOutcome::Aborted { cause, attempts } = v.verdict {
                            if cause == AbortCause::DeadlineExceeded {
                                health.vuln_verify.deadline_hits += 1;
                            }
                            health.vuln_verify.quarantined += 1;
                            quarantined.push(Quarantined {
                                race: f.race.clone(),
                                error: PipelineError::VerifierAborted {
                                    stage: Stage::VulnVerify,
                                    cause,
                                    attempts,
                                },
                            });
                        }
                        f.vuln_verifications.push(v);
                    }
                    Err(payload) => {
                        health.vuln_verify.panics += 1;
                        health.vuln_verify.quarantined += 1;
                        quarantined.push(Quarantined {
                            race: f.race.clone(),
                            error: PipelineError::Panicked {
                                stage: Stage::VulnVerify,
                                message: panic_message(payload),
                            },
                        });
                        f.vuln_verifications
                            .push(aborted_vuln_verification(AbortCause::Panicked, 0));
                    }
                }
            }
        }
        stats.vuln_verify_time += t5.elapsed();
    }
}

/// A recorded stage-3 verdict, ready to replay instead of re-running
/// the race verifier.
enum VerifyReplay {
    /// The verifier reached a verdict (confirmed or eliminated).
    Verdict {
        confirmed: bool,
        attempts: u64,
        injected_faults: u64,
    },
    /// The unit was quarantined.
    Quarantined {
        error: PipelineError,
        attempts: u64,
        injected_faults: u64,
    },
}

/// A recorded stage-4/5 unit, ready to replay instead of re-running
/// the analyzer and vulnerability verifier.
enum AnalyzeReplay {
    /// Analysis completed; each hint carries its stage-5 verification.
    Finding(Vec<RecordedVuln>),
    /// The unit was quarantined (stage-4 panic).
    Quarantined { error: PipelineError },
}

/// Per-unit lookup of everything the journal already recorded for one
/// program. Records for equal unit keys are consumed in journal order,
/// which matches processing order because reports are handled in
/// deterministic detector order on every run.
struct ResumeIndex {
    verify: HashMap<String, VecDeque<VerifyReplay>>,
    analyze: HashMap<String, VecDeque<AnalyzeReplay>>,
}

impl ResumeIndex {
    fn for_program(records: &[JournalRecord], program: &str) -> Self {
        let mut verify: HashMap<String, VecDeque<VerifyReplay>> = HashMap::new();
        let mut analyze: HashMap<String, VecDeque<AnalyzeReplay>> = HashMap::new();
        for rec in records {
            if rec.program() != Some(program) {
                continue;
            }
            match rec {
                JournalRecord::ReportVerified {
                    key,
                    confirmed,
                    attempts,
                    injected_faults,
                    ..
                } => {
                    verify
                        .entry(key.clone())
                        .or_default()
                        .push_back(VerifyReplay::Verdict {
                            confirmed: *confirmed,
                            attempts: *attempts,
                            injected_faults: *injected_faults,
                        });
                }
                JournalRecord::FindingAnalyzed { key, vulns, .. } => {
                    analyze
                        .entry(key.clone())
                        .or_default()
                        .push_back(AnalyzeReplay::Finding(vulns.clone()));
                }
                JournalRecord::Quarantined {
                    key: Some(key),
                    error,
                    attempts,
                    injected_faults,
                    ..
                } => match error {
                    PipelineError::Panicked {
                        stage: Stage::VulnAnalyze,
                        ..
                    } => {
                        analyze
                            .entry(key.clone())
                            .or_default()
                            .push_back(AnalyzeReplay::Quarantined {
                                error: error.clone(),
                            });
                    }
                    _ => {
                        verify
                            .entry(key.clone())
                            .or_default()
                            .push_back(VerifyReplay::Quarantined {
                                error: error.clone(),
                                attempts: *attempts,
                                injected_faults: *injected_faults,
                            });
                    }
                },
                _ => {}
            }
        }
        ResumeIndex { verify, analyze }
    }

    fn next_verify(&mut self, key: &str) -> Option<VerifyReplay> {
        self.verify.get_mut(key)?.pop_front()
    }

    fn next_analyze(&mut self, key: &str) -> Option<AnalyzeReplay> {
        self.analyze.get_mut(key)?.pop_front()
    }

    fn has_analyze(&self, key: &str) -> bool {
        self.analyze.get(key).is_some_and(|q| !q.is_empty())
    }
}

/// Sanitizes a program name into a spill-segment filename prefix so two
/// programs sharing one spill directory can never collide (and a name
/// with path separators cannot escape it).
fn spill_tag(name: &str) -> String {
    let mut tag: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if tag.is_empty() {
        tag.push_str("unit");
    }
    tag
}

/// Folds one exploration sweep's streaming/memory-governance counters
/// into the pipeline health report.
fn absorb_stream_health(health: &mut PipelineHealth, sweep: &owl_race::ExploreResult) {
    health.trace_spilled_bytes += sweep.trace_spilled_bytes;
    health.trace_spill_segments += sweep.trace_spill_segments;
    health.mem_pressure_events += sweep.mem_pressure_events;
    health.shadow_cells_gced += sweep.shadow_cells_gced;
    health.units_aborted_mem_budget += sweep.units_aborted_mem_budget;
    health.predict_candidates += sweep.predict_candidates;
    health.predict_witnessed += sweep.predict_witnessed;
    health.predict_witness_rejected += sweep.predict_witness_rejected;
    health.predict_reversal_races += sweep.predict_reversal_races;
    health.units_forked += sweep.units_forked;
    health.prefix_steps_saved += sweep.prefix_steps_saved;
    health.schedules_deduped += sweep.schedules_deduped;
    health.snapshot_bytes += sweep.snapshot_bytes;
}

/// Folds a quarantine's secondary effects (panic/deadline counters plus
/// the quarantine count itself) into a stage's health — identical for
/// live and replayed units, which is what keeps resumed health totals
/// equal to an uninterrupted run's.
fn apply_quarantine_health(stage: &mut StageHealth, error: &PipelineError) {
    stage.quarantined += 1;
    match error {
        PipelineError::Panicked { .. } => stage.panics += 1,
        PipelineError::VerifierAborted {
            cause: AbortCause::DeadlineExceeded,
            ..
        } => stage.deadline_hits += 1,
        _ => {}
    }
}

/// A stage-3 verification reconstructed from the journal. Dynamic
/// evidence (hints, execution outcome) is not journaled, so only the
/// deterministic slice survives a resume.
fn replayed_race_verification(attempts: u64, injected_faults: u64) -> RaceVerification {
    RaceVerification {
        confirmed: true,
        verdict: VerifyOutcome::Confirmed,
        attempts,
        hints: None,
        outcome: None,
        injected_faults,
    }
}

/// A stage-5 verification reconstructed from the journal.
fn replayed_vuln_verification(rv: &RecordedVuln) -> VulnVerification {
    VulnVerification {
        reached: rv.reached,
        verdict: rv.verdict,
        attempts: rv.attempts,
        triggering_input: None,
        branches_hit: Vec::new(),
        diverged_branches: Vec::new(),
        outcome: None,
        triggered_violation: None,
        injected_faults: rv.injected_faults,
    }
}

/// Outcome of analyzing one verified report in stage 4 (the unit a
/// parallel worker writes into its result slot).
enum ReportAnalysis {
    /// Algorithm 1 completed.
    Analyzed {
        reports: Vec<VulnReport>,
        work: VulnStats,
        elapsed: Duration,
    },
    /// The race report carries no read access to start from.
    NoRead,
    /// The analyzer panicked; the message is the rendered payload.
    Panicked(String),
}

/// A placeholder verification for a vuln the supervisor could not
/// verify (stage deadline or panic); keeps `vuln_verifications`
/// parallel to `vulns`.
fn aborted_vuln_verification(cause: AbortCause, attempts: u64) -> VulnVerification {
    VulnVerification {
        reached: false,
        verdict: VerifyOutcome::Aborted { cause, attempts },
        attempts,
        triggering_input: None,
        branches_hit: Vec::new(),
        diverged_branches: Vec::new(),
        outcome: None,
        triggered_violation: None,
        injected_faults: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// A minimal vulnerable program: racy flag guards an exec, plus one
    /// adhoc sync and one benign racy counter.
    fn tiny_program() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("tiny");
        let flag = mb.global("flag", 1, Type::I64);
        let counter = mb.global("counter", 1, Type::I64);
        let aflag = mb.global("aflag", 1, Type::I64);
        let setter = mb.declare_func("setter", 1);
        let handler = mb.declare_func("handler", 1);
        let spinner = mb.declare_func("spinner", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(setter);
            let fa = b.global_addr(flag);
            b.store(fa, 1);
            let ca = b.global_addr(counter);
            let v = b.load(ca, Type::I64);
            let v2 = b.add(v, 1);
            b.store(ca, v2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(handler);
            let fa = b.global_addr(flag);
            let v = b.load(fa, Type::I64);
            let fire = b.block();
            let out = b.block();
            b.br(v, fire, out);
            b.switch_to(fire);
            b.exec(42);
            b.jmp(out);
            b.switch_to(out);
            let ca = b.global_addr(counter);
            let c = b.load(ca, Type::I64);
            let c2 = b.add(c, 1);
            b.store(ca, c2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(spinner);
            let aa = b.global_addr(aflag);
            let head = b.block();
            let exit = b.block();
            b.jmp(head);
            b.switch_to(head);
            let v = b.load(aa, Type::I64);
            b.br(v, exit, head);
            b.switch_to(exit);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(setter, 0);
            let t2 = b.thread_create(handler, 0);
            let t3 = b.thread_create(spinner, 0);
            let aa = b.global_addr(aflag);
            b.store(aa, 1);
            b.thread_join(t1);
            b.thread_join(t2);
            b.thread_join(t3);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m
            .func_by_name("main")
            .expect("tiny_program declares a main function");
        (m, main_id)
    }

    #[test]
    fn pipeline_finds_the_vulnerable_race() {
        let (m, main) = tiny_program();
        let owl = Owl::new(&m, main, OwlConfig::quick());
        let result = owl.run("tiny", &[ProgramInput::empty()], &[]);
        assert!(result.stats.raw_reports >= 2, "{:?}", result.stats);
        assert_eq!(result.stats.adhoc_syncs, 1, "the spinner is adhoc");
        assert!(
            result.stats.post_annotation_reports < result.stats.raw_reports
                || result.stats.adhoc_syncs == 0,
            "annotation should reduce reports"
        );
        let flag_finding = result
            .finding_on("flag")
            .expect("flag race must survive the pipeline");
        assert!(!flag_finding.vulns.is_empty(), "exec hint expected");
        assert!(flag_finding.any_site_reached(), "exec site reachable");
        // The benign counter race survives verification but carries no
        // vulnerability.
        if let Some(c) = result.finding_on("counter") {
            assert!(c.vulns.is_empty(), "counter is benign: {:?}", c.vulns);
        }
        // A clean run quarantines nothing and catches no panics.
        assert!(result.quarantined.is_empty(), "{:?}", result.quarantined);
        assert_eq!(result.health.total_panics(), 0);
        assert_eq!(result.health.total_injected_faults(), 0);
        assert!(result.error.is_none());
        assert!(result.health.detect.attempts > 0);
        assert!(result.health.race_verify.attempts > 0);
    }

    #[test]
    fn stats_ratios_behave() {
        let mut s = PipelineStats::default();
        assert_eq!(s.reduction_ratio(), 0.0);
        s.raw_reports = 100;
        s.remaining = 6;
        assert!((s.reduction_ratio() - 0.94).abs() < 1e-9);
        assert_eq!(s.avg_analysis_cost(), Duration::ZERO);
    }

    #[test]
    fn external_entry_is_rejected_up_front() {
        let mut mb = ModuleBuilder::new("bad");
        let ext = mb.declare_external("ext_main", 0);
        let m = mb.finish();
        let owl = Owl::with_defaults(&m, ext);
        let result = owl.run("bad", &[], &[]);
        assert!(
            matches!(result.error, Some(PipelineError::InvalidEntry { .. })),
            "{:?}",
            result.error
        );
        assert!(result.findings.is_empty());
        let atom = owl.run_atomicity("bad", &[], &[]);
        assert!(matches!(
            atom.error,
            Some(PipelineError::InvalidEntry { .. })
        ));
    }

    #[test]
    fn parameterized_entry_is_rejected_up_front() {
        let mut mb = ModuleBuilder::new("bad2");
        let f = mb.declare_func("entry", 2);
        {
            let mut b = mb.build_func(f);
            b.ret(None);
        }
        let m = mb.finish();
        let owl = Owl::with_defaults(&m, f);
        let result = owl.run("bad2", &[], &[]);
        let err = result.error.expect("entry with params must be rejected");
        assert!(err.to_string().contains("parameter"), "{err}");
    }

    #[test]
    fn pipeline_error_displays_name_stage_and_cause() {
        let e = PipelineError::VerifierAborted {
            stage: Stage::RaceVerify,
            cause: AbortCause::DeadlineExceeded,
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("race-verify"), "{s}");
        assert!(s.contains("deadline"), "{s}");
        let p = PipelineError::Panicked {
            stage: Stage::VulnAnalyze,
            message: "boom".into(),
        };
        assert!(p.to_string().contains("vuln-analyze"));
        assert!(p.to_string().contains("boom"));
    }
}
