//! Runtime path auditing — the paper's first envisioned application
//! (§7.2): "we can leverage anomaly detection and intrusion detection
//! tools to audit only the vulnerable program paths identified by OWL,
//! then these runtime detection tools can greatly reduce the amount of
//! program paths that need to be audited and improve performance."
//!
//! The [`PathAuditor`] takes the pipeline's vulnerable input hints and
//! watches exactly those sites and branches at runtime. Alerts come in
//! two strengths: the vulnerable path merely *executing*
//! (informational — benign traffic crosses vulnerable sites too), and
//! an actual violation or security event landing *at a hinted site*
//! (the attack firing).

use crate::pipeline::PipelineResult;
use owl_ir::{FuncId, InstRef, Module};
use owl_static::VulnReport;
use owl_vm::{
    BreakDecision, BreakWorld, Breakpoint, Controller, ExecOutcome, ProgramInput, Scheduler,
    Suspension, Violation, Vm,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What an audit alert reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AlertKind {
    /// A hinted vulnerable site executed (informational).
    PathExecuted,
    /// A runtime violation occurred at a hinted site — the attack
    /// fired.
    ViolationAtSite(Violation),
    /// A privilege/file/exec action occurred at a hinted site.
    SecurityEventAtSite,
}

/// One audit alert.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditAlert {
    /// The hinted site involved.
    pub site: InstRef,
    /// Alert strength.
    pub kind: AlertKind,
}

/// Result of auditing one execution.
#[derive(Clone, Debug)]
pub struct AuditOutcome {
    /// Alerts raised, strongest first.
    pub alerts: Vec<AuditAlert>,
    /// The audited execution's outcome.
    pub outcome: ExecOutcome,
}

impl AuditOutcome {
    /// Whether any attack-strength alert fired.
    pub fn attack_detected(&self) -> bool {
        self.alerts.iter().any(|a| {
            matches!(
                a.kind,
                AlertKind::ViolationAtSite(_) | AlertKind::SecurityEventAtSite
            )
        })
    }
}

/// Audits executions against OWL's vulnerable input hints.
#[derive(Debug)]
pub struct PathAuditor<'m> {
    module: &'m Module,
    entry: FuncId,
    sites: BTreeSet<InstRef>,
    watched: BTreeSet<InstRef>,
    run_config: owl_vm::RunConfig,
}

struct AuditController {
    hit: BTreeSet<InstRef>,
}

impl Controller for AuditController {
    fn on_break(&mut self, _world: &mut BreakWorld<'_>, hit: &Suspension) -> BreakDecision {
        self.hit.insert(hit.site);
        BreakDecision::Continue
    }
}

impl<'m> PathAuditor<'m> {
    /// Builds an auditor from explicit hints.
    pub fn new(module: &'m Module, entry: FuncId, hints: &[VulnReport]) -> Self {
        let mut sites = BTreeSet::new();
        let mut watched = BTreeSet::new();
        for h in hints {
            sites.insert(h.site);
            watched.insert(h.site);
            watched.extend(h.branches.iter().copied());
            watched.extend(h.path_branches.iter().copied());
        }
        PathAuditor {
            module,
            entry,
            sites,
            watched,
            run_config: owl_vm::RunConfig::default(),
        }
    }

    /// Replaces the VM configuration audited executions run under
    /// (step limits, fault plan). Lets chaos runs audit with the same
    /// [`owl_vm::FaultPlan`] as the rest of the pipeline.
    pub fn with_run_config(mut self, run_config: owl_vm::RunConfig) -> Self {
        self.run_config = run_config;
        self
    }

    /// Builds an auditor from a pipeline result's findings.
    pub fn from_result(module: &'m Module, entry: FuncId, result: &PipelineResult) -> Self {
        let hints: Vec<VulnReport> = result
            .findings
            .iter()
            .flat_map(|f| f.vulns.iter().cloned())
            .collect();
        Self::new(module, entry, &hints)
    }

    /// The fraction of the program's instructions the auditor watches —
    /// the §7.2 "reduce the amount of program paths that need to be
    /// audited" measurement.
    pub fn audit_scope(&self) -> f64 {
        let total = self.module.total_insts().max(1);
        self.watched.len() as f64 / total as f64
    }

    /// Number of distinct instructions watched.
    pub fn watched_count(&self) -> usize {
        self.watched.len()
    }

    /// Audits one execution under `sched`.
    pub fn audit(&self, input: &ProgramInput, sched: &mut dyn Scheduler) -> AuditOutcome {
        let mut vm = Vm::new(
            self.module,
            self.entry,
            input.clone(),
            self.run_config.clone(),
        );
        for s in &self.watched {
            vm.add_breakpoint(Breakpoint::at(*s));
        }
        let mut controller = AuditController {
            hit: BTreeSet::new(),
        };
        let outcome = vm.run_controlled(sched, &mut owl_vm::NullSink, &mut controller);

        let mut alerts = Vec::new();
        for site in &self.sites {
            // Strongest evidence first: violations at the site.
            for v in &outcome.violations {
                if v.site == *site {
                    alerts.push(AuditAlert {
                        site: *site,
                        kind: AlertKind::ViolationAtSite(v.violation),
                    });
                }
            }
            for s in &outcome.security {
                if s.site == *site {
                    alerts.push(AuditAlert {
                        site: *site,
                        kind: AlertKind::SecurityEventAtSite,
                    });
                }
            }
            if controller.hit.contains(site) && !alerts.iter().any(|a| a.site == *site) {
                alerts.push(AuditAlert {
                    site: *site,
                    kind: AlertKind::PathExecuted,
                });
            }
        }
        AuditOutcome { alerts, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Owl, OwlConfig};
    use owl_vm::RandomScheduler;

    #[test]
    fn libsafe_auditor_catches_the_attack_cheaply() {
        let p = owl_corpus::program("Libsafe").expect("Libsafe is in the corpus");
        let owl = Owl::new(&p.module, p.entry, OwlConfig::quick());
        let result = owl.run("Libsafe", &p.workloads, &p.exploit_inputs);
        let auditor = PathAuditor::from_result(&p.module, p.entry, &result);
        assert!(
            auditor.audit_scope() < 0.25,
            "auditing must cover a small slice of the program: {:.1}%",
            100.0 * auditor.audit_scope()
        );
        // Exploit traffic: the overflow fires at the hinted memcopy.
        let mut attack_seen = false;
        for seed in 0..20 {
            let mut sched = RandomScheduler::new(seed);
            let a = auditor.audit(&p.exploit_inputs[0], &mut sched);
            if a.attack_detected() {
                attack_seen = true;
                assert!(a.alerts.iter().any(|al| matches!(
                    al.kind,
                    AlertKind::ViolationAtSite(Violation::BufferOverflow { .. })
                )));
                break;
            }
        }
        assert!(attack_seen, "the overflow must raise an attack alert");
        // Benign traffic: at most informational alerts.
        let mut sched = RandomScheduler::new(999);
        let benign = auditor.audit(p.primary_workload(), &mut sched);
        assert!(
            !benign.attack_detected(),
            "benign copies must not raise attack alerts: {:?}",
            benign.alerts
        );
    }
}
