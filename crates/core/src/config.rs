//! Pipeline configuration.

use owl_race::{ExploreStrategy, ExplorerConfig};
use owl_static::VulnConfig;
use owl_verify::{RaceVerifyConfig, VulnVerifyConfig};
use owl_vm::{FaultPlan, RunConfig};
use std::time::Duration;

/// Configuration for the whole OWL pipeline (Figure 3).
#[derive(Clone, Debug)]
pub struct OwlConfig {
    /// Detection-stage exploration (stage 1 and the post-annotation
    /// re-run of stage 2).
    pub detect: ExplorerConfig,
    /// Dynamic race verification (stage 3).
    pub race_verify: RaceVerifyConfig,
    /// Static vulnerability analysis (stage 4).
    pub vuln: VulnConfig,
    /// Dynamic vulnerability verification (stage 5).
    pub vuln_verify: VulnVerifyConfig,
    /// Wall-clock deadline the pipeline supervisor enforces per stage;
    /// reports left unprocessed when it expires are quarantined with
    /// [`crate::PipelineError::StageDeadline`].
    pub stage_deadline: Option<Duration>,
    /// Run the static check-elision pre-pass before detection and let
    /// the epoch detector skip shadow-memory work at sites it proves
    /// race-free. Purely an optimization — report streams are
    /// byte-identical with it on or off (the reference vector-clock
    /// backend always ignores the stamp). `--no-elide` clears it.
    pub elide: bool,
}

impl Default for OwlConfig {
    fn default() -> Self {
        OwlConfig {
            detect: ExplorerConfig {
                runs_per_input: 12,
                base_seed: 1,
                strategy: ExploreStrategy::Pct { depth: 3 },
                expected_steps: 4_000,
                run_config: RunConfig::default(),
                annotations: Vec::new(),
                workers: 1,
                hb_backend: owl_race::HbBackend::default(),
                elided_sites: None,
                stream: owl_race::StreamConfig::default(),
                fork: true,
            },
            race_verify: RaceVerifyConfig {
                max_schedules: 8,
                ..RaceVerifyConfig::default()
            },
            vuln: VulnConfig::default(),
            vuln_verify: VulnVerifyConfig {
                schedules_per_input: 6,
                ..VulnVerifyConfig::default()
            },
            stage_deadline: None,
            elide: true,
        }
    }
}

impl OwlConfig {
    /// A faster configuration for tests and smoke runs.
    pub fn quick() -> Self {
        let mut c = OwlConfig::default();
        c.detect.runs_per_input = 6;
        c.race_verify.max_schedules = 4;
        c.vuln_verify.schedules_per_input = 4;
        c
    }

    /// Installs the same fault-injection plan in every stage's VM
    /// config (detection, race verification, vulnerability
    /// verification).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.detect.run_config.fault = plan.clone();
        self.race_verify.run_config.fault = plan.clone();
        self.vuln_verify.run_config.fault = plan;
        self
    }

    /// Sets the supervisor's per-stage deadline, and gives the dynamic
    /// verifiers the same wall-clock budget per report (so a slow
    /// attempt loop bails out rather than blowing the whole stage).
    pub fn with_stage_deadline(mut self, deadline: Duration) -> Self {
        self.stage_deadline = Some(deadline);
        self.race_verify.deadline = Some(deadline);
        self.vuln_verify.deadline = Some(deadline);
        self
    }

    /// Caps both dynamic verifiers' attempt budgets: race verification
    /// schedules and vulnerability-verification schedules per input.
    pub fn with_max_verify_attempts(mut self, attempts: u64) -> Self {
        self.race_verify.max_schedules = attempts;
        self.vuln_verify.schedules_per_input = attempts;
        self
    }

    /// The fault plan shared by the stages (they are set together by
    /// [`OwlConfig::with_fault_plan`]; detection's copy is returned).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.detect.run_config.fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_reaches_every_stage() {
        let plan = FaultPlan::uniform(9, 0.01);
        let c = OwlConfig::quick().with_fault_plan(plan.clone());
        assert_eq!(c.detect.run_config.fault, plan);
        assert_eq!(c.race_verify.run_config.fault, plan);
        assert_eq!(c.vuln_verify.run_config.fault, plan);
        assert_eq!(c.fault_plan(), &plan);
    }

    #[test]
    fn knob_helpers_apply() {
        let c = OwlConfig::default()
            .with_stage_deadline(Duration::from_millis(250))
            .with_max_verify_attempts(3);
        assert_eq!(c.stage_deadline, Some(Duration::from_millis(250)));
        assert_eq!(c.race_verify.deadline, Some(Duration::from_millis(250)));
        assert_eq!(c.race_verify.max_schedules, 3);
        assert_eq!(c.vuln_verify.schedules_per_input, 3);
    }
}
