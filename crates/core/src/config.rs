//! Pipeline configuration.

use owl_race::{ExploreStrategy, ExplorerConfig};
use owl_static::VulnConfig;
use owl_verify::{RaceVerifyConfig, VulnVerifyConfig};
use owl_vm::RunConfig;

/// Configuration for the whole OWL pipeline (Figure 3).
#[derive(Clone, Debug)]
pub struct OwlConfig {
    /// Detection-stage exploration (stage 1 and the post-annotation
    /// re-run of stage 2).
    pub detect: ExplorerConfig,
    /// Dynamic race verification (stage 3).
    pub race_verify: RaceVerifyConfig,
    /// Static vulnerability analysis (stage 4).
    pub vuln: VulnConfig,
    /// Dynamic vulnerability verification (stage 5).
    pub vuln_verify: VulnVerifyConfig,
}

impl Default for OwlConfig {
    fn default() -> Self {
        OwlConfig {
            detect: ExplorerConfig {
                runs_per_input: 12,
                base_seed: 1,
                strategy: ExploreStrategy::Pct { depth: 3 },
                expected_steps: 4_000,
                run_config: RunConfig::default(),
                annotations: Vec::new(),
            },
            race_verify: RaceVerifyConfig {
                max_schedules: 8,
                ..RaceVerifyConfig::default()
            },
            vuln: VulnConfig::default(),
            vuln_verify: VulnVerifyConfig {
                schedules_per_input: 6,
                ..VulnVerifyConfig::default()
            },
        }
    }
}

impl OwlConfig {
    /// A faster configuration for tests and smoke runs.
    pub fn quick() -> Self {
        let mut c = OwlConfig::default();
        c.detect.runs_per_input = 6;
        c.race_verify.max_schedules = 4;
        c.vuln_verify.schedules_per_input = 4;
        c
    }
}
