//! Campaign observability: per-stage wall-time histograms, counters,
//! and span records.
//!
//! The deterministic campaign summary deliberately contains no
//! wall-clock data (it must be byte-identical across resumes and
//! worker counts), so performance visibility lives here instead: a
//! [`MetricsRecorder`] is shared by every campaign worker and collects
//!
//! * **spans** — one [`SpanRecord`] per completed unit of work
//!   (per-program pipeline stages, whole program attempts, queue
//!   waits), emitted as JSONL via [`MetricsRecorder::spans_jsonl`];
//! * **histograms** — log₂-bucketed wall-time distributions per stage
//!   ([`Histogram`]), cheap enough to record from every worker;
//! * **counters** — monotonic totals (retries, re-enqueues, cache hits,
//!   journal appends).
//!
//! [`MetricsRecorder::summary`] renders everything as one
//! machine-readable JSON document — the shape CI uploads as a
//! `BENCH_*.json` artifact — and [`MetricsRecorder::write_files`]
//! persists both the span stream and the summary next to a campaign's
//! journal.
//!
//! All methods take `&self` and serialize internally, so one recorder
//! can be handed to any number of worker threads.

use crate::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Number of log₂ buckets a [`Histogram`] keeps. Bucket 0 holds
/// sub-microsecond observations; bucket *i* holds durations in
/// `[2^(i-1), 2^i)` microseconds, so the top bucket covers ~2^39 µs
/// (≈ 6 days) and up.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-size log₂ wall-time histogram (microsecond resolution).
///
/// Recording is O(1) and allocation-free, so workers can observe every
/// unit without contending on anything beyond the recorder's one lock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_us: u128,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound (µs) of a bucket, for quantile estimates.
fn bucket_upper_us(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.total_us += us as u128;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total_us / self.count as u128) as u64
        }
    }

    /// Largest observation in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Estimated quantile (`q` in `[0, 1]`) in microseconds: the upper
    /// bound of the first bucket whose cumulative count covers `q`,
    /// clamped by the true maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_upper_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// JSON form: counts, mean, p50/p90/p99, max, and the bucket
    /// counts (trailing zero buckets trimmed).
    pub fn to_json(&self) -> Json {
        let last = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        Json::obj([
            ("count", Json::UInt(self.count)),
            (
                "total_us",
                Json::UInt(self.total_us.min(u64::MAX as u128) as u64),
            ),
            ("mean_us", Json::UInt(self.mean_us())),
            ("p50_us", Json::UInt(self.quantile_us(0.50))),
            ("p90_us", Json::UInt(self.quantile_us(0.90))),
            ("p99_us", Json::UInt(self.quantile_us(0.99))),
            ("max_us", Json::UInt(self.max_us)),
            (
                "buckets",
                Json::Arr(self.buckets[..last].iter().map(|&n| Json::UInt(n)).collect()),
            ),
        ])
    }
}

/// One completed unit of timed work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// What was timed (`program`, `detect`, `race-verify`,
    /// `vuln-analyze`, `vuln-verify`, `queue-wait`).
    pub name: String,
    /// The corpus program the work belonged to.
    pub program: String,
    /// Worker thread that performed it.
    pub worker: usize,
    /// Campaign attempt the work belonged to (1 = first try).
    pub attempt: u64,
    /// Start offset from the recorder's origin, microseconds.
    pub start_us: u64,
    /// Wall-time spent, microseconds.
    pub duration_us: u64,
}

impl SpanRecord {
    /// One JSONL object for this span.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("span", Json::str(self.name.clone())),
            ("program", Json::str(self.program.clone())),
            ("worker", Json::UInt(self.worker as u64)),
            ("attempt", Json::UInt(self.attempt)),
            ("start_us", Json::UInt(self.start_us)),
            ("dur_us", Json::UInt(self.duration_us)),
        ])
    }
}

/// Last-written value and high-water mark of a gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeValue {
    /// Most recently recorded value.
    pub last: u64,
    /// Largest value ever recorded.
    pub peak: u64,
}

#[derive(Debug, Default)]
struct MetricsInner {
    spans: Vec<SpanRecord>,
    stages: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeValue>,
}

/// Thread-safe collector of spans, per-stage histograms, and counters
/// for one campaign run.
#[derive(Debug)]
pub struct MetricsRecorder {
    origin: Instant,
    inner: Mutex<MetricsInner>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// A fresh recorder; its creation instant is the origin every span
    /// offset is measured from.
    pub fn new() -> Self {
        MetricsRecorder {
            origin: Instant::now(),
            inner: Mutex::new(MetricsInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wall-time since the recorder was created.
    pub fn elapsed(&self) -> Duration {
        self.origin.elapsed()
    }

    /// Records one span: appended to the span stream *and* folded into
    /// the named stage histogram.
    pub fn span(
        &self,
        name: &str,
        program: &str,
        worker: usize,
        attempt: u64,
        start: Instant,
        duration: Duration,
    ) {
        let start_us = start
            .saturating_duration_since(self.origin)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let mut inner = self.lock();
        inner
            .stages
            .entry(name.to_string())
            .or_default()
            .record(duration);
        inner.spans.push(SpanRecord {
            name: name.to_string(),
            program: program.to_string(),
            worker,
            attempt,
            start_us,
            duration_us: duration.as_micros().min(u64::MAX as u128) as u64,
        });
    }

    /// Adds `n` to a named monotonic counter.
    pub fn counter(&self, name: &str, n: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Snapshot of every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Snapshot of a named counter (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a named gauge to `value`, tracking its high-water mark.
    /// Gauges model instantaneous levels (queue depth, in-flight
    /// bytes) that counters cannot: the daemon's watchdog samples them
    /// periodically and the summary reports last + peak.
    pub fn gauge(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        let g = inner.gauges.entry(name.to_string()).or_default();
        g.last = value;
        g.peak = g.peak.max(value);
    }

    /// Snapshot of a named gauge (zeros when never touched).
    pub fn gauge_value(&self, name: &str) -> GaugeValue {
        self.lock().gauges.get(name).copied().unwrap_or_default()
    }

    /// The span stream as JSONL — one canonical JSON object per line.
    pub fn spans_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for span in &inner.spans {
            out.push_str(&span.to_json().to_json_string());
            out.push('\n');
        }
        out
    }

    /// The machine-readable perf summary (the `BENCH_*.json` shape):
    /// worker count, wall time, per-stage histogram digests, every
    /// counter, and every gauge (last + peak).
    pub fn summary_named(&self, bench: &str, workers: usize, programs: usize) -> Json {
        let inner = self.lock();
        let stages = Json::obj_owned(
            inner
                .stages
                .iter()
                .map(|(name, h)| (name.clone(), h.to_json())),
        );
        let counters = Json::obj_owned(
            inner
                .counters
                .iter()
                .map(|(name, &n)| (name.clone(), Json::UInt(n))),
        );
        let gauges = Json::obj_owned(inner.gauges.iter().map(|(name, g)| {
            (
                name.clone(),
                Json::obj([
                    ("last", Json::UInt(g.last)),
                    ("peak", Json::UInt(g.peak)),
                ]),
            )
        }));
        Json::obj([
            ("bench", Json::str(bench.to_string())),
            ("workers", Json::UInt(workers as u64)),
            ("programs", Json::UInt(programs as u64)),
            (
                "wall_us",
                Json::UInt(self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64),
            ),
            ("spans", Json::UInt(inner.spans.len() as u64)),
            ("stages", stages),
            ("counters", counters),
            ("gauges", gauges),
        ])
    }

    /// [`MetricsRecorder::summary_named`] for the campaign runner.
    pub fn summary(&self, workers: usize, programs: usize) -> Json {
        self.summary_named("campaign", workers, programs)
    }

    /// Writes `spans.jsonl` and `BENCH_<bench>.json` into `dir`
    /// (created if absent); returns both paths.
    pub fn write_files_named(
        &self,
        dir: &Path,
        bench: &str,
        workers: usize,
        programs: usize,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let spans_path = dir.join("spans.jsonl");
        std::fs::write(&spans_path, self.spans_jsonl())?;
        let summary_path = dir.join(format!("BENCH_{bench}.json"));
        let mut doc = self.summary_named(bench, workers, programs).to_json_string();
        doc.push('\n');
        std::fs::write(&summary_path, doc)?;
        Ok((spans_path, summary_path))
    }

    /// Writes `spans.jsonl` and `BENCH_campaign.json` into `dir`
    /// (created if absent); returns both paths.
    pub fn write_files(
        &self,
        dir: &Path,
        workers: usize,
        programs: usize,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        self.write_files_named(dir, "campaign", workers, programs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_mean_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for us in [1u64, 2, 4, 100, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 100_000);
        assert!(h.mean_us() >= (1 + 2 + 4 + 100 + 1000 + 100_000) / 6 - 1);
        assert!(h.quantile_us(0.5) <= h.quantile_us(0.9));
        assert!(h.quantile_us(1.0) <= h.max_us());
        let js = h.to_json();
        assert_eq!(js.get("count").and_then(|j| j.as_u64()), Some(6));
        assert!(js.get("buckets").and_then(|j| j.as_arr()).is_some());
    }

    #[test]
    fn recorder_collects_spans_counters_and_summary() {
        let rec = MetricsRecorder::new();
        let t = Instant::now();
        rec.span("detect", "Libsafe", 0, 1, t, Duration::from_millis(3));
        rec.span("detect", "SSDB", 1, 1, t, Duration::from_millis(5));
        rec.counter("campaign_requeues", 2);
        rec.counter("campaign_requeues", 1);

        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].program, "Libsafe");
        assert_eq!(rec.counter_value("campaign_requeues"), 3);
        assert_eq!(rec.counter_value("never_touched"), 0);

        // Every JSONL line parses back through the strict parser.
        let jsonl = rec.spans_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let v = crate::json::parse(line).expect("valid span JSON");
            assert!(v.get("span").is_some(), "{line}");
            assert!(v.get("dur_us").and_then(|j| j.as_u64()).is_some());
        }

        let summary = rec.summary(4, 2);
        assert_eq!(summary.get("workers").and_then(|j| j.as_u64()), Some(4));
        let stages = summary.get("stages").expect("stages object");
        let detect = stages.get("detect").expect("detect histogram");
        assert_eq!(detect.get("count").and_then(|j| j.as_u64()), Some(2));
        let counters = summary.get("counters").expect("counters object");
        assert_eq!(
            counters.get("campaign_requeues").and_then(|j| j.as_u64()),
            Some(3)
        );
    }

    #[test]
    fn gauges_track_last_and_peak() {
        let rec = MetricsRecorder::new();
        assert_eq!(rec.gauge_value("queue_depth"), GaugeValue::default());
        rec.gauge("queue_depth", 3);
        rec.gauge("queue_depth", 7);
        rec.gauge("queue_depth", 2);
        let g = rec.gauge_value("queue_depth");
        assert_eq!(g.last, 2);
        assert_eq!(g.peak, 7);
        let summary = rec.summary_named("serve", 2, 1);
        assert_eq!(summary.get("bench").and_then(|j| j.as_str()), Some("serve"));
        let gauges = summary.get("gauges").expect("gauges object");
        let qd = gauges.get("queue_depth").expect("queue_depth gauge");
        assert_eq!(qd.get("peak").and_then(|j| j.as_u64()), Some(7));
    }

    #[test]
    fn write_files_emits_jsonl_and_bench_summary() {
        let rec = MetricsRecorder::new();
        rec.span(
            "program",
            "Libsafe",
            0,
            1,
            Instant::now(),
            Duration::from_millis(1),
        );
        let mut dir = std::env::temp_dir();
        dir.push(format!("owl-metrics-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (spans, summary) = rec.write_files(&dir, 2, 1).expect("write metrics");
        assert!(spans.ends_with("spans.jsonl"));
        assert!(summary.ends_with("BENCH_campaign.json"));
        let doc = crate::json::parse(
            std::fs::read_to_string(&summary).expect("summary readable").trim(),
        )
        .expect("summary parses");
        assert_eq!(doc.get("bench").and_then(|j| j.as_str()), Some("campaign"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
