//! A shared deadline queue for bounded worker pools.
//!
//! Extracted from the campaign runner so the same scheduling core can
//! drive both one-shot sweeps ([`crate::campaign`]) and the resident
//! `owl serve` daemon ([`crate::serve`]): a `BinaryHeap` keyed on
//! *due instant* with an enqueue sequence number as tiebreak (equal
//! deadlines pop in submission order), plus the bookkeeping workers
//! need to decide when the pool is finished. No thread ever sleeps
//! while a runnable item is queued: a worker facing a not-yet-due head
//! parks on a condvar bounded by that head's deadline.
//!
//! Lifecycle:
//!
//! * [`DeadlineQueue::push`] admits an item (refused only after an
//!   abort). Admission *policy* — bounds, load shedding — is the
//!   caller's job; the queue itself is unbounded.
//! * [`DeadlineQueue::pop`] blocks until an item is due, the queue is
//!   drained, or it is aborted. A popped item counts as *active* until
//!   the worker calls [`DeadlineQueue::task_done`], because an empty
//!   heap only means "finished" once no worker can still re-enqueue.
//! * [`DeadlineQueue::close`] announces that no new external work will
//!   arrive: once the heap is empty **and** nothing is active, `pop`
//!   returns [`Pop::Drained`]. Workers may still push (retries) until
//!   they call `task_done`.
//! * [`DeadlineQueue::abort`] stops the pool immediately: every
//!   blocked or future `pop` returns [`Pop::Aborted`].
//!
//! All methods take `&self` and are poison-tolerant, matching the
//! journal's discipline — a worker panicking with an armed kill point
//! must not deadlock the survivors.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// One queued item: run `item` no earlier than `due`.
///
/// Ordered for a `BinaryHeap` so the *earliest* due entry is at the
/// top, with the enqueue sequence number as tiebreak.
struct Entry<T> {
    due: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due
        // (then lowest seq) on top.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Workers currently processing a popped item.
    active: usize,
    /// No new external work will arrive; drain when idle.
    closed: bool,
    /// Fatal stop: every pop returns [`Pop::Aborted`].
    aborted: bool,
    next_seq: u64,
}

/// What [`DeadlineQueue::pop`] produced.
pub enum Pop<T> {
    /// A due item; the pop marked it active — the worker must call
    /// [`DeadlineQueue::task_done`] when finished with it. `due` is
    /// the instant the item became runnable (for queue-wait metrics).
    Item {
        /// The dequeued item.
        item: T,
        /// When it was scheduled to run.
        due: Instant,
    },
    /// The queue is closed, empty, and idle — the pool is finished.
    Drained,
    /// The queue was aborted — stop immediately.
    Aborted,
}

/// A thread-safe deadline queue (see the module docs).
pub struct DeadlineQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signaled whenever the heap or a lifecycle flag changes; idle
    /// workers park here (bounded by the head entry's deadline).
    idle: Condvar,
}

impl<T> Default for DeadlineQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DeadlineQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        DeadlineQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                active: 0,
                closed: false,
                aborted: false,
                next_seq: 0,
            }),
            idle: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item` to run no earlier than `due`. Returns `false`
    /// (dropping the item) only after an abort.
    pub fn push(&self, due: Instant, item: T) -> bool {
        let mut q = self.lock();
        if q.aborted {
            return false;
        }
        let seq = q.next_seq;
        q.next_seq += 1;
        q.heap.push(Entry { due, seq, item });
        drop(q);
        self.idle.notify_all();
        true
    }

    /// Blocks until an item is due, the queue drains, or it aborts.
    pub fn pop(&self) -> Pop<T> {
        let mut q = self.lock();
        loop {
            if q.aborted {
                return Pop::Aborted;
            }
            match q.heap.peek().map(|e| e.due) {
                Some(due) => {
                    let now = Instant::now();
                    if due <= now {
                        let e = q.heap.pop().expect("peeked entry exists");
                        q.active += 1;
                        return Pop::Item {
                            item: e.item,
                            due: e.due,
                        };
                    }
                    // The head (earliest deadline in the heap) is not
                    // due: nothing is runnable. Park until it is, or
                    // until a push/close/abort notifies us.
                    let (guard, _timeout) = self
                        .idle
                        .wait_timeout(q, due - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    q = guard;
                }
                None => {
                    if q.closed && q.active == 0 {
                        // Drained: wake any parked peers so they can
                        // see it and exit too.
                        drop(q);
                        self.idle.notify_all();
                        return Pop::Drained;
                    }
                    // A running task may still re-enqueue, or (before
                    // close) new work may still arrive.
                    q = self
                        .idle
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Marks one popped item finished. Every [`Pop::Item`] must be
    /// paired with exactly one `task_done` (after any retry push, so
    /// the queue never looks drained while a re-enqueue is pending).
    pub fn task_done(&self) {
        let mut q = self.lock();
        q.active = q.active.saturating_sub(1);
        drop(q);
        self.idle.notify_all();
    }

    /// Announces that no new external work will arrive; once empty and
    /// idle, `pop` returns [`Pop::Drained`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.idle.notify_all();
    }

    /// Stops the pool: every blocked or future `pop` returns
    /// [`Pop::Aborted`] and pushes are refused.
    pub fn abort(&self) {
        self.lock().aborted = true;
        self.idle.notify_all();
    }

    /// Whether the queue was aborted.
    pub fn is_aborted(&self) -> bool {
        self.lock().aborted
    }

    /// Items queued (not counting active ones).
    pub fn depth(&self) -> usize {
        self.lock().heap.len()
    }

    /// Popped items not yet marked done.
    pub fn active(&self) -> usize {
        self.lock().active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn pops_in_due_then_seq_order() {
        let q = DeadlineQueue::new();
        let now = Instant::now();
        q.push(now + Duration::from_millis(5), "later");
        q.push(now, "first");
        q.push(now, "second");
        q.close();
        let mut seen = Vec::new();
        loop {
            match q.pop() {
                Pop::Item { item, .. } => {
                    seen.push(item);
                    q.task_done();
                }
                Pop::Drained => break,
                Pop::Aborted => panic!("not aborted"),
            }
        }
        assert_eq!(seen, ["first", "second", "later"]);
    }

    #[test]
    fn close_with_active_worker_waits_for_requeue() {
        let q = Arc::new(DeadlineQueue::new());
        q.push(Instant::now(), 1u32);
        q.close();
        let Pop::Item { item, .. } = q.pop() else {
            panic!("one item queued");
        };
        assert_eq!(item, 1);
        // While this worker is active, a second worker must not see
        // Drained — it parks until task_done.
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || match q2.pop() {
            Pop::Item { item, .. } => {
                q2.task_done();
                Some(item)
            }
            Pop::Drained => None,
            Pop::Aborted => panic!("not aborted"),
        });
        // Retry push while active, then release.
        assert!(q.push(Instant::now(), 2));
        q.task_done();
        assert_eq!(waiter.join().unwrap(), Some(2));
        assert!(matches!(q.pop(), Pop::Drained));
    }

    #[test]
    fn abort_unblocks_poppers_and_refuses_pushes() {
        let q = Arc::new(DeadlineQueue::<u32>::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || matches!(q2.pop(), Pop::Aborted));
        std::thread::sleep(Duration::from_millis(20));
        q.abort();
        assert!(h.join().unwrap());
        assert!(!q.push(Instant::now(), 9), "pushes refused after abort");
    }

    #[test]
    fn future_deadline_is_honored() {
        let q = DeadlineQueue::new();
        let due = Instant::now() + Duration::from_millis(30);
        q.push(due, ());
        q.close();
        let Pop::Item { .. } = q.pop() else {
            panic!("item expected");
        };
        assert!(Instant::now() >= due, "pop waited for the deadline");
        q.task_done();
    }
}
