//! Crash-safe, corpus-wide campaign execution.
//!
//! A campaign sweeps a list of corpus programs through the full
//! pipeline against one durable [`Journal`]:
//!
//! * every completed pipeline unit is journaled (see
//!   [`crate::journal`]), so killing the process loses at most the
//!   unit in flight;
//! * each program runs under `catch_unwind` isolation with a bounded
//!   retry budget and seeded exponential backoff + jitter
//!   ([`backoff_delay`]);
//! * a program that exhausts its budget is **quarantined into the
//!   journal** and the campaign degrades gracefully — the remaining
//!   programs still run;
//! * the final consolidated summary ([`CampaignSummary`]) is
//!   reconstructed purely from journal records, never from in-memory
//!   state, so a resumed campaign renders byte-identically to an
//!   uninterrupted one.
//!
//! The one panic the supervisor deliberately does **not** absorb is
//! the journal's own kill point ([`JournalKilled`]): it simulates the
//! process dying and must propagate like a real `SIGKILL`.

use crate::config::OwlConfig;
use crate::journal::{
    encode_error, encode_summary, Journal, JournalError, JournalKilled, JournalRecord,
    ProgramSummary, RecoveryReport, SharedJournal, fnv1a64,
};
use crate::json::Json;
use crate::metrics::MetricsRecorder;
use crate::pipeline::{Owl, PipelineError, PipelineHealth, PipelineResult, Stage};
use crate::queue::{DeadlineQueue, Pop};
use owl_corpus::CorpusProgram;
use owl_verify::VerifyOutcome;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A config-level fault: force the named program's first `failures`
/// attempts to panic before any stage runs. Exercises the retry,
/// backoff, and graceful-degradation paths deterministically.
#[derive(Clone, Debug)]
pub struct CampaignFault {
    /// Program to sabotage.
    pub program: String,
    /// Attempts that fail before one is allowed to succeed. Set it at
    /// or above the campaign's retry budget to force quarantine.
    pub failures: u64,
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Pipeline configuration applied to every program.
    pub owl: OwlConfig,
    /// Attempts per program before it is quarantined (≥ 1).
    pub max_attempts: u64,
    /// Base delay of the exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Seed for the backoff jitter.
    pub backoff_seed: u64,
    /// Arms the journal's hard kill point: panic with
    /// [`JournalKilled`] after this many appends (crash testing).
    pub kill_after_appends: Option<u64>,
    /// Injected campaign-level faults.
    pub faults: Vec<CampaignFault>,
    /// Worker threads executing programs concurrently (≥ 1; 0 is
    /// treated as 1). Excluded from the campaign fingerprint: the
    /// consolidated summary is byte-identical for any worker count, so
    /// a journal may be resumed under a different one.
    pub workers: usize,
    /// Optional shared metrics recorder; every worker reports stage
    /// spans, queue waits, and counters into it.
    pub metrics: Option<Arc<MetricsRecorder>>,
}

impl CampaignConfig {
    /// A campaign over `owl` with 3 attempts per program and a 100 ms
    /// backoff base.
    pub fn new(owl: OwlConfig) -> Self {
        CampaignConfig {
            owl,
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_seed: 0,
            kill_after_appends: None,
            faults: Vec::new(),
            workers: 1,
            metrics: None,
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::new(OwlConfig::default())
    }
}

/// The deterministic retry delay before attempt `attempt + 1`
/// (1-based `attempt` = the attempt that just failed): exponential in
/// the attempt number with seeded jitter in `[0, exp/2]`, capped at
/// 30 s. Pure — equal inputs give equal delays, so retry schedules
/// are reproducible.
///
/// The jitter draw mixes in the *program name*, not just the seed and
/// attempt: with only `(seed, attempt)` every program retrying at the
/// same attempt number would get an identical delay and a concurrent
/// campaign would release the whole cohort at the same instant — a
/// synchronized retry stampede. Distinct programs now spread across
/// the jitter window while each one's schedule stays reproducible.
pub fn backoff_delay(base: Duration, program: &str, attempt: u64, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16) as u32);
    let exp_ns = exp.as_nanos().min(u64::MAX as u128) as u64;
    let mut key = Vec::with_capacity(16 + program.len());
    key.extend_from_slice(&seed.to_le_bytes());
    key.extend_from_slice(&attempt.to_le_bytes());
    key.extend_from_slice(program.as_bytes());
    let draw = fnv1a64(&key);
    let jitter_ns = if exp_ns == 0 { 0 } else { draw % (exp_ns / 2 + 1) };
    (exp + Duration::from_nanos(jitter_ns)).min(Duration::from_secs(30))
}

/// Fingerprint of a campaign's identity: configuration plus program
/// list. A journal written under a different fingerprint is refused on
/// resume rather than silently mixed.
pub fn campaign_fingerprint(owl: &OwlConfig, programs: &[String]) -> String {
    // The explorer worker count only changes scheduling, never results
    // (the merge is deterministic), so a journal may be resumed under a
    // different --explore-workers: normalize it out, the same rule as
    // [`CampaignConfig::workers`].
    let mut owl = owl.clone();
    owl.detect.workers = 1;
    // Streaming plumbing is scheduling-only too: channel capacity,
    // spill directory, segment naming, and fault-injection switches
    // never change results (reports are byte-identical at any setting),
    // so normalize them out as well. `max_trace_mem` stays — a unit
    // that blows the hard budget is *aborted*, which is an observable
    // result difference.
    let max_trace_mem = owl.detect.stream.max_trace_mem;
    owl.detect.stream = owl_race::StreamConfig {
        max_trace_mem,
        ..owl_race::StreamConfig::default()
    };
    // Prefix-sharing fork mode is an execution strategy, not a result
    // knob — reports and outcomes are byte-identical fork on or off —
    // so a journal may be resumed across `--no-fork`.
    owl.detect.fork = true;
    let ident = format!("{owl:?}|{programs:?}");
    format!("{:016x}", fnv1a64(ident.as_bytes()))
}

/// Terminal status of one program within a campaign.
#[derive(Clone, Debug, PartialEq)]
pub enum ProgramOutcome {
    /// Ran to completion; the journaled summary.
    Finished(ProgramSummary),
    /// Exhausted its retry budget (or could not start); the journaled
    /// error.
    Quarantined(PipelineError),
    /// No terminal record yet (the campaign was interrupted before
    /// reaching it).
    Pending,
}

/// One program's row in the consolidated summary.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramStatus {
    /// Program name.
    pub program: String,
    /// Campaign attempts spent (0 while pending).
    pub attempts: u64,
    /// Terminal status.
    pub outcome: ProgramOutcome,
}

/// The consolidated campaign summary, reconstructed purely from
/// journal records.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSummary {
    /// Per-program status in campaign order.
    pub programs: Vec<ProgramStatus>,
    /// Total journal records the summary was built from.
    pub records: u64,
    /// `ReportVerified` units recorded.
    pub reports_verified: u64,
    /// `FindingAnalyzed` units recorded.
    pub findings_analyzed: u64,
    /// `Quarantined` units recorded.
    pub units_quarantined: u64,
}

impl CampaignSummary {
    /// Rebuilds the summary from a journal's record stream. Only
    /// journal data is consulted — no live pipeline state — which is
    /// what makes a resumed campaign's summary byte-identical to an
    /// uninterrupted run's.
    pub fn from_records(records: &[JournalRecord]) -> Self {
        let mut programs: Vec<ProgramStatus> = Vec::new();
        let mut reports_verified = 0u64;
        let mut findings_analyzed = 0u64;
        let mut units_quarantined = 0u64;
        for rec in records {
            match rec {
                JournalRecord::CampaignStarted { programs: ps, .. } => {
                    for p in ps {
                        programs.push(ProgramStatus {
                            program: p.clone(),
                            attempts: 0,
                            outcome: ProgramOutcome::Pending,
                        });
                    }
                }
                JournalRecord::ReportVerified { .. } => reports_verified += 1,
                JournalRecord::FindingAnalyzed { .. } => findings_analyzed += 1,
                JournalRecord::Quarantined { .. } => units_quarantined += 1,
                JournalRecord::ProgramFinished {
                    program,
                    attempts,
                    summary,
                } => {
                    set_status(
                        &mut programs,
                        program,
                        *attempts,
                        ProgramOutcome::Finished(summary.clone()),
                    );
                }
                JournalRecord::ProgramQuarantined {
                    program,
                    attempts,
                    error,
                } => {
                    set_status(
                        &mut programs,
                        program,
                        *attempts,
                        ProgramOutcome::Quarantined(error.clone()),
                    );
                }
                // Serve-store records are not campaign state.
                JournalRecord::ResultCached { .. } => {}
            }
        }
        CampaignSummary {
            programs,
            records: records.len() as u64,
            reports_verified,
            findings_analyzed,
            units_quarantined,
        }
    }

    /// Programs with a [`ProgramOutcome::Finished`] record.
    pub fn finished(&self) -> usize {
        self.programs
            .iter()
            .filter(|p| matches!(p.outcome, ProgramOutcome::Finished(_)))
            .count()
    }

    /// Programs quarantined at the campaign level.
    pub fn quarantined(&self) -> usize {
        self.programs
            .iter()
            .filter(|p| matches!(p.outcome, ProgramOutcome::Quarantined(_)))
            .count()
    }

    /// Programs with no terminal record.
    pub fn pending(&self) -> usize {
        self.programs
            .iter()
            .filter(|p| p.outcome == ProgramOutcome::Pending)
            .count()
    }

    /// Vulnerable findings across every finished program.
    pub fn total_vulnerable(&self) -> usize {
        self.programs
            .iter()
            .filter_map(|p| match &p.outcome {
                ProgramOutcome::Finished(s) => Some(s.vulnerable),
                _ => None,
            })
            .sum()
    }

    /// Renders the deterministic plain-text summary — the artifact the
    /// crash-recovery tests compare byte-for-byte between interrupted
    /// and uninterrupted campaigns. Contains no wall-clock data.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== campaign summary ==");
        let _ = writeln!(
            out,
            "programs: {} finished, {} quarantined, {} pending",
            self.finished(),
            self.quarantined(),
            self.pending()
        );
        for p in &self.programs {
            match &p.outcome {
                ProgramOutcome::Finished(s) => {
                    let _ = writeln!(
                        out,
                        "{} [{} attempt(s)]: {} raw -> {} annotated -> {} verified \
                         ({} eliminated), {} vulnerable, {} adhoc sync(s), \
                         {} fault(s) injected, {} unit(s) quarantined",
                        p.program,
                        p.attempts,
                        s.raw_reports,
                        s.post_annotation_reports,
                        s.remaining,
                        s.verifier_eliminated,
                        s.vulnerable,
                        s.adhoc_syncs,
                        s.injected_faults,
                        s.quarantined
                    );
                    for f in &s.findings {
                        let _ = write!(out, "  `{}`:", f.global);
                        for h in &f.hints {
                            let _ = write!(
                                out,
                                " {}/{}{}",
                                h.class,
                                h.dep,
                                if h.reached { " REACHED" } else { "" }
                            );
                        }
                        let _ = writeln!(out);
                    }
                }
                ProgramOutcome::Quarantined(e) => {
                    let _ = writeln!(
                        out,
                        "{} [{} attempt(s)]: QUARANTINED — {e}",
                        p.program, p.attempts
                    );
                }
                ProgramOutcome::Pending => {
                    let _ = writeln!(out, "{} : pending", p.program);
                }
            }
        }
        let _ = writeln!(
            out,
            "units: {} report(s) verified, {} finding(s) analyzed, {} quarantined \
             ({} journal record(s))",
            self.reports_verified, self.findings_analyzed, self.units_quarantined, self.records
        );
        let _ = writeln!(out, "vulnerable findings: {}", self.total_vulnerable());
        out
    }

    /// Machine-readable form (same encoders as the journal records).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "programs",
                Json::Arr(
                    self.programs
                        .iter()
                        .map(|p| {
                            let (status, detail) = match &p.outcome {
                                ProgramOutcome::Finished(s) => {
                                    (Json::str("finished"), encode_summary(s))
                                }
                                ProgramOutcome::Quarantined(e) => {
                                    (Json::str("quarantined"), encode_error(e))
                                }
                                ProgramOutcome::Pending => (Json::str("pending"), Json::Null),
                            };
                            Json::obj([
                                ("program", Json::str(p.program.clone())),
                                ("attempts", Json::UInt(p.attempts)),
                                ("status", status),
                                ("detail", detail),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("records", Json::UInt(self.records)),
            ("reports_verified", Json::UInt(self.reports_verified)),
            ("findings_analyzed", Json::UInt(self.findings_analyzed)),
            ("units_quarantined", Json::UInt(self.units_quarantined)),
            ("vulnerable", Json::UInt(self.total_vulnerable() as u64)),
        ])
    }
}

fn set_status(
    programs: &mut Vec<ProgramStatus>,
    name: &str,
    attempts: u64,
    outcome: ProgramOutcome,
) {
    match programs.iter_mut().find(|p| p.program == name) {
        Some(p) => {
            p.attempts = attempts;
            p.outcome = outcome;
        }
        // Terminal record without a header row (header discarded by
        // recovery): still surface the program.
        None => programs.push(ProgramStatus {
            program: name.to_string(),
            attempts,
            outcome,
        }),
    }
}

/// Reconstructs the journal-visible slice of a consolidated
/// [`PipelineHealth`] from the record stream. Detection counters are
/// not journaled (stages 1–2 re-execute deterministically), so only
/// stages 3–5 and the recovery counters are populated — plus
/// [`PipelineHealth::units_aborted_mem_budget`], which is rebuilt from
/// quarantine records carrying a memory-budget abort.
pub fn health_from_records(records: &[JournalRecord], recovery: &RecoveryReport) -> PipelineHealth {
    let mut health = PipelineHealth {
        journal_discarded_bytes: recovery.discarded_bytes,
        journal_discarded_records: recovery.discarded_records,
        ..PipelineHealth::default()
    };
    for rec in records {
        match rec {
            JournalRecord::ReportVerified {
                attempts,
                injected_faults,
                ..
            } => {
                health.race_verify.attempts += attempts;
                health.race_verify.retries += attempts.saturating_sub(1);
                health.race_verify.injected_faults += injected_faults;
            }
            JournalRecord::FindingAnalyzed { vulns, .. } => {
                health.vuln_analyze.attempts += 1;
                for rv in vulns {
                    health.vuln_verify.attempts += rv.attempts;
                    health.vuln_verify.retries += rv.attempts.saturating_sub(1);
                    health.vuln_verify.injected_faults += rv.injected_faults;
                    if matches!(rv.verdict, VerifyOutcome::Aborted { .. }) {
                        health.vuln_verify.quarantined += 1;
                    }
                }
            }
            JournalRecord::Quarantined {
                error,
                attempts,
                injected_faults,
                ..
            } => {
                let stage = match error {
                    PipelineError::Panicked { stage, .. }
                    | PipelineError::StageDeadline { stage }
                    | PipelineError::VerifierAborted { stage, .. } => *stage,
                    PipelineError::InvalidEntry { .. } => Stage::Detect,
                };
                let sh = match stage {
                    Stage::Detect | Stage::AdhocSync => &mut health.detect,
                    Stage::RaceVerify => &mut health.race_verify,
                    Stage::VulnAnalyze => &mut health.vuln_analyze,
                    Stage::VulnVerify => &mut health.vuln_verify,
                };
                sh.quarantined += 1;
                sh.attempts += attempts;
                sh.retries += attempts.saturating_sub(1);
                sh.injected_faults += injected_faults;
                if matches!(error, PipelineError::Panicked { .. }) {
                    sh.panics += 1;
                }
                if let PipelineError::VerifierAborted {
                    cause: owl_verify::AbortCause::MemoryBudget,
                    attempts: aborted_units,
                    ..
                } = error
                {
                    health.units_aborted_mem_budget += aborted_units;
                }
            }
            _ => {}
        }
    }
    health
}

/// What a campaign run produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The consolidated summary, rebuilt from the journal.
    pub summary: CampaignSummary,
    /// What journal recovery found at open time.
    pub recovery: RecoveryReport,
    /// Journal-reconstructed consolidated health (includes the
    /// recovery counters).
    pub health: PipelineHealth,
}

/// One schedulable unit of campaign work: run program
/// `programs[idx]` at `attempt` (the due instant lives in the
/// [`DeadlineQueue`] entry).
struct Task {
    idx: usize,
    attempt: u64,
}

/// Everything the scoped workers share.
struct WorkerShared<'a> {
    programs: &'a [CorpusProgram],
    cfg: &'a CampaignConfig,
    journal: SharedJournal,
    /// The shared deadline queue ([`crate::queue`]): earliest due entry
    /// first, enqueue order as tiebreak — equal deadlines (the initial
    /// seeding) pop in campaign order.
    queue: DeadlineQueue<Task>,
    /// First fatal journal error, if any.
    fatal: Mutex<Option<JournalError>>,
    /// First captured [`JournalKilled`] panic payload, if any.
    /// `std::thread::scope` would swallow the payload on join, so the
    /// worker stores it here and `run_campaign` re-raises it after the
    /// pool drains.
    killed: Mutex<Option<Box<dyn Any + Send>>>,
}

/// What one supervised attempt decided.
enum AttemptStep {
    /// A terminal record (finished or quarantined) was journaled.
    Terminal,
    /// The attempt failed with retry budget left: re-enqueue at `due`.
    Retry { due: Instant },
    /// Journal I/O failed — abort the campaign.
    Fatal(JournalError),
    /// The journal's kill point fired — abort and re-raise the payload.
    Killed(Box<dyn Any + Send>),
}

/// Worker body: pull the next *due* entry off the deadline queue, run
/// one supervised attempt, push the outcome back. The queue parks a
/// worker facing a not-yet-due head until that deadline — no thread
/// ever sleeps while a runnable program is queued, and a backoff
/// window blocks only the one program serving it.
fn worker_loop(shared: &WorkerShared<'_>, worker_id: usize) {
    loop {
        let (task, due) = match shared.queue.pop() {
            Pop::Item { item, due } => (item, due),
            Pop::Drained | Pop::Aborted => return,
        };

        if let Some(m) = &shared.cfg.metrics {
            let waited = Instant::now().saturating_duration_since(due);
            m.span(
                "queue-wait",
                shared.programs[task.idx].name,
                worker_id,
                task.attempt,
                due,
                waited,
            );
        }
        let step = run_attempt(shared, task.idx, task.attempt, worker_id);

        let stop = match step {
            AttemptStep::Terminal => false,
            AttemptStep::Retry { due } => {
                // Push the retry *before* task_done so the queue never
                // looks drained while the re-enqueue is pending.
                shared.queue.push(
                    due,
                    Task {
                        idx: task.idx,
                        attempt: task.attempt + 1,
                    },
                );
                false
            }
            AttemptStep::Fatal(e) => {
                let mut slot = shared.fatal.lock().unwrap_or_else(PoisonError::into_inner);
                if slot.is_none() {
                    *slot = Some(e);
                }
                shared.queue.abort();
                true
            }
            AttemptStep::Killed(payload) => {
                let mut slot = shared
                    .killed
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if slot.is_none() {
                    *slot = Some(payload);
                }
                shared.queue.abort();
                true
            }
        };
        shared.queue.task_done();
        if stop {
            return;
        }
    }
}

/// Runs one supervised attempt of `programs[idx]` end to end,
/// including its terminal journal append, entirely under
/// `catch_unwind` — so a [`JournalKilled`] fired by *any* append
/// (units or terminals) is captured and surfaced as
/// [`AttemptStep::Killed`] instead of tearing down the scope.
fn run_attempt(
    shared: &WorkerShared<'_>,
    idx: usize,
    attempt: u64,
    worker_id: usize,
) -> AttemptStep {
    let p = &shared.programs[idx];
    let cfg = shared.cfg;
    let fault_failures = cfg
        .faults
        .iter()
        .find(|f| f.program == p.name)
        .map_or(0, |f| f.failures);
    let started = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| {
        if attempt <= fault_failures {
            panic!("injected campaign fault (attempt {attempt})");
        }
        let owl = Owl::new(&p.module, p.entry, cfg.owl.clone());
        let mut sink = shared.journal.clone();
        let result = owl.run_with_journal(p.name, &p.workloads, &p.exploit_inputs, &mut sink)?;
        if let Some(m) = &cfg.metrics {
            record_attempt_metrics(m, p.name, worker_id, attempt, started, &result);
        }
        if let Some(error) = result.error {
            // InvalidEntry is deterministic — retrying cannot help,
            // quarantine immediately.
            sink.append(JournalRecord::ProgramQuarantined {
                program: p.name.to_string(),
                attempts: attempt,
                error,
            })?;
        } else {
            sink.append(JournalRecord::ProgramFinished {
                program: p.name.to_string(),
                attempts: attempt,
                summary: ProgramSummary::from_result(&result),
            })?;
        }
        Ok::<(), JournalError>(())
    }));
    match run {
        Ok(Ok(())) => AttemptStep::Terminal,
        Ok(Err(e)) => AttemptStep::Fatal(e), // journal I/O is fatal
        Err(payload) if payload.is::<JournalKilled>() => {
            // The simulated hard kill: never retried; re-raised by
            // `run_campaign` once the pool stops, exactly like a real
            // SIGKILL would end the process.
            AttemptStep::Killed(payload)
        }
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            if attempt >= cfg.max_attempts {
                // Out of budget: quarantine into the journal. The
                // append is itself a kill site, so supervise it too.
                let append = catch_unwind(AssertUnwindSafe(|| {
                    shared.journal.append(JournalRecord::ProgramQuarantined {
                        program: p.name.to_string(),
                        attempts: attempt,
                        error: PipelineError::Panicked {
                            stage: Stage::Detect,
                            message,
                        },
                    })
                }));
                match append {
                    Ok(Ok(())) => {
                        if let Some(m) = &cfg.metrics {
                            m.counter("programs_quarantined", 1);
                        }
                        AttemptStep::Terminal
                    }
                    Ok(Err(e)) => AttemptStep::Fatal(e),
                    Err(kill) => AttemptStep::Killed(kill),
                }
            } else {
                if let Some(m) = &cfg.metrics {
                    m.counter("campaign_requeues", 1);
                }
                let delay =
                    backoff_delay(cfg.backoff_base, p.name, attempt, cfg.backoff_seed);
                AttemptStep::Retry {
                    due: Instant::now() + delay,
                }
            }
        }
    }
}

/// Folds one successful pipeline run's stage timings and health
/// counters into the campaign's metrics recorder. Also used by the
/// `owl serve` workers — cached daemon responses skip this entirely,
/// which is how the tests prove stages 1–5 were not re-executed.
pub(crate) fn record_attempt_metrics(
    m: &MetricsRecorder,
    program: &str,
    worker: usize,
    attempt: u64,
    started: Instant,
    result: &PipelineResult,
) {
    let s = &result.stats;
    m.span("detect", program, worker, attempt, started, s.detect_time);
    m.span(
        "race-detect",
        program,
        worker,
        attempt,
        started,
        s.race_detect_time,
    );
    m.span(
        "static-analysis",
        program,
        worker,
        attempt,
        started,
        s.static_analysis_time,
    );
    m.span(
        "race-verify",
        program,
        worker,
        attempt,
        started,
        s.race_verify_time,
    );
    m.span(
        "vuln-analyze",
        program,
        worker,
        attempt,
        started,
        s.analysis_time,
    );
    m.span(
        "vuln-verify",
        program,
        worker,
        attempt,
        started,
        s.vuln_verify_time,
    );
    m.span(
        "elision-solve",
        program,
        worker,
        attempt,
        started,
        s.elision_solve_time,
    );
    m.span("program", program, worker, attempt, started, started.elapsed());
    let h = &result.health;
    m.counter(
        "verify_retries",
        h.race_verify.retries + h.vuln_verify.retries,
    );
    m.counter("injected_faults", h.total_injected_faults());
    m.counter("summary_cache_hits", h.summary_cache_hits);
    m.counter("summary_cache_misses", h.summary_cache_misses);
    m.counter("units_quarantined", h.total_quarantined());
    m.counter("detector_suppressed", h.detector_suppressed);
    m.counter("detector_reports_dropped", h.detector_reports_dropped);
    m.counter("events_elided", h.elision_events_elided);
    m.counter("trace_spilled_bytes", h.trace_spilled_bytes);
    m.counter("trace_spill_segments", h.trace_spill_segments);
    m.counter("mem_pressure_events", h.mem_pressure_events);
    m.counter("shadow_cells_gced", h.shadow_cells_gced);
    m.counter("units_aborted_mem_budget", h.units_aborted_mem_budget);
    m.counter("predict_candidates", h.predict_candidates);
    m.counter("predict_witnessed", h.predict_witnessed);
    m.counter("predict_witness_rejected", h.predict_witness_rejected);
    m.counter("predict_reversal_races", h.predict_reversal_races);
    m.counter("units_forked", h.units_forked);
    m.counter("prefix_steps_saved", h.prefix_steps_saved);
    m.counter("schedules_deduped", h.schedules_deduped);
    m.counter("snapshot_bytes", h.snapshot_bytes);
}

/// Runs (or resumes) a campaign over `programs` against the journal at
/// `journal_path`.
///
/// * A journal that already holds records is refused unless `resume`
///   is set; a resumed journal must carry the same
///   [`campaign_fingerprint`].
/// * Programs with a terminal record are skipped entirely; a program
///   interrupted mid-run resumes at its first un-journaled unit.
/// * Pending programs execute on a pool of
///   [`CampaignConfig::workers`] scoped threads pulling from a shared
///   deadline queue; all journal writes go through one serialized
///   [`SharedJournal`] writer. Because the summary is rebuilt purely
///   from journal records keyed on `(program, unit)`, it is
///   byte-identical for every worker count and interleaving.
/// * Each attempt runs under `catch_unwind`; failures re-enqueue the
///   program with a [`backoff_delay`] *deadline* (no thread sleeps
///   while runnable work is queued) up to
///   [`CampaignConfig::max_attempts`], after which the program is
///   quarantined into the journal and the campaign moves on.
/// * [`JournalKilled`] panics are re-raised, never retried — they
///   simulate the process being killed.
pub fn run_campaign(
    journal_path: &Path,
    programs: &[CorpusProgram],
    cfg: &CampaignConfig,
    resume: bool,
) -> Result<CampaignOutcome, JournalError> {
    let names: Vec<String> = programs.iter().map(|p| p.name.to_string()).collect();
    let fingerprint = campaign_fingerprint(&cfg.owl, &names);
    let mut journal = Journal::open(journal_path)?;
    if !resume && !journal.records().is_empty() {
        return Err(JournalError::NotResumable {
            path: journal_path.to_path_buf(),
            records: journal.records().len() as u64,
        });
    }
    // Arm the kill point before the first possible append so every
    // journal write — the campaign header included — is a kill site.
    journal.set_kill_after(cfg.kill_after_appends);
    match journal.records().first() {
        Some(JournalRecord::CampaignStarted {
            fingerprint: recorded,
            ..
        }) => {
            if *recorded != fingerprint {
                return Err(JournalError::ConfigMismatch {
                    recorded: recorded.clone(),
                    current: fingerprint,
                });
            }
        }
        Some(_) => {
            // A journal whose first record is not the campaign header
            // was not written by a campaign — refuse it.
            return Err(JournalError::ConfigMismatch {
                recorded: "<no campaign header>".to_string(),
                current: fingerprint,
            });
        }
        None => {
            journal.append(JournalRecord::CampaignStarted {
                fingerprint,
                programs: names.clone(),
            })?;
        }
    }

    // Seed the deadline queue with every pending program, all due
    // immediately, in campaign order (the seq tiebreak preserves it),
    // then hand the journal to the serialized shared writer.
    let pending: Vec<usize> = programs
        .iter()
        .enumerate()
        .filter(|(_, p)| journal.program_terminal(p.name).is_none())
        .map(|(i, _)| i)
        .collect();
    let journal = SharedJournal::new(journal);

    if !pending.is_empty() {
        let workers = cfg.workers.max(1).min(pending.len());
        let now = Instant::now();
        // Seed every pending program due immediately, in campaign
        // order (the queue's seq tiebreak preserves it), then close:
        // only worker retries may enqueue from here on.
        let queue = DeadlineQueue::new();
        for &idx in &pending {
            queue.push(now, Task { idx, attempt: 1 });
        }
        queue.close();
        let shared = WorkerShared {
            programs,
            cfg,
            journal: journal.clone(),
            queue,
            fatal: Mutex::new(None),
            killed: Mutex::new(None),
        };
        std::thread::scope(|scope| {
            for worker_id in 0..workers {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, worker_id));
            }
        });
        let killed_payload = shared
            .killed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let fatal = shared
            .fatal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(payload) = killed_payload {
            // The simulated hard kill, re-raised with its original
            // payload so supervisors (and the crash tests) can
            // downcast it exactly as before.
            resume_unwind(payload);
        }
        if let Some(e) = fatal {
            return Err(e);
        }
    }

    let records = journal.records();
    let recovery = journal.recovery();
    let summary = CampaignSummary::from_records(&records);
    let health = health_from_records(&records, &recovery);
    if let Some(m) = &cfg.metrics {
        m.counter("journal_appends", journal.appends());
    }
    Ok(CampaignOutcome {
        summary,
        recovery,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_monotone_in_expectation() {
        let base = Duration::from_millis(10);
        let a = backoff_delay(base, "Libsafe", 1, 42);
        let b = backoff_delay(base, "Libsafe", 1, 42);
        assert_eq!(a, b, "pure function");
        assert!(a >= base && a <= base * 3 / 2, "{a:?}");
        let later = backoff_delay(base, "Libsafe", 4, 42);
        assert!(later >= base * 8, "exponential growth: {later:?}");
        assert!(
            backoff_delay(Duration::from_secs(20), "Libsafe", 10, 1) <= Duration::from_secs(30),
            "capped"
        );
    }

    #[test]
    fn backoff_jitter_differs_per_program() {
        // Same seed + attempt must not put two programs on the same
        // retry instant (the stampede bug): the program name feeds the
        // jitter draw.
        let base = Duration::from_secs(10);
        let delays: Vec<Duration> = ["Apache", "Libsafe", "Memcached", "SSDB"]
            .iter()
            .map(|p| backoff_delay(base, p, 2, 7))
            .collect();
        for (i, a) in delays.iter().enumerate() {
            for b in &delays[i + 1..] {
                assert_ne!(a, b, "distinct programs share a retry instant");
            }
        }
    }

    #[test]
    fn fingerprint_tracks_config_and_programs() {
        let names = vec!["A".to_string(), "B".to_string()];
        let f1 = campaign_fingerprint(&OwlConfig::quick(), &names);
        let f2 = campaign_fingerprint(&OwlConfig::quick(), &names);
        assert_eq!(f1, f2);
        let f3 = campaign_fingerprint(&OwlConfig::default(), &names);
        assert_ne!(f1, f3, "config changes the fingerprint");
        let f4 = campaign_fingerprint(&OwlConfig::quick(), &names[..1]);
        assert_ne!(f1, f4, "program list changes the fingerprint");

        // Like CampaignConfig::workers, the explorer worker count is a
        // scheduling knob with deterministic output: a journal written
        // at one pool size must resume under another.
        let mut pooled = OwlConfig::quick();
        pooled.detect.workers = 8;
        assert_eq!(
            f1,
            campaign_fingerprint(&pooled, &names),
            "--explore-workers is excluded from the fingerprint"
        );

        // The detector backend is part of the configuration proper.
        let mut reference = OwlConfig::quick();
        reference.detect.hb_backend = owl_race::HbBackend::Reference;
        assert_ne!(
            f1,
            campaign_fingerprint(&reference, &names),
            "--hb-backend changes the fingerprint"
        );

        // Fork mode is an execution strategy with byte-identical
        // results: a journal written with forking on must resume under
        // --no-fork, and vice versa.
        let mut no_fork = OwlConfig::quick();
        no_fork.detect.fork = false;
        assert_eq!(
            f1,
            campaign_fingerprint(&no_fork, &names),
            "--no-fork is excluded from the fingerprint"
        );
    }

    #[test]
    fn summary_from_empty_records_is_empty() {
        let s = CampaignSummary::from_records(&[]);
        assert_eq!(s.finished(), 0);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.records, 0);
        assert!(s.render().contains("0 finished"));
    }
}
