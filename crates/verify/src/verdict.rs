//! Three-way verification verdicts.
//!
//! A dynamic verification used to be bool-shaped: confirmed or not.
//! Under fault injection and supervised execution that is not enough —
//! a verifier that ran out of wall-clock, or whose every attempt hit
//! the VM step budget, did *not* establish "unconfirmed"; it failed to
//! complete. [`VerifyOutcome`] keeps those cases distinct so the
//! pipeline supervisor can quarantine aborted verifications instead of
//! silently counting them as eliminations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a verification aborted before spending its whole attempt
/// budget meaningfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortCause {
    /// The wall-clock deadline expired between attempts.
    DeadlineExceeded,
    /// Every attempt exhausted the VM step budget — no execution ever
    /// ran to completion, so nothing was established either way.
    StepBudgetExhausted,
    /// The verifier panicked and a supervisor caught it (the verdict
    /// is synthesized by the supervisor, not the verifier itself).
    Panicked,
    /// The unit's in-flight trace outgrew the configured memory budget
    /// (`--max-trace-mem`) and could not be spilled to disk. The
    /// memory watchdog aborts the unit with this typed verdict instead
    /// of letting it OOM; campaigns quarantine it and continue.
    MemoryBudget,
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCause::DeadlineExceeded => f.write_str("deadline exceeded"),
            AbortCause::StepBudgetExhausted => f.write_str("step budget exhausted"),
            AbortCause::Panicked => f.write_str("verifier panicked"),
            AbortCause::MemoryBudget => f.write_str("memory budget exceeded"),
        }
    }
}

/// The three-way result of a verification attempt budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerifyOutcome {
    /// The property was established (race caught in the racing moment;
    /// vulnerable site reached).
    Confirmed,
    /// The full attempt budget ran without establishing the property.
    Unconfirmed,
    /// The verification gave up without a meaningful answer.
    Aborted {
        /// Why it gave up.
        cause: AbortCause,
        /// Attempts completed before giving up.
        attempts: u64,
    },
}

impl VerifyOutcome {
    /// Whether the property was established.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, VerifyOutcome::Confirmed)
    }

    /// Whether the verification gave up without an answer.
    pub fn is_aborted(&self) -> bool {
        matches!(self, VerifyOutcome::Aborted { .. })
    }
}

impl fmt::Display for VerifyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyOutcome::Confirmed => f.write_str("confirmed"),
            VerifyOutcome::Unconfirmed => f.write_str("unconfirmed"),
            VerifyOutcome::Aborted { cause, attempts } => {
                write!(f, "aborted after {attempts} attempt(s): {cause}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(VerifyOutcome::Confirmed.is_confirmed());
        assert!(!VerifyOutcome::Unconfirmed.is_confirmed());
        let ab = VerifyOutcome::Aborted {
            cause: AbortCause::DeadlineExceeded,
            attempts: 3,
        };
        assert!(ab.is_aborted());
        assert!(!ab.is_confirmed());
    }

    #[test]
    fn display_names_the_cause() {
        let s = VerifyOutcome::Aborted {
            cause: AbortCause::StepBudgetExhausted,
            attempts: 7,
        }
        .to_string();
        assert!(s.contains("7"));
        assert!(s.contains("step budget"));
    }
}
