//! Schedule-witness minimization.
//!
//! The paper ships exploit *scripts*; the equivalent artifact here is a
//! recorded scheduler-choice sequence that reproduces an attack. Full
//! recordings contain one choice per executed instruction — almost all
//! of them irrelevant. This module shrinks a witness to the shortest
//! *prefix* of explicit choices that still reproduces the property
//! (after the prefix, the replayer's default fallback takes over),
//! giving the developer a minimal "these first N scheduling decisions
//! are what matters" reproduction recipe.

use owl_ir::{FuncId, Module};
use owl_vm::{ExecOutcome, ProgramInput, ReplayScheduler, RunConfig, ThreadId, Vm};
use std::fmt::Write as _;

/// A minimized schedule witness.
#[derive(Clone, Debug)]
pub struct MinimalSchedule {
    /// The minimal prefix of explicit choices.
    pub prefix: Vec<ThreadId>,
    /// Replays performed during minimization.
    pub tests: u64,
    /// Length of the original recording.
    pub original_len: usize,
}

impl MinimalSchedule {
    /// Compression ratio (1.0 = nothing saved).
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 1.0;
        }
        self.prefix.len() as f64 / self.original_len as f64
    }
}

/// Renders a choice sequence run-length encoded: `T0×12 T3×2 T0×5`.
pub fn format_schedule(prefix: &[ThreadId]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < prefix.len() {
        let t = prefix[i];
        let mut n = 1;
        while i + n < prefix.len() && prefix[i + n] == t {
            n += 1;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        let _ = write!(out, "{t}×{n}");
        i += n;
    }
    out
}

/// Finds the shortest prefix of `schedule` whose replay still satisfies
/// `pred`. Binary-searches assuming (approximate) monotonicity, then
/// walks down linearly to tighten; the returned prefix is always
/// re-validated.
pub fn minimize_schedule_prefix(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    run_config: &RunConfig,
    schedule: &[ThreadId],
    mut pred: impl FnMut(&ExecOutcome) -> bool,
) -> Option<MinimalSchedule> {
    let mut tests = 0u64;
    let mut try_prefix = |k: usize, tests: &mut u64| -> bool {
        *tests += 1;
        let mut sched = ReplayScheduler::new(schedule[..k].to_vec());
        let vm = Vm::new(module, entry, input.clone(), run_config.clone());
        let outcome = vm.run(&mut sched, &mut owl_vm::NullSink);
        pred(&outcome)
    };

    // The full recording must reproduce, else there is nothing to
    // minimize.
    if !try_prefix(schedule.len(), &mut tests) {
        return None;
    }

    // Binary search for a small working prefix.
    let (mut lo, mut hi) = (0usize, schedule.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if try_prefix(mid, &mut tests) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // `hi` works if the search stayed monotone; re-validate and widen if
    // the boundary was noisy.
    let mut k = hi;
    while k <= schedule.len() && !try_prefix(k, &mut tests) {
        k += (k / 4).max(1);
    }
    let k = k.min(schedule.len());
    if !try_prefix(k, &mut tests) {
        // Fall back to the full recording (always valid).
        return Some(MinimalSchedule {
            prefix: schedule.to_vec(),
            tests,
            original_len: schedule.len(),
        });
    }
    Some(MinimalSchedule {
        prefix: schedule[..k].to_vec(),
        tests,
        original_len: schedule.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_vm::{RandomScheduler, Violation};

    #[test]
    fn minimizes_a_libsafe_witness() {
        let p = owl_corpus::program("Libsafe").unwrap();
        let input = &p.exploit_inputs[0];
        // Record a triggering run.
        let mut recording = None;
        for seed in 0..30 {
            let mut sched = RandomScheduler::new(seed);
            let vm = Vm::new(&p.module, p.entry, input.clone(), RunConfig::default());
            let o = vm.run(&mut sched, &mut owl_vm::NullSink);
            if o.any_violation(|v| matches!(v, Violation::CorruptFuncPtr { .. })) {
                recording = Some(o.schedule);
                break;
            }
        }
        let recording = recording.expect("exploit triggers");
        let min = minimize_schedule_prefix(
            &p.module,
            p.entry,
            input,
            &RunConfig::default(),
            &recording,
            |o| o.any_violation(|v| matches!(v, Violation::CorruptFuncPtr { .. })),
        )
        .expect("minimizable");
        assert!(
            min.prefix.len() <= min.original_len,
            "{} <= {}",
            min.prefix.len(),
            min.original_len
        );
        // The witness still reproduces.
        let mut sched = ReplayScheduler::new(min.prefix.clone());
        let vm = Vm::new(&p.module, p.entry, input.clone(), RunConfig::default());
        let o = vm.run(&mut sched, &mut owl_vm::NullSink);
        assert!(o.any_violation(|v| matches!(v, Violation::CorruptFuncPtr { .. })));
        // And renders compactly.
        let text = format_schedule(&min.prefix);
        assert!(text.is_empty() || text.contains('×'));
    }

    #[test]
    fn non_reproducing_recording_returns_none() {
        let p = owl_corpus::program("Libsafe").unwrap();
        let input = &p.workloads[0];
        let mut sched = RandomScheduler::new(1);
        let vm = Vm::new(&p.module, p.entry, input.clone(), RunConfig::default());
        let o = vm.run(&mut sched, &mut owl_vm::NullSink);
        let min = minimize_schedule_prefix(
            &p.module,
            p.entry,
            input,
            &RunConfig::default(),
            &o.schedule,
            |o| o.any_violation(|v| matches!(v, Violation::CorruptFuncPtr { .. })),
        );
        assert!(min.is_none(), "benign run cannot witness the attack");
    }

    #[test]
    fn rle_rendering() {
        let s = [ThreadId(0), ThreadId(0), ThreadId(2), ThreadId(0)];
        assert_eq!(format_schedule(&s), "T0×2 T2×1 T0×1");
        assert_eq!(format_schedule(&[]), "");
    }
}
