//! # owl-verify
//!
//! OWL's dynamic verifiers (Rust reproduction of *"Understanding and
//! Detecting Concurrency Attacks"*, DSN 2018):
//!
//! * [`RaceVerifier`] (§5.2) — catches a reported race "in the racing
//!   moment" with thread-specific breakpoints: one thread halts at one
//!   racing instruction until a different thread arrives at the other
//!   instruction on the same address. Emits [`SecurityHints`] (values
//!   about to be read/written, variable type, NULL-dereference risk)
//!   and releases the threads in a chosen [`RaceOrder`].
//! * [`VulnVerifier`] (§6.2) — re-runs the program against a static
//!   [`owl_static::VulnReport`] to check whether the vulnerable site is
//!   actually reachable; failures yield the *diverged branches* as
//!   further input hints.
//!
//! The original implementation drove LLDB; here the breakpoints are the
//! VM's (`owl_vm::Breakpoint`), including the automatic livelock
//! release the paper describes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod minimize;
mod race_verifier;
mod verdict;
mod vuln_verifier;

pub use minimize::{format_schedule, minimize_schedule_prefix, MinimalSchedule};
pub use race_verifier::{
    AccessHint, RaceOrder, RaceVerification, RaceVerifier, RaceVerifyConfig, SecurityHints,
};
pub use verdict::{AbortCause, VerifyOutcome};
pub use vuln_verifier::{VulnVerification, VulnVerifier, VulnVerifyConfig};
