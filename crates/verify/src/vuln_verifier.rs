//! The dynamic vulnerability verifier (paper §6.2).
//!
//! Takes a vulnerable input hint from the static analyzer — the
//! vulnerability site plus the corrupted branches gating it — re-runs
//! the program, and checks whether the site can actually be reached
//! (and the attack realized). When the site is not reached, the
//! diverged branches are reported as further input hints, which is how
//! the paper's workflow guided manual "input tuning"; here the caller
//! can hand the verifier a whole list of candidate inputs and let it
//! sweep them.

use crate::verdict::{AbortCause, VerifyOutcome};
use owl_ir::{FuncId, InstRef, Module};
use owl_static::VulnReport;
use owl_vm::{
    BreakDecision, BreakWorld, Breakpoint, Controller, ExecOutcome, ExitStatus, ProgramInput,
    RandomScheduler, RunConfig, Suspension, Violation, Vm,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Result of verifying one vulnerability report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VulnVerification {
    /// Whether the vulnerable site was reached in some execution.
    /// (Kept for compatibility; equals `verdict.is_confirmed()`.)
    pub reached: bool,
    /// Three-way verdict: confirmed (site reached), unconfirmed, or
    /// aborted without a meaningful answer.
    pub verdict: VerifyOutcome,
    /// Executions performed.
    pub attempts: u64,
    /// The input that reached the site, if any.
    pub triggering_input: Option<ProgramInput>,
    /// Hint branches that executed in the best run.
    pub branches_hit: Vec<InstRef>,
    /// Hint branches that never executed — the diverged branches the
    /// paper prints as further input hints.
    pub diverged_branches: Vec<InstRef>,
    /// Outcome of the reaching run.
    pub outcome: Option<ExecOutcome>,
    /// A violation recorded *at the vulnerable site* in the reaching
    /// run (the realized attack), if any.
    pub triggered_violation: Option<Violation>,
    /// Total faults the VM's [`owl_vm::FaultPlan`] injected across all
    /// executions.
    pub injected_faults: u64,
}

/// Verifier configuration.
#[derive(Clone, Debug)]
pub struct VulnVerifyConfig {
    /// Schedules tried per input. Each execution reseeds the scheduler
    /// (`base_seed + schedule_index`).
    pub schedules_per_input: u64,
    /// First scheduler seed.
    pub base_seed: u64,
    /// VM limits (the per-execution *step* deadline is
    /// `run_config.max_steps`).
    pub run_config: RunConfig,
    /// Wall-clock budget for the whole input × schedule sweep, checked
    /// between executions; expiry yields [`VerifyOutcome::Aborted`]
    /// with [`AbortCause::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

impl Default for VulnVerifyConfig {
    fn default() -> Self {
        VulnVerifyConfig {
            schedules_per_input: 10,
            base_seed: 2000,
            run_config: RunConfig::default(),
            deadline: None,
        }
    }
}

/// Dynamic vulnerability verifier.
#[derive(Debug)]
pub struct VulnVerifier<'m> {
    module: &'m Module,
    config: VulnVerifyConfig,
}

/// Pure observer: never suspends, just records which monitored sites
/// executed.
#[derive(Debug, Default)]
struct Observer {
    hit: BTreeSet<InstRef>,
}

impl Controller for Observer {
    fn on_break(&mut self, _world: &mut BreakWorld<'_>, hit: &Suspension) -> BreakDecision {
        self.hit.insert(hit.site);
        BreakDecision::Continue
    }
}

impl<'m> VulnVerifier<'m> {
    /// Creates a verifier over `module`.
    pub fn new(module: &'m Module, config: VulnVerifyConfig) -> Self {
        VulnVerifier { module, config }
    }

    /// Verifier with default configuration.
    pub fn with_defaults(module: &'m Module) -> Self {
        Self::new(module, VulnVerifyConfig::default())
    }

    /// Sweeps `inputs` × schedules, checking whether `report.site` can
    /// be reached. Stops at the first reaching execution.
    pub fn verify(
        &self,
        entry: FuncId,
        inputs: &[ProgramInput],
        report: &VulnReport,
    ) -> VulnVerification {
        let default_inputs = [ProgramInput::empty()];
        let inputs: &[ProgramInput] = if inputs.is_empty() {
            &default_inputs
        } else {
            inputs
        };
        let start = Instant::now();
        let mut attempts = 0;
        let mut injected_faults = 0u64;
        let mut all_step_limit = true;
        let mut deadline_hit = false;
        let mut best_branches: BTreeSet<InstRef> = BTreeSet::new();
        'sweep: for input in inputs {
            for k in 0..self.config.schedules_per_input {
                if let Some(d) = self.config.deadline {
                    if attempts > 0 && start.elapsed() >= d {
                        deadline_hit = true;
                        break 'sweep;
                    }
                }
                attempts += 1;
                let mut obs = Observer::default();
                let mut vm = Vm::new(
                    self.module,
                    entry,
                    input.clone(),
                    self.config.run_config.clone(),
                );
                vm.add_breakpoint(Breakpoint::at(report.site));
                for br in report.branches.iter().chain(&report.path_branches) {
                    vm.add_breakpoint(Breakpoint::at(*br));
                }
                let mut sched = RandomScheduler::new(self.config.base_seed + k);
                let outcome = vm.run_controlled(&mut sched, &mut owl_vm::NullSink, &mut obs);
                injected_faults += outcome.injected_faults.len() as u64;
                if outcome.status != ExitStatus::StepLimit {
                    all_step_limit = false;
                }
                if obs.hit.len() > best_branches.len() {
                    best_branches = obs.hit.clone();
                }
                if obs.hit.contains(&report.site) {
                    let watched: Vec<InstRef> = report
                        .branches
                        .iter()
                        .chain(&report.path_branches)
                        .copied()
                        .collect();
                    let branches_hit: Vec<InstRef> = watched
                        .iter()
                        .copied()
                        .filter(|b| obs.hit.contains(b))
                        .collect();
                    let diverged: Vec<InstRef> = watched
                        .iter()
                        .copied()
                        .filter(|b| !obs.hit.contains(b))
                        .collect();
                    let triggered = outcome
                        .violations
                        .iter()
                        .find(|v| v.site == report.site)
                        .map(|v| v.violation);
                    return VulnVerification {
                        reached: true,
                        verdict: VerifyOutcome::Confirmed,
                        attempts,
                        triggering_input: Some(input.clone()),
                        branches_hit,
                        diverged_branches: diverged,
                        outcome: Some(outcome),
                        triggered_violation: triggered,
                        injected_faults,
                    };
                }
            }
        }
        let watched: Vec<InstRef> = report
            .branches
            .iter()
            .chain(&report.path_branches)
            .copied()
            .collect();
        let branches_hit: Vec<InstRef> = watched
            .iter()
            .copied()
            .filter(|b| best_branches.contains(b))
            .collect();
        let diverged: Vec<InstRef> = watched
            .iter()
            .copied()
            .filter(|b| !best_branches.contains(b))
            .collect();
        let verdict = if deadline_hit {
            VerifyOutcome::Aborted {
                cause: AbortCause::DeadlineExceeded,
                attempts,
            }
        } else if all_step_limit && attempts > 0 {
            // No execution ever ran to completion: nothing was
            // established either way.
            VerifyOutcome::Aborted {
                cause: AbortCause::StepBudgetExhausted,
                attempts,
            }
        } else {
            VerifyOutcome::Unconfirmed
        };
        VulnVerification {
            reached: false,
            verdict,
            attempts,
            triggering_input: None,
            branches_hit,
            diverged_branches: diverged,
            outcome: None,
            triggered_violation: None,
            injected_faults,
        }
    }

    /// Verification with automatic input refinement: when the site is
    /// not reached, solve the diverged branches' input-dependent
    /// conditions (see [`owl_static::InputSynthesizer`]) and retry with
    /// the synthesized input. This automates the "input tuning" loop
    /// the paper performed manually (§6.2), closing the circle on the
    /// diverged-branch feedback.
    ///
    /// Returns the final verification plus the synthesized input that
    /// made it succeed, if refinement was needed and worked.
    pub fn verify_refining(
        &self,
        entry: FuncId,
        inputs: &[ProgramInput],
        report: &VulnReport,
        max_refinements: usize,
    ) -> (VulnVerification, Option<ProgramInput>) {
        let mut v = self.verify(entry, inputs, report);
        if v.reached {
            return (v, None);
        }
        let synth = owl_static::InputSynthesizer::new(self.module);
        let mut base = inputs.first().cloned().unwrap_or_else(ProgramInput::empty);
        // A breakpoint only tells us a branch *executed*, not which way
        // it went — a gate taken the wrong way still counts as "hit".
        // So refine over every watched branch; solving one that was
        // already steered correctly is idempotent.
        let mut watched: Vec<InstRef> = report
            .branches
            .iter()
            .chain(&report.path_branches)
            .copied()
            .collect();
        watched.sort();
        watched.dedup();
        for _ in 0..max_refinements {
            let (refined, assignments) = synth.refine_input(&base, &watched, report.site);
            if assignments.is_empty() {
                break; // nothing solvable: schedule territory
            }
            let attempts_so_far = v.attempts;
            let faults_so_far = v.injected_faults;
            v = self.verify(entry, std::slice::from_ref(&refined), report);
            v.attempts += attempts_so_far;
            v.injected_faults += faults_so_far;
            if v.reached {
                return (v, Some(refined));
            }
            base = refined;
        }
        (v, None)
    }

    /// Renders the verification result, including diverged branches as
    /// further input hints (§6.2).
    pub fn format(&self, v: &VulnVerification) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if v.reached {
            let _ = writeln!(
                out,
                "vulnerable site REACHED after {} execution(s){}",
                v.attempts,
                match &v.triggering_input {
                    Some(i) => format!(" with input {i}"),
                    None => String::new(),
                }
            );
            if let Some(viol) = &v.triggered_violation {
                let _ = writeln!(out, "attack realized: {viol}");
            }
        } else {
            match v.verdict {
                VerifyOutcome::Aborted { cause, attempts } => {
                    let _ = writeln!(
                        out,
                        "verification ABORTED after {attempts} execution(s): {cause}"
                    );
                }
                _ => {
                    let _ = writeln!(out, "site NOT reached in {} execution(s)", v.attempts);
                }
            }
            for b in &v.diverged_branches {
                let _ = writeln!(
                    out,
                    "diverged branch (further input hint): {}",
                    self.module.format_loc(*b)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Pred, Type, VulnClass};
    use owl_static::{DepKind, VulnAnalyzer};

    /// Input-gated vulnerable site: `if (input > 100 && flag) exec(..)`.
    fn gated_module() -> (Module, FuncId, VulnReport) {
        let mut mb = ModuleBuilder::new("gated");
        let flag = mb.global_init("flag", 1, vec![1], Type::I64);
        let main = mb.declare_func("main", 0);
        let load;
        {
            let mut b = mb.build_func(main);
            b.loc("gated.c", 5);
            let inp = b.input(0);
            let big = b.cmp(Pred::Gt, inp, 100);
            let next = b.block();
            let out = b.block();
            b.br(big, next, out);
            b.switch_to(next);
            b.loc("gated.c", 8);
            let a = b.global_addr(flag);
            load = b.load(a, Type::I64);
            let fire = b.block();
            b.br(load, fire, out);
            b.switch_to(fire);
            b.loc("gated.c", 10);
            b.exec(99);
            b.jmp(out);
            b.switch_to(out);
            b.ret(None);
        }
        let m = mb.finish();
        let mut an = VulnAnalyzer::with_defaults(&m);
        let (reports, _) = an.analyze(owl_ir::InstRef::new(main, load), &[]);
        let report = reports
            .into_iter()
            .find(|r| r.class == VulnClass::ExecOp && r.dep == DepKind::CtrlDep)
            .expect("exec hint");
        (m, main, report)
    }

    #[test]
    fn reaches_site_with_right_input() {
        let (m, main, report) = gated_module();
        let verifier = VulnVerifier::with_defaults(&m);
        let inputs = vec![
            ProgramInput::new(vec![5]).with_label("small"),
            ProgramInput::new(vec![500]).with_label("big"),
        ];
        let v = verifier.verify(main, &inputs, &report);
        assert!(v.reached);
        assert_eq!(v.triggering_input.as_ref().unwrap().label(), Some("big"));
        assert!(v.diverged_branches.is_empty());
        assert!(verifier.format(&v).contains("REACHED"));
    }

    #[test]
    fn wrong_input_reports_diverged_branches() {
        let (m, main, report) = gated_module();
        let verifier = VulnVerifier::new(
            &m,
            VulnVerifyConfig {
                schedules_per_input: 3,
                ..VulnVerifyConfig::default()
            },
        );
        let v = verifier.verify(main, &[ProgramInput::new(vec![5])], &report);
        assert!(!v.reached);
        assert_eq!(v.verdict, VerifyOutcome::Unconfirmed);
        assert!(
            !v.diverged_branches.is_empty(),
            "the unmet guard must be reported: {v:?}"
        );
        assert!(verifier.format(&v).contains("diverged branch"));
    }

    #[test]
    fn starved_step_budget_aborts() {
        let (m, main, report) = gated_module();
        let verifier = VulnVerifier::new(
            &m,
            VulnVerifyConfig {
                schedules_per_input: 3,
                run_config: RunConfig {
                    max_steps: 1,
                    ..RunConfig::default()
                },
                ..VulnVerifyConfig::default()
            },
        );
        let v = verifier.verify(main, &[ProgramInput::new(vec![500])], &report);
        assert!(!v.reached);
        assert_eq!(
            v.verdict,
            VerifyOutcome::Aborted {
                cause: AbortCause::StepBudgetExhausted,
                attempts: 3,
            }
        );
        assert!(verifier.format(&v).contains("ABORTED"));
    }

    #[test]
    fn zero_deadline_aborts_after_first_execution() {
        let (m, main, report) = gated_module();
        let verifier = VulnVerifier::new(
            &m,
            VulnVerifyConfig {
                deadline: Some(std::time::Duration::from_secs(0)),
                ..VulnVerifyConfig::default()
            },
        );
        // An input that can never reach the site keeps the sweep going,
        // so the (already-expired) deadline fires after execution 1.
        let v = verifier.verify(main, &[ProgramInput::new(vec![5])], &report);
        assert!(!v.reached);
        assert_eq!(
            v.verdict,
            VerifyOutcome::Aborted {
                cause: AbortCause::DeadlineExceeded,
                attempts: 1,
            }
        );
    }

    #[test]
    fn refinement_synthesizes_the_missing_input() {
        // Start from an input that fails the gate; the refinement loop
        // must solve `input0 > 100` from the diverged branch and reach
        // the site without being handed the exploit input.
        let (m, main, report) = gated_module();
        let verifier = VulnVerifier::new(
            &m,
            VulnVerifyConfig {
                schedules_per_input: 3,
                ..VulnVerifyConfig::default()
            },
        );
        let (v, synthesized) =
            verifier.verify_refining(main, &[ProgramInput::new(vec![5])], &report, 3);
        assert!(v.reached, "{v:?}");
        let input = synthesized.expect("an input was synthesized");
        assert!(input.get(0) > 100, "solved gate: {input}");
    }

    #[test]
    fn triggered_violation_attached() {
        // A site that actually misbehaves when reached: exec through a
        // corrupted pointer is modeled as an indirect call of NULL.
        let mut mb = ModuleBuilder::new("nullcall");
        let fp = mb.global("f_op", 1, Type::FuncPtr);
        let main = mb.declare_func("main", 0);
        let load;
        let call;
        {
            let mut b = mb.build_func(main);
            let a = b.global_addr(fp);
            load = b.load(a, Type::FuncPtr);
            call = b.call_indirect(load, vec![]);
            b.ret(None);
        }
        let m = mb.finish();
        let mut an = VulnAnalyzer::with_defaults(&m);
        let (reports, _) = an.analyze(owl_ir::InstRef::new(main, load), &[]);
        let report = reports
            .iter()
            .find(|r| r.site.inst == call)
            .expect("deref hint")
            .clone();
        let verifier = VulnVerifier::with_defaults(&m);
        let v = verifier.verify(main, &[], &report);
        assert!(v.reached);
        assert_eq!(v.triggered_violation, Some(Violation::NullFuncPtr));
        assert!(verifier.format(&v).contains("attack realized"));
    }
}
