//! The dynamic race verifier (paper §5.2).
//!
//! Race detectors over-report; OWL verifies each surviving report by
//! catching the race "in the racing moment": thread-specific
//! breakpoints halt a thread arriving at one racing instruction until a
//! *different* thread arrives at the other racing instruction with the
//! *same* address. Only then is the race real. The verifier then prints
//! security hints — the racing instructions, the values they are about
//! to read/write, and the variable's type — and can release the
//! threads in a chosen order to let the corruption actually happen
//! (the "bug order"), which the vulnerability verifier builds on.
//!
//! Livelocks caused by suspensions are resolved by the VM's automatic
//! oldest-suspension release, mirroring the paper's "temporarily
//! releasing one of the currently triggered breakpoints".

use crate::verdict::{AbortCause, VerifyOutcome};
use owl_ir::{FuncId, InstRef, Module, Type};
use owl_race::RaceReport;
use owl_vm::{
    BreakDecision, BreakWorld, Breakpoint, Controller, ExecOutcome, ExitStatus, ProgramInput,
    RandomScheduler, RunConfig, Suspension, ThreadId, Vm,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which racing instruction should execute first once the race is
/// caught.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaceOrder {
    /// The write executes first (the "bug order" — the read observes
    /// the corrupted value).
    #[default]
    WriteFirst,
    /// The read executes first (the benign order).
    ReadFirst,
}

/// One side of the confirmed race, as observed at the breakpoint.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccessHint {
    /// The racing instruction.
    pub site: InstRef,
    /// The thread that arrived.
    pub tid: ThreadId,
    /// Whether this side writes.
    pub is_write: bool,
    /// Value about to be written (writes only).
    pub value_to_write: Option<i64>,
    /// Value currently in memory (what a read would observe).
    pub current_value: Option<i64>,
    /// Static type at the site.
    pub ty: Type,
}

/// The verifier's security hints (§5.2): "the racing instructions from
/// source code, the value they're about to read and write and the type
/// of the variable".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SecurityHints {
    /// The racing address.
    pub addr: u64,
    /// Global variable name, when resolvable.
    pub global_name: Option<String>,
    /// The side that was already suspended when the partner arrived.
    pub waiting: AccessHint,
    /// The side whose arrival confirmed the race.
    pub arriving: AccessHint,
    /// Whether the race can produce a NULL pointer dereference: a
    /// pointer-typed location about to hold (or already holding) NULL.
    pub null_pointer_risk: bool,
}

/// Result of verifying one race report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RaceVerification {
    /// Whether both racing instructions were caught simultaneously on
    /// the same address. (Kept for compatibility; equals
    /// `verdict.is_confirmed()`.)
    pub confirmed: bool,
    /// Three-way verdict: confirmed, unconfirmed, or aborted without
    /// a meaningful answer.
    pub verdict: VerifyOutcome,
    /// Schedules tried.
    pub attempts: u64,
    /// Hints captured at the racing moment (when confirmed).
    pub hints: Option<SecurityHints>,
    /// Outcome of the confirming execution (violations included).
    pub outcome: Option<ExecOutcome>,
    /// Total faults the VM's [`owl_vm::FaultPlan`] injected across all
    /// attempts.
    pub injected_faults: u64,
}

/// Verifier configuration.
#[derive(Clone, Debug)]
pub struct RaceVerifyConfig {
    /// Maximum schedules to try before declaring the report
    /// unverifiable. Each attempt reseeds the scheduler
    /// (`base_seed + attempt`).
    pub max_schedules: u64,
    /// First scheduler seed.
    pub base_seed: u64,
    /// Release order after confirmation.
    pub order: RaceOrder,
    /// VM limits (the per-attempt *step* deadline is
    /// `run_config.max_steps`).
    pub run_config: RunConfig,
    /// Wall-clock budget for the whole attempt loop, checked between
    /// attempts; expiry yields [`VerifyOutcome::Aborted`] with
    /// [`AbortCause::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

impl Default for RaceVerifyConfig {
    fn default() -> Self {
        RaceVerifyConfig {
            max_schedules: 20,
            base_seed: 100,
            order: RaceOrder::WriteFirst,
            run_config: RunConfig::default(),
            deadline: None,
        }
    }
}

/// Dynamic race verifier.
#[derive(Debug)]
pub struct RaceVerifier<'m> {
    module: &'m Module,
    config: RaceVerifyConfig,
}

struct RvController {
    site_a: InstRef,
    site_b: InstRef,
    /// Site preferred to execute first once confirmed.
    first_site: Option<InstRef>,
    confirmed: Option<SecurityHints>,
}

impl RvController {
    fn hint_of(s: &Suspension) -> Option<AccessHint> {
        let a = s.access?;
        Some(AccessHint {
            site: s.site,
            tid: s.tid,
            is_write: a.is_write,
            value_to_write: a.value_to_write,
            current_value: a.current_value,
            ty: a.ty,
        })
    }
}

impl Controller for RvController {
    fn on_break(&mut self, world: &mut BreakWorld<'_>, hit: &Suspension) -> BreakDecision {
        if self.confirmed.is_some() {
            return BreakDecision::Continue;
        }
        let Some(acc) = hit.access else {
            return BreakDecision::Continue;
        };
        // A partner is a *different thread* suspended at the *other*
        // racing site touching the *same address*.
        let partner = world.suspended.iter().find(|(tid, s)| {
            **tid != hit.tid
                && s.site != hit.site
                && (s.site == self.site_a || s.site == self.site_b)
                && s.access.map(|a| a.addr) == Some(acc.addr)
        });
        if let Some((&ptid, psusp)) = partner {
            // Caught in the racing moment.
            let waiting = Self::hint_of(psusp);
            let arriving = Self::hint_of(hit);
            if let (Some(waiting), Some(arriving)) = (waiting, arriving) {
                let null_risk = (waiting.ty.is_pointer() || arriving.ty.is_pointer())
                    && (waiting.value_to_write == Some(0)
                        || arriving.value_to_write == Some(0)
                        || waiting.current_value == Some(0)
                        || arriving.current_value == Some(0));
                self.confirmed = Some(SecurityHints {
                    addr: acc.addr,
                    global_name: None,
                    waiting,
                    arriving,
                    null_pointer_risk: null_risk,
                });
            }
            // Disarm: the verification is done; let the program run the
            // chosen order out.
            for bp in world.breakpoints.iter_mut() {
                bp.enabled = false;
            }
            let hit_first = match self.first_site {
                Some(f) => hit.site == f,
                None => true,
            };
            if hit_first {
                // The arriving side executes now; the partner follows.
                world.resume.push(ptid);
                BreakDecision::Continue
            } else {
                // Partner first; the arriving thread stays suspended and
                // is released by the VM's stall resolution (or keeps its
                // turn once the partner has gone through).
                world.resume.push(ptid);
                BreakDecision::Suspend
            }
        } else {
            // Wait here for a partner.
            BreakDecision::Suspend
        }
    }

    fn on_stall(&mut self, _world: &mut BreakWorld<'_>) -> Option<ThreadId> {
        None // default: VM releases the oldest suspension (§5.2)
    }
}

impl<'m> RaceVerifier<'m> {
    /// Creates a verifier over `module`.
    pub fn new(module: &'m Module, config: RaceVerifyConfig) -> Self {
        RaceVerifier { module, config }
    }

    /// Verifier with default configuration.
    pub fn with_defaults(module: &'m Module) -> Self {
        Self::new(module, RaceVerifyConfig::default())
    }

    /// Attempts to catch `report`'s race in the racing moment, trying
    /// up to `max_schedules` seeds.
    pub fn verify(
        &self,
        entry: FuncId,
        input: &ProgramInput,
        report: &RaceReport,
    ) -> RaceVerification {
        let write_site = if report.first.is_write {
            report.first.site
        } else {
            report.second.site
        };
        let read_site = if !report.first.is_write {
            Some(report.first.site)
        } else if !report.second.is_write {
            Some(report.second.site)
        } else {
            None
        };
        let first_site = match self.config.order {
            RaceOrder::WriteFirst => Some(write_site),
            RaceOrder::ReadFirst => read_site,
        };
        let start = Instant::now();
        let mut injected_faults = 0u64;
        let mut all_step_limit = true;
        for k in 0..self.config.max_schedules {
            if let Some(d) = self.config.deadline {
                if k > 0 && start.elapsed() >= d {
                    return RaceVerification {
                        confirmed: false,
                        verdict: VerifyOutcome::Aborted {
                            cause: AbortCause::DeadlineExceeded,
                            attempts: k,
                        },
                        attempts: k,
                        hints: None,
                        outcome: None,
                        injected_faults,
                    };
                }
            }
            let mut controller = RvController {
                site_a: report.first.site,
                site_b: report.second.site,
                first_site,
                confirmed: None,
            };
            let mut vm = Vm::new(
                self.module,
                entry,
                input.clone(),
                self.config.run_config.clone(),
            );
            vm.add_breakpoint(Breakpoint::at(report.first.site));
            vm.add_breakpoint(Breakpoint::at(report.second.site));
            let mut sched = RandomScheduler::new(self.config.base_seed + k);
            let outcome = vm.run_controlled(&mut sched, &mut owl_vm::NullSink, &mut controller);
            injected_faults += outcome.injected_faults.len() as u64;
            if outcome.status != ExitStatus::StepLimit {
                all_step_limit = false;
            }
            if let Some(mut hints) = controller.confirmed {
                hints.global_name =
                    owl_race::global_name_for_addr(self.module, hints.addr).map(str::to_string);
                return RaceVerification {
                    confirmed: true,
                    verdict: VerifyOutcome::Confirmed,
                    attempts: k + 1,
                    hints: Some(hints),
                    outcome: Some(outcome),
                    injected_faults,
                };
            }
        }
        // The budget ran dry. If no attempt ever ran to completion the
        // verifier established nothing — abort rather than report a
        // (misleading) elimination.
        let verdict = if all_step_limit && self.config.max_schedules > 0 {
            VerifyOutcome::Aborted {
                cause: AbortCause::StepBudgetExhausted,
                attempts: self.config.max_schedules,
            }
        } else {
            VerifyOutcome::Unconfirmed
        };
        RaceVerification {
            confirmed: false,
            verdict,
            attempts: self.config.max_schedules,
            hints: None,
            outcome: None,
            injected_faults,
        }
    }

    /// Renders the §5.2 hint block for a verification.
    pub fn format_hints(&self, v: &RaceVerification) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let Some(h) = &v.hints else {
            return match v.verdict {
                VerifyOutcome::Aborted { cause, attempts } => {
                    format!("race verification ABORTED after {attempts} schedule(s): {cause}\n")
                }
                _ => format!("race not verified after {} schedules\n", v.attempts),
            };
        };
        let name = h
            .global_name
            .clone()
            .unwrap_or_else(|| format!("{:#x}", h.addr));
        let _ = writeln!(out, "race VERIFIED on `{name}` (attempt {}):", v.attempts);
        for (label, a) in [("waiting", &h.waiting), ("arriving", &h.arriving)] {
            let _ = writeln!(
                out,
                "  {label}: {} {} at {} — about to {} (current value {:?}, type {})",
                a.tid,
                if a.is_write { "write" } else { "read" },
                self.module.format_loc(a.site),
                match a.value_to_write {
                    Some(v) => format!("write {v}"),
                    None => "read".to_string(),
                },
                a.current_value,
                a.ty,
            );
        }
        if h.null_pointer_risk {
            let _ = writeln!(out, "  hint: NULL pointer dereference possible");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};
    use owl_race::{HbConfig, HbDetector};
    use owl_vm::RoundRobin;

    /// Writer stores NULL to a pointer-typed global; main reads it.
    fn ptr_race_module() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("pr");
        let fp = mb.global_init("f_op", 1, vec![1], Type::Ptr);
        let w = mb.declare_func("writer", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(fp);
            b.store(a, 0); // NULL
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(fp);
            b.load(a, Type::Ptr);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    fn first_report(m: &Module, main: FuncId) -> RaceReport {
        let mut det = HbDetector::new(HbConfig::default());
        let mut sched = RoundRobin::new(2);
        let vm = Vm::new(m, main, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        det.finish(m).remove(0)
    }

    #[test]
    fn verifies_real_race_with_hints() {
        let (m, main) = ptr_race_module();
        let report = first_report(&m, main);
        let verifier = RaceVerifier::with_defaults(&m);
        let v = verifier.verify(main, &ProgramInput::empty(), &report);
        assert!(v.confirmed, "race should be verifiable");
        let hints = v.hints.as_ref().expect("hints");
        assert_eq!(hints.global_name.as_deref(), Some("f_op"));
        assert!(
            hints.null_pointer_risk,
            "storing NULL into a pointer must be flagged: {hints:?}"
        );
        let text = verifier.format_hints(&v);
        assert!(text.contains("VERIFIED"));
        assert!(text.contains("NULL pointer"));
    }

    #[test]
    fn ordered_accesses_do_not_verify() {
        // Build a module where the same two sites exist but are ordered
        // by a join — the "race" can never be caught in the moment.
        let mut mb = ModuleBuilder::new("ord");
        let g = mb.global("g", 1, Type::I64);
        let w = mb.declare_func("writer", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            b.thread_join(t); // join *before* the read: ordered
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        // Hand-craft a (bogus) report over the ordered pair.
        let store_site = InstRef::new(m.func_by_name("writer").unwrap(), owl_ir::InstId(1));
        let load_site = InstRef::new(main_id, owl_ir::InstId(3));
        let fake = |site, is_write| owl_race::Access {
            tid: ThreadId(0),
            site,
            stack: std::sync::Arc::from(vec![].into_boxed_slice()),
            is_write,
            value: 0,
            ty: Type::I64,
        };
        let report = RaceReport {
            addr: owl_vm::mem::GLOBAL_BASE,
            global_name: Some("g".into()),
            first: fake(store_site, true),
            second: fake(load_site, false),
            read_hint: None,
        };
        let verifier = RaceVerifier::new(
            &m,
            RaceVerifyConfig {
                max_schedules: 5,
                ..RaceVerifyConfig::default()
            },
        );
        let v = verifier.verify(main_id, &ProgramInput::empty(), &report);
        assert!(!v.confirmed);
        assert_eq!(v.verdict, VerifyOutcome::Unconfirmed);
        assert_eq!(v.attempts, 5);
        assert_eq!(v.injected_faults, 0);
        assert!(verifier.format_hints(&v).contains("not verified"));
    }

    #[test]
    fn zero_deadline_aborts_after_first_attempt() {
        let (m, main) = ptr_race_module();
        let report = first_report(&m, main);
        // An already-expired deadline is noticed between attempts, so
        // exactly one attempt runs: it either confirms (the check never
        // fires) or the verifier aborts with attempts == 1.
        let verifier = RaceVerifier::new(
            &m,
            RaceVerifyConfig {
                deadline: Some(Duration::from_secs(0)),
                ..RaceVerifyConfig::default()
            },
        );
        let v = verifier.verify(main, &ProgramInput::empty(), &report);
        if !v.confirmed {
            assert_eq!(
                v.verdict,
                VerifyOutcome::Aborted {
                    cause: AbortCause::DeadlineExceeded,
                    attempts: 1,
                }
            );
            assert!(verifier.format_hints(&v).contains("ABORTED"));
        }
    }

    #[test]
    fn starved_step_budget_aborts() {
        // With a step budget too small to even spawn the second thread,
        // every attempt ends in StepLimit: the verifier must abort, not
        // claim the race was eliminated.
        let (m, main) = ptr_race_module();
        let report = first_report(&m, main);
        let verifier = RaceVerifier::new(
            &m,
            RaceVerifyConfig {
                max_schedules: 4,
                run_config: owl_vm::RunConfig {
                    max_steps: 2,
                    ..owl_vm::RunConfig::default()
                },
                ..RaceVerifyConfig::default()
            },
        );
        let v = verifier.verify(main, &ProgramInput::empty(), &report);
        assert!(!v.confirmed);
        assert_eq!(
            v.verdict,
            VerifyOutcome::Aborted {
                cause: AbortCause::StepBudgetExhausted,
                attempts: 4,
            }
        );
    }

    #[test]
    fn write_first_order_realizes_corruption() {
        // After confirmation with WriteFirst, the read must observe the
        // written value; the confirming run's outcome proves execution
        // completed.
        let (m, main) = ptr_race_module();
        let report = first_report(&m, main);
        let verifier = RaceVerifier::new(
            &m,
            RaceVerifyConfig {
                order: RaceOrder::WriteFirst,
                ..RaceVerifyConfig::default()
            },
        );
        let v = verifier.verify(main, &ProgramInput::empty(), &report);
        assert!(v.confirmed);
        let outcome = v.outcome.expect("outcome");
        assert_eq!(outcome.status, owl_vm::ExitStatus::Finished);
    }
}
