//! Apache models: three attacks on one server.
//!
//! * **Apache-2.0.48 double free** (known, Table 4, "PhP queries") —
//!   two PHP handler threads race on a shared request buffer pointer
//!   and both free it.
//! * **Apache-25520 HTML integrity violation** (previously unknown,
//!   §8.4, paper Figure 7) — `ap_buffered_log_writer` re-reads the
//!   racy `buf->outcnt` after its size check; a concurrent append moves
//!   the index so the `memcpy` runs past `outbuf` and corrupts the
//!   adjacent log file descriptor, after which the server writes its
//!   request log into another user's HTML file.
//! * **Apache-46215 integer-underflow DoS** (previously unknown, §8.4,
//!   paper Figure 8) — `worker->s->busy--` races and wraps the unsigned
//!   busyness counter to 2^64−1; the balancer then never selects the
//!   "busiest" worker again.
//!
//! Input words:
//! * `0` — log message length (benign 4, exploit 9)
//! * `1` — log message payload (the exploit plants the victim's HTML fd)
//! * `2`/`3` — the two log workers' delays between check and copy
//! * `4` — second decrementer issued (two requests finish at once)
//! * `5`/`6` — decrementer delays between check and decrement
//! * `7` — balancer delay before reading the counters
//! * `8` — PHP request issued (both handlers)
//! * `9`/`10` — PHP handler delays between load and free
//! * `15` — noise gate

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Operand, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, Violation};

const LOG_BUFSIZE: i64 = 16;
/// Marker word the server writes to its request log.
pub const LOG_MARKER: i64 = 777;
/// File descriptor of the victim's HTML file.
pub const HTML_FD: i64 = 5;

fn html_oracle(o: &ExecOutcome) -> bool {
    // The request log leaked into the victim's HTML file.
    o.file(HTML_FD).contains(&LOG_MARKER)
}

fn dos_oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| matches!(v, Violation::IntegerUnderflow { .. }))
        && o.outputs.contains(&(40, 1))
}

fn dfree_oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| matches!(v, Violation::DoubleFree { .. }))
}

/// Builds the Apache corpus program.
pub fn build() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("apache");
    // Figure 7 layout: the log fd sits directly after outbuf.
    let outcnt = mb.global("outcnt", 1, Type::I64);
    let outbuf = mb.global("outbuf", LOG_BUFSIZE as u32, Type::I64);
    let log_fd = mb.global_init("log_fd", 1, vec![1], Type::I64);
    let msg_buf = mb.global("msg_buf", 12, Type::I64);
    // Figure 8 state.
    let busy0 = mb.global_init("busy0", 1, vec![1], Type::I64);
    let busy1 = mb.global_init("busy1", 1, vec![3], Type::I64);
    let handler0 = mb.global("handler0", 1, Type::FuncPtr);
    let handler1 = mb.global("handler1", 1, Type::FuncPtr);
    // Double-free state.
    let req_buf = mb.global("req_buf", 1, Type::Ptr);

    let noise = attach_noise(
        &mut mb,
        "apache/noise.c",
        &NoiseSpec {
            always_counters: 2,
            gated_counters: 30,
            adhoc_syncs: 7,
            locked_counters: 2,
            gate_input: 15,
        },
    );

    let worker_h0 = mb.declare_func("worker_handler0", 1);
    let worker_h1 = mb.declare_func("worker_handler1", 1);
    let log_writer_a = mb.declare_func("log_writer_a", 1);
    let log_writer_b = mb.declare_func("log_writer_b", 1);
    let decr_a = mb.declare_func("busy_decrement_a", 1);
    let decr_b = mb.declare_func("busy_decrement_b", 1);
    let balancer = mb.declare_func("find_best_bybusyness", 1);
    let php_a = mb.declare_func("php_handler_a", 1);
    let php_b = mb.declare_func("php_handler_b", 1);
    let main = mb.declare_func("main", 0);

    for (f, chan_val) in [(worker_h0, 0i64), (worker_h1, 1)] {
        let mut b = mb.build_func(f);
        b.loc("proxy/worker.c", 30);
        b.output(40, chan_val);
        b.ret(None);
    }

    // ap_buffered_log_writer (Figure 7), two instances at distinct
    // sites.
    for (f, delay_idx, line) in [(log_writer_a, 2i64, 1327u32), (log_writer_b, 3, 1527)] {
        let mut b = mb.build_func(f);
        b.loc("loggers/mod_log_config.c", line);
        let len = b.input(0);
        // if (len + buf->outcnt > LOG_BUFSIZE) flush_log(buf);
        let oa = b.global_addr(outcnt);
        b.line(line + 15);
        let c1 = b.load(oa, Type::I64);
        let sum = b.add(c1, len);
        let over = b.cmp(Pred::Gt, sum, LOG_BUFSIZE);
        let flush = b.block();
        let append = b.block();
        b.br(over, flush, append);
        b.switch_to(flush);
        b.line(line + 16);
        b.store(oa, 0); // flush_log(buf)
        b.jmp(append);
        b.switch_to(append);
        let d = b.input(delay_idx);
        b.io_delay(d);
        // s = &buf->outbuf[buf->outcnt]; memcpy(s, strs[i], strl[i]);
        b.line(line + 31);
        let c2 = b.load(oa, Type::I64); // the racy re-read
        let ba = b.global_addr(outbuf);
        let dst = b.gep(ba, c2);
        let ma = b.global_addr(msg_buf);
        b.line(line + 32);
        b.memcopy(dst, ma, len); // the vulnerable site (overflow)
        b.line(line + 35);
        let c3 = b.add(c2, len);
        b.store(oa, c3); // buf->outcnt += len
                         // Write the request log through the (possibly corrupted) fd.
        b.line(line + 40);
        let fa = b.global_addr(log_fd);
        let fd = b.load(fa, Type::I64);
        b.file_access(fd, LOG_MARKER);
        b.ret(None);
    }

    // busy decrementers (Figure 8): if (worker->s->busy)
    // worker->s->busy--;
    for (f, delay_idx, gated, line) in [(decr_a, 5i64, false, 588u32), (decr_b, 6, true, 616)] {
        let mut b = mb.build_func(f);
        b.loc("proxy/proxy_util.c", line);
        let (go, out) = (b.block(), b.block());
        if gated {
            let en = b.input(4);
            b.br(en, go, out);
        } else {
            b.jmp(go);
        }
        b.switch_to(go);
        let ba = b.global_addr(busy0);
        b.line(line + 28);
        let v = b.load(ba, Type::I64); // if (worker->s->busy)
        let pos = b.cmp(Pred::Gt, v, 0);
        let dec = b.block();
        b.br(pos, dec, out);
        b.switch_to(dec);
        let d = b.input(delay_idx);
        b.io_delay(d);
        b.line(line + 29);
        let v2 = b.load(ba, Type::I64);
        let v3 = b.sub_unsigned(v2, 1); // worker->s->busy-- (unsigned!)
        b.store(ba, v3);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }

    {
        // find_best_bybusyness (Figure 8): pick the least-busy worker
        // and dispatch through its handler.
        let mut b = mb.build_func(balancer);
        b.loc("proxy/proxy_util.c", 1138);
        let d = b.input(7);
        b.io_delay(d);
        let b0a = b.global_addr(busy0);
        b.line(1192);
        let b0 = b.load(b0a, Type::I64); // racy read of the counter
        let b1a = b.global_addr(busy1);
        let b1 = b.load(b1a, Type::I64);
        b.line(1193);
        let less = b.cmp(Pred::LtU, b0, b1); // unsigned comparison
        let pick0 = b.block();
        let pick1 = b.block();
        let out = b.block();
        b.br(less, pick0, pick1);
        b.switch_to(pick0);
        b.line(1195);
        let h0a = b.global_addr(handler0);
        let h0 = b.load(h0a, Type::FuncPtr);
        b.call_indirect(h0, vec![Operand::Const(0)]); // mycandidate = worker
        b.jmp(out);
        b.switch_to(pick1);
        b.line(1197);
        let h1a = b.global_addr(handler1);
        let h1 = b.load(h1a, Type::FuncPtr);
        b.call_indirect(h1, vec![Operand::Const(0)]);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }

    // PHP handlers (double free).
    for (f, delay_idx, line) in [(php_a, 9i64, 210u32), (php_b, 10, 310)] {
        let mut b = mb.build_func(f);
        b.loc("php/request.c", line);
        let en = b.input(8);
        let (go, out) = (b.block(), b.block());
        b.br(en, go, out);
        b.switch_to(go);
        let ra = b.global_addr(req_buf);
        b.line(line + 4);
        let p = b.load(ra, Type::Ptr); // racy read
        let live = b.cmp(Pred::Ne, p, 0);
        let fr = b.block();
        b.br(live, fr, out);
        b.switch_to(fr);
        let d = b.input(delay_idx);
        b.io_delay(d);
        b.line(line + 8);
        b.free(p); // the double-free site
        b.store(ra, 0);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }

    {
        let mut b = mb.build_func(main);
        b.loc("server/main.c", 1);
        // Handler table + request buffer + attacker-controlled message.
        let h0 = b.func_addr(worker_h0);
        let h0a = b.global_addr(handler0);
        b.store(h0a, h0);
        let h1 = b.func_addr(worker_h1);
        let h1a = b.global_addr(handler1);
        b.store(h1a, h1);
        let req = b.malloc(2);
        let ra = b.global_addr(req_buf);
        b.store(ra, req);
        let payload = b.input(1);
        let ma = b.global_addr(msg_buf);
        for i in 0..12 {
            let slot = b.gep(ma, i);
            b.store(slot, payload);
        }
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        for f in [
            log_writer_a,
            log_writer_b,
            decr_a,
            decr_b,
            balancer,
            php_a,
            php_b,
        ] {
            tids.push(b.thread_create(f, 0));
        }
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "Apache",
        module,
        entry: main,
        workloads: vec![
            ProgramInput::new(vec![4, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0]).with_label("ab benchmark"),
            ProgramInput::new(vec![4, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1])
                .with_label("ab benchmark (extended coverage)"),
        ],
        exploit_inputs: vec![
            ProgramInput::new(vec![9, HTML_FD, 250, 20, 0, 0, 0, 0, 0, 0, 0])
                .with_label("oversized log entry"),
            ProgramInput::new(vec![4, 0, 0, 0, 1, 120, 120, 500, 0, 0, 0])
                .with_label("paired request completions"),
            ProgramInput::new(vec![4, 0, 0, 0, 0, 0, 0, 0, 1, 150, 150]).with_label("PhP queries"),
        ],
        attacks: vec![
            AttackSpec {
                id: "apache-php-double-free",
                version: "Apache-2.0.48",
                vuln_type: "Double Free",
                subtle_inputs: "PhP queries",
                advisory: None,
                known: true,
                race_global: "req_buf",
                expected_class: VulnClass::MemoryOp,
                expected_dep: Some("DATA_DEP"),
                oracle: dfree_oracle,
            },
            AttackSpec {
                id: "apache-25520-html-integrity",
                version: "Apache-2.0.48",
                vuln_type: "HTML Integrity Violation",
                subtle_inputs: "Oversized log entry",
                advisory: Some("Apache bug 25520"),
                known: false,
                race_global: "outcnt",
                expected_class: VulnClass::MemoryOp,
                expected_dep: Some("DATA_DEP"),
                oracle: html_oracle,
            },
            AttackSpec {
                id: "apache-46215-dos",
                version: "Apache-2.2.x (bug 46215)",
                vuln_type: "Integer Overflow DoS",
                subtle_inputs: "Paired request completions",
                advisory: Some("Apache bug 46215"),
                known: false,
                race_global: "busy0",
                expected_class: VulnClass::NullDeref,
                expected_dep: Some("DATA_DEP"),
                oracle: dos_oracle,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn workloads_terminate() {
        let p = build();
        for w in &p.workloads {
            let mut sched = RandomScheduler::new(9);
            let o = Vm::run_quiet(&p.module, p.entry, w.clone(), &mut sched);
            assert_eq!(o.status, owl_vm::ExitStatus::Finished);
        }
    }

    #[test]
    fn html_integrity_attack_triggers() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            30,
            html_oracle,
        );
        assert!(tries.is_some(), "log bytes must land in the HTML file");
    }

    #[test]
    fn balancer_dos_triggers() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[1],
            &RunConfig::default(),
            1,
            20,
            dos_oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn php_double_free_triggers() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[2],
            &RunConfig::default(),
            1,
            20,
            dfree_oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn benign_log_traffic_keeps_html_clean() {
        let p = build();
        for seed in 0..5 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.primary_workload().clone(), &mut sched);
            assert!(!html_oracle(&o), "seed {seed}");
            // Log entries went to the real log fd.
            assert!(!o.file(1).is_empty(), "seed {seed}");
        }
    }
}
