//! Corpus program descriptors.
//!
//! Each corpus entry models one of the paper's studied programs: the
//! attack logic reproduced from the paper's figures, surrounded by
//! realistic benign-race noise, with the workloads ("common performance
//! benchmarks", §3) and the exploit inputs (Table 4's subtle inputs)
//! the evaluation drives them with.

use owl_ir::{FuncId, Module, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput};

/// Decides whether an execution outcome shows the attack succeeded.
pub type AttackOracle = fn(&ExecOutcome) -> bool;

/// One concurrency attack hosted by a corpus program.
#[derive(Clone)]
pub struct AttackSpec {
    /// Stable identifier, e.g. `libsafe-2.0-16`.
    pub id: &'static str,
    /// The program version the paper attributes the attack to
    /// (Table 4's first column).
    pub version: &'static str,
    /// Vulnerability type as reported in Table 4 (e.g. "Buffer
    /// Overflow").
    pub vuln_type: &'static str,
    /// The subtle inputs column of Table 4.
    pub subtle_inputs: &'static str,
    /// CVE / bug-tracker identifier, when one exists.
    pub advisory: Option<&'static str>,
    /// `true` for the known attacks of §8.3, `false` for the
    /// previously unknown ones of §8.4.
    pub known: bool,
    /// Name of the racy global variable at the root of the attack.
    pub race_global: &'static str,
    /// Vulnerable-site class Algorithm 1 should reach.
    pub expected_class: VulnClass,
    /// Ground-truth dependence kind of the hint — `"DATA_DEP"` or
    /// `"CTRL_DEP"`, matching the display form of `owl_static`'s
    /// `DepKind` (kept as a string so the corpus does not depend on
    /// the analyzer crate). `None` when the kind is not pinned.
    pub expected_dep: Option<&'static str>,
    /// Ground-truth oracle over an execution outcome.
    pub oracle: AttackOracle,
}

impl std::fmt::Debug for AttackSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackSpec")
            .field("id", &self.id)
            .field("version", &self.version)
            .field("vuln_type", &self.vuln_type)
            .field("known", &self.known)
            .field("race_global", &self.race_global)
            .finish_non_exhaustive()
    }
}

/// One studied program: module, entry point, inputs, and its attacks.
#[derive(Clone, Debug)]
pub struct CorpusProgram {
    /// Display name used in the paper's tables ("Apache", "MySQL", …).
    pub name: &'static str,
    /// The program model.
    pub module: Module,
    /// Entry function (`main`).
    pub entry: FuncId,
    /// Test workloads. `workloads[0]` is the *primary* workload: the
    /// one the dynamic verifiers re-execute (reproducing the paper's
    /// one-input verification limitation, §5.2). Later entries model
    /// additional test traffic that exposes more (benign) races.
    pub workloads: Vec<ProgramInput>,
    /// Exploit inputs (Table 4's subtle inputs): candidate inputs the
    /// vulnerability verifier sweeps.
    pub exploit_inputs: Vec<ProgramInput>,
    /// The attacks this program hosts.
    pub attacks: Vec<AttackSpec>,
}

impl CorpusProgram {
    /// Instruction count — the study's LoC proxy (Table 1).
    pub fn loc(&self) -> usize {
        self.module.total_insts()
    }

    /// The primary workload.
    pub fn primary_workload(&self) -> &ProgramInput {
        &self.workloads[0]
    }

    /// Attack spec by id.
    pub fn attack(&self, id: &str) -> Option<&AttackSpec> {
        self.attacks.iter().find(|a| a.id == id)
    }
}
