//! Libsafe-2.0-16 (paper Figure 1): the `dying` flag race.
//!
//! Libsafe intercepts libc memory functions and checks for stack
//! overflows. When it detects one it sets a global `dying` flag and
//! kills the process "shortly" — but `dying` is read without a lock by
//! every concurrent `stack_check`, which *returns 0 (check passed!)
//! when the flag is set*. In the window between `dying = 1` and the
//! actual kill, another thread's `strcpy` bypasses the overflow check
//! entirely: the attacker overflows the buffer, overwrites an adjacent
//! function pointer, and gets their code executed.
//!
//! Model layout: `stack_buf[8]` sits directly before `shell_fptr` in
//! global memory, so a copy longer than 8 words lands in the pointer
//! the dispatcher later calls.
//!
//! Input words:
//! * `0` — copy length (benign ≤ 8, exploit > 8)
//! * `1` — attacker payload planted in the source buffer
//! * `2` — detector-thread delay before `libsafe_die()`
//! * `3` — worker delay before `libsafe_strcpy()`
//! * `4` — `libsafe_die`'s delay between `dying = 1` and the kill
//! * `15` — benign-noise gate (see [`crate::noise`])

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Operand, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, Violation};

/// The payload value the exploit plants; calling it as a function
/// pointer is the modeled code injection.
pub const PAYLOAD: i64 = 0xbad;

const SRC_WORDS: u32 = 12;
const BUF_WORDS: u32 = 8;

/// Ground-truth oracle: the corrupted shell pointer got called.
fn oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| matches!(v, Violation::CorruptFuncPtr { value } if *value == PAYLOAD))
}

/// Builds the Libsafe corpus program.
pub fn build() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("libsafe");
    let dying = mb.global("dying", 1, Type::I64);
    let killed = mb.global("killed", 1, Type::I64);
    let stack_buf = mb.global("stack_buf", BUF_WORDS, Type::I64);
    let shell_fptr = mb.global("shell_fptr", 1, Type::FuncPtr);
    let attacker_src = mb.global("attacker_src", SRC_WORDS, Type::I64);

    let noise = attach_noise(
        &mut mb,
        "libsafe/noise.c",
        &NoiseSpec {
            always_counters: 0,
            gated_counters: 0,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let benign_handler = mb.declare_func("benign_handler", 1);
    let libsafe_die = mb.declare_func("libsafe_die", 0);
    let stack_check = mb.declare_func("stack_check", 1);
    let libsafe_strcpy = mb.declare_func("libsafe_strcpy", 1);
    let detector_thread = mb.declare_func("overflow_detector", 1);
    let worker_thread = mb.declare_func("request_worker", 1);
    let main = mb.declare_func("main", 0);

    {
        let mut b = mb.build_func(benign_handler);
        b.loc("handler.c", 5);
        b.output(9, 1);
        b.ret(None);
    }
    {
        // libsafe_die(): dying = 1; ... kill the process shortly.
        let mut b = mb.build_func(libsafe_die);
        b.loc("util.c", 1636);
        let da = b.global_addr(dying);
        b.line(1640);
        b.store(da, 1);
        let grace = b.input(4);
        b.io_delay(grace);
        let ka = b.global_addr(killed);
        b.line(1645);
        b.store(ka, 1);
        b.ret(None);
    }
    {
        // stack_check(len): if (dying) return 0;  // bypass
        //                   if (len <= BUF) return 0; else die, return 1.
        let mut b = mb.build_func(stack_check);
        b.loc("util.c", 117);
        let da = b.global_addr(dying);
        b.line(145);
        let d = b.load(da, Type::I64); // the racy read
        let bypass = b.block();
        let check = b.block();
        b.br(d, bypass, check);
        b.switch_to(bypass);
        b.line(146);
        b.ret(Some(Operand::Const(0)));
        b.switch_to(check);
        b.line(148);
        let fits = b.cmp(Pred::Le, Operand::Param(0), i64::from(BUF_WORDS));
        let ok = b.block();
        let blocked = b.block();
        b.br(fits, ok, blocked);
        b.switch_to(ok);
        b.ret(Some(Operand::Const(0)));
        b.switch_to(blocked);
        b.line(149);
        b.call(libsafe_die, vec![]);
        b.ret(Some(Operand::Const(1)));
    }
    {
        // libsafe_strcpy(len): if (killed) return;
        //   if (stack_check(len) == 0) strcpy(buf, src, len);
        let mut b = mb.build_func(libsafe_strcpy);
        b.loc("intercept.c", 151);
        let ka = b.global_addr(killed);
        let k = b.load(ka, Type::I64);
        let dead = b.block();
        let alive = b.block();
        b.br(k, dead, alive);
        b.switch_to(dead);
        b.ret(None);
        b.switch_to(alive);
        b.line(164);
        let r = b.call(stack_check, vec![Operand::Param(0)]);
        let passed = b.cmp(Pred::Eq, r, 0);
        let copy = b.block();
        let done = b.block();
        b.br(passed, copy, done);
        b.switch_to(copy);
        b.line(165);
        let dst = b.global_addr(stack_buf);
        let src = b.global_addr(attacker_src);
        b.memcopy(dst, src, Operand::Param(0)); // the vulnerable site
        b.jmp(done);
        b.switch_to(done);
        b.ret(None);
    }
    {
        // The thread that detected a (separate) overflow and is dying.
        let mut b = mb.build_func(detector_thread);
        b.loc("detector.c", 10);
        let d = b.input(2);
        b.io_delay(d);
        b.call(libsafe_die, vec![]);
        b.ret(None);
    }
    {
        // The worker serving the attacker's copy request.
        let mut b = mb.build_func(worker_thread);
        b.loc("worker.c", 20);
        let d = b.input(3);
        b.io_delay(d);
        let len = b.input(0);
        b.call(libsafe_strcpy, vec![len.into()]);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        b.loc("main.c", 1);
        // Install the legitimate handler and the attacker-controlled
        // source contents.
        let fa = b.func_addr(benign_handler);
        let sa = b.global_addr(shell_fptr);
        b.store(sa, fa);
        let payload = b.input(1);
        let src = b.global_addr(attacker_src);
        for i in 0..SRC_WORDS {
            let slot = b.gep(src, i64::from(i));
            b.store(slot, payload);
        }
        // Spawn noise + the two racing threads.
        let mut tids = Vec::new();
        for &f in &noise.threads {
            tids.push(b.thread_create(f, 0));
        }
        tids.push(b.thread_create(detector_thread, 0));
        tids.push(b.thread_create(worker_thread, 0));
        for t in tids {
            b.thread_join(t);
        }
        // Dispatch through the (possibly corrupted) shell pointer.
        b.line(40);
        let f = b.load(sa, Type::FuncPtr);
        b.call_indirect(f, vec![Operand::Const(0)]);
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "Libsafe",
        module,
        entry: main,
        workloads: vec![ProgramInput::new(vec![4, 0, 0, 0, 0]).with_label("benign copy")],
        exploit_inputs: vec![ProgramInput::new(vec![
            10,      // len: past the 8-word buffer
            PAYLOAD, // planted pointer
            50,      // detector delay: die mid-run
            120,     // worker delay: check lands inside the dying window
            400,     // die grace period: wide window before the kill
        ])
        .with_label("loops with strcpy()")],
        attacks: vec![AttackSpec {
            id: "libsafe-overflow",
            version: "Libsafe-2.0-16",
            vuln_type: "Buffer Overflow",
            subtle_inputs: "Loops with strcpy()",
            advisory: None,
            known: true,
            race_global: "dying",
            expected_class: VulnClass::MemoryOp,
            expected_dep: Some("CTRL_DEP"),
            oracle,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn benign_workload_never_attacks() {
        let p = build();
        for seed in 0..10 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.primary_workload().clone(), &mut sched);
            assert_eq!(o.status, owl_vm::ExitStatus::Finished, "seed {seed}");
            assert!(!oracle(&o), "benign input must not trigger: seed {seed}");
            // The legitimate handler ran.
            assert!(o.outputs.contains(&(9, 1)));
        }
    }

    #[test]
    fn exploit_triggers_within_twenty_runs() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            oracle,
        );
        assert!(
            tries.is_some(),
            "exploit should land within 20 re-executions (§3.1 finding III)"
        );
    }

    #[test]
    fn overflow_without_race_is_blocked() {
        // Long copy but the detector only dies long after the worker is
        // done: stack_check sees dying == 0 and blocks the copy.
        let p = build();
        let input = ProgramInput::new(vec![10, PAYLOAD, 2000, 0, 0]);
        let mut hit = false;
        for seed in 0..10 {
            let mut sched = RandomScheduler::new(1000 + seed);
            let o = Vm::run_quiet(&p.module, p.entry, input.clone(), &mut sched);
            hit |= oracle(&o);
        }
        assert!(
            !hit,
            "without the widened window the check should block the copy"
        );
    }

    #[test]
    fn race_on_dying_is_reported() {
        let p = build();
        let r = owl_race::explore(
            &p.module,
            p.entry,
            &p.workloads,
            &owl_race::ExplorerConfig {
                runs_per_input: 20,
                ..Default::default()
            },
        );
        assert!(
            r.reports_on("dying").next().is_some(),
            "the dying race must be in the detector output: {:?}",
            r.reports
        );
    }
}
