//! Benign-race noise.
//!
//! The paper's central measurement is that real programs flood race
//! detectors with *benign* reports that bury the vulnerable ones
//! (94.3% of reports were pruned, Table 3). The corpus reproduces the
//! three kinds of traffic behind that flood:
//!
//! * **always-on racy counters** — statistics counters updated without
//!   synchronization (Apache's `busy` counters before the attack was
//!   understood, MySQL status variables). Real races, verifiable, and
//!   benign.
//! * **input-gated racy counters** — racy code only exercised by some
//!   test inputs. The detector (which sweeps the whole workload list)
//!   reports them; the dynamic race verifier, which re-executes the
//!   *primary* workload (§5.2's one-input limitation), cannot confirm
//!   them — these become the race-verifier eliminations of Table 3.
//! * **adhoc synchronizations** — busy-wait flag/data pairs that the
//!   static detector (§5.1) recognizes and annotates away.
//!
//! Plus properly locked counters, which must never be reported at all.

use owl_ir::{FuncId, ModuleBuilder, Pred, Type};

/// How much of each noise kind to attach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoiseSpec {
    /// Racy counters touched under every workload.
    pub always_counters: usize,
    /// Racy counters touched only when `input[gate_input] == 1`.
    pub gated_counters: usize,
    /// Busy-wait adhoc synchronization instances.
    pub adhoc_syncs: usize,
    /// Properly locked counters (sanity: zero reports).
    pub locked_counters: usize,
    /// Input word that enables the gated noise.
    pub gate_input: i64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec {
            always_counters: 2,
            gated_counters: 4,
            adhoc_syncs: 1,
            locked_counters: 1,
            gate_input: 15,
        }
    }
}

/// Thread entry points created by [`attach_noise`]; the program's main
/// must spawn (and may join) each with argument 0.
#[derive(Clone, Debug)]
pub struct NoiseHandles {
    /// Noise thread entry functions.
    pub threads: Vec<FuncId>,
}

/// Adds the noise subsystem to a module under construction. `file` is
/// the pseudo source file used for locations (e.g. `"apache/noise.c"`).
pub fn attach_noise(mb: &mut ModuleBuilder, file: &str, spec: &NoiseSpec) -> NoiseHandles {
    let mut threads = Vec::new();

    // Globals.
    let always: Vec<_> = (0..spec.always_counters)
        .map(|i| mb.global(format!("noise_stat_{i}"), 1, Type::I64))
        .collect();
    let gated: Vec<_> = (0..spec.gated_counters)
        .map(|i| mb.global(format!("noise_gated_{i}"), 1, Type::I64))
        .collect();
    let locked: Vec<_> = (0..spec.locked_counters)
        .map(|i| mb.global(format!("noise_locked_{i}"), 1, Type::I64))
        .collect();
    let noise_lock = mb.global("noise_lock", 1, Type::I64);
    let adhoc_flags: Vec<_> = (0..spec.adhoc_syncs)
        .map(|i| mb.global(format!("adhoc_flag_{i}"), 1, Type::I64))
        .collect();
    let adhoc_data: Vec<_> = (0..spec.adhoc_syncs)
        .map(|i| mb.global(format!("adhoc_data_{i}"), 1, Type::I64))
        .collect();

    // Two racy updater threads touching the same counters at distinct
    // sites.
    for variant in 0..2 {
        let f = mb.declare_func(format!("noise_updater_{variant}"), 1);
        threads.push(f);
        let mut b = mb.build_func(f);
        let mut line = 100 * (variant as u32 + 1);
        b.loc(file, line);
        for &g in &always {
            line += 3;
            b.line(line);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let v2 = b.add(v, 1);
            b.store(a, v2);
        }
        // Gated section.
        let gate = b.input(spec.gate_input);
        let on = b.cmp(Pred::Eq, gate, 1);
        let gated_bb = b.block();
        let done_bb = b.block();
        b.br(on, gated_bb, done_bb);
        b.switch_to(gated_bb);
        for &g in &gated {
            line += 3;
            b.line(line);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let v2 = b.add(v, 1);
            b.store(a, v2);
        }
        b.jmp(done_bb);
        b.switch_to(done_bb);
        // Locked section.
        let la = b.global_addr(noise_lock);
        b.lock(la);
        for &g in &locked {
            line += 3;
            b.line(line);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let v2 = b.add(v, 1);
            b.store(a, v2);
        }
        b.unlock(la);
        b.ret(None);
    }

    // Adhoc producer / consumer.
    if spec.adhoc_syncs > 0 {
        let producer = mb.declare_func("adhoc_producer", 1);
        let consumer = mb.declare_func("adhoc_consumer", 1);
        threads.push(producer);
        threads.push(consumer);
        {
            let mut b = mb.build_func(producer);
            b.loc(file, 300);
            for (i, (&flag, &data)) in adhoc_flags.iter().zip(&adhoc_data).enumerate() {
                b.line(300 + 2 * i as u32);
                let da = b.global_addr(data);
                b.store(da, 7 + i as i64);
                let fa = b.global_addr(flag);
                b.store(fa, 1); // the constant flag store (§5.1)
                b.yield_now();
            }
            b.ret(None);
        }
        {
            let mut b = mb.build_func(consumer);
            b.loc(file, 400);
            for (i, (&flag, &data)) in adhoc_flags.iter().zip(&adhoc_data).enumerate() {
                b.line(400 + 2 * i as u32);
                let fa = b.global_addr(flag);
                let head = b.block();
                let exit = b.block();
                b.jmp(head);
                b.switch_to(head);
                let v = b.load(fa, Type::I64);
                let set = b.cmp(Pred::Ne, v, 0);
                b.br(set, exit, head);
                b.switch_to(exit);
                let da = b.global_addr(data);
                b.load(da, Type::I64);
            }
            b.ret(None);
        }
    }

    NoiseHandles { threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{verify_module, Module};
    use owl_vm::{ProgramInput, RandomScheduler, Vm};

    fn noise_only_module(spec: &NoiseSpec) -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("noise-only");
        let handles = attach_noise(&mut mb, "noise.c", spec);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let tids: Vec<_> = handles
                .threads
                .iter()
                .map(|&f| b.thread_create(f, 0))
                .collect();
            for t in tids {
                b.thread_join(t);
            }
            b.ret(None);
        }
        (mb.finish(), main)
    }

    #[test]
    fn noise_module_verifies_and_terminates() {
        let (m, main) = noise_only_module(&NoiseSpec::default());
        verify_module(&m).expect("noise module well-formed");
        for seed in 0..3 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut sched);
            assert_eq!(o.status, owl_vm::ExitStatus::Finished, "seed {seed}");
            assert!(o.violations.is_empty());
        }
    }

    #[test]
    fn gate_input_controls_gated_races() {
        let spec = NoiseSpec {
            always_counters: 1,
            gated_counters: 3,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 0,
        };
        let (m, main) = noise_only_module(&spec);
        let open = owl_race::explore(
            &m,
            main,
            &[ProgramInput::new(vec![1])],
            &owl_race::ExplorerConfig {
                runs_per_input: 30,
                ..Default::default()
            },
        );
        let closed = owl_race::explore(
            &m,
            main,
            &[ProgramInput::new(vec![0])],
            &owl_race::ExplorerConfig {
                runs_per_input: 30,
                ..Default::default()
            },
        );
        let gated_open = open
            .reports
            .iter()
            .filter(|r| {
                r.global_name
                    .as_deref()
                    .is_some_and(|n| n.starts_with("noise_gated"))
            })
            .count();
        let gated_closed = closed
            .reports
            .iter()
            .filter(|r| {
                r.global_name
                    .as_deref()
                    .is_some_and(|n| n.starts_with("noise_gated"))
            })
            .count();
        assert!(gated_open > 0, "gate=1 must expose gated races");
        assert_eq!(gated_closed, 0, "gate=0 must hide gated races");
    }

    #[test]
    fn locked_counters_never_reported() {
        let (m, main) = noise_only_module(&NoiseSpec::default());
        let r = owl_race::explore(
            &m,
            main,
            &[ProgramInput::new(vec![0]), ProgramInput::new(vec![1])],
            &owl_race::ExplorerConfig {
                runs_per_input: 20,
                ..Default::default()
            },
        );
        assert!(
            !r.reports.iter().any(|rep| {
                rep.global_name
                    .as_deref()
                    .is_some_and(|n| n.starts_with("noise_locked"))
            }),
            "{:?}",
            r.reports
        );
    }

    #[test]
    fn adhoc_instances_detected_by_static_analysis() {
        let spec = NoiseSpec {
            always_counters: 0,
            gated_counters: 0,
            adhoc_syncs: 3,
            locked_counters: 0,
            gate_input: 0,
        };
        let (m, main) = noise_only_module(&spec);
        let r = owl_race::explore(
            &m,
            main,
            &[],
            &owl_race::ExplorerConfig {
                runs_per_input: 30,
                ..Default::default()
            },
        );
        let det = owl_static::AdhocSyncDetector::new(&m);
        let anns = det.detect(&r.reports);
        assert_eq!(anns.len(), 3, "one annotation per instance: {anns:?}");
    }
}
