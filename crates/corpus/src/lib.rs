//! # owl-corpus
//!
//! IR models of the concurrency attacks studied in *"Understanding and
//! Detecting Concurrency Attacks"* (DSN 2018), embedded in realistic
//! benign-race noise, with workloads, exploit inputs, and ground-truth
//! attack oracles.
//!
//! The paper evaluated OWL on six programs (Apache, Chrome, Libsafe,
//! Linux, MySQL, SSDB) plus a memcached noise baseline. Each module
//! here reproduces the program's attack logic line-for-line from the
//! paper's figures — the Libsafe `dying` flag (Fig. 1), the
//! uselib/msync `f_op` race (Fig. 2), the SSDB binlog shutdown UAF
//! (Fig. 6), the Apache log-buffer overflow (Fig. 7) and busy-counter
//! underflow (Fig. 8), and the MySQL FLUSH PRIVILEGES / SET PASSWORD
//! races — surrounded by the kinds of benign traffic that made the
//! real detectors flood (racy statistics counters, input-gated racy
//! paths, adhoc busy-wait synchronization).
//!
//! ## Example
//!
//! ```
//! use owl_corpus::{all_programs, program};
//!
//! let libsafe = program("Libsafe").expect("corpus program");
//! assert_eq!(libsafe.attacks.len(), 1);
//! assert!(all_programs().len() >= 6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apache;
mod chrome;
pub mod extensions;
mod libsafe;
mod linux;
mod memcached;
mod mysql;
pub mod noise;
mod spec;
mod ssdb;

pub use spec::{AttackOracle, AttackSpec, CorpusProgram};

/// Builds every corpus program (the six studied programs plus the
/// memcached noise baseline of Table 3).
pub fn all_programs() -> Vec<CorpusProgram> {
    vec![
        apache::build(),
        chrome::build(),
        libsafe::build(),
        linux::build(),
        memcached::build(),
        mysql::build(),
        ssdb::build(),
    ]
}

/// Builds one corpus program by its display name.
pub fn program(name: &str) -> Option<CorpusProgram> {
    match name {
        "Apache" => Some(apache::build()),
        "Chrome" => Some(chrome::build()),
        "Libsafe" => Some(libsafe::build()),
        "Linux" => Some(linux::build()),
        "Memcached" => Some(memcached::build()),
        "MySQL" => Some(mysql::build()),
        "SSDB" => Some(ssdb::build()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::verify_module;

    #[test]
    fn all_programs_verify() {
        for p in all_programs() {
            verify_module(&p.module)
                .unwrap_or_else(|e| panic!("{} failed verification: {e:?}", p.name));
            assert!(!p.workloads.is_empty(), "{} needs a workload", p.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(program("Libsafe").is_some());
        assert!(program("SSDB").is_some());
        assert!(program("nope").is_none());
    }

    #[test]
    fn ten_attacks_total() {
        let n: usize = all_programs().iter().map(|p| p.attacks.len()).sum();
        assert_eq!(n, 10, "the evaluation reproduces 10 attacks (Table 2)");
    }

    #[test]
    fn corpus_round_trips_through_text() {
        // Every corpus program survives print → parse → print (covering
        // essentially the whole instruction set), and the parsed module
        // behaves identically in the VM.
        use owl_ir::{module_to_string, parse_module};
        use owl_vm::{ProgramInput, RoundRobin, Vm};
        for p in all_programs()
            .into_iter()
            .chain([extensions::bank_atomicity()])
        {
            let printed = module_to_string(&p.module);
            let parsed = parse_module(&printed)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", p.name));
            verify_module(&parsed).unwrap_or_else(|e| panic!("{}: {e:?}", p.name));
            // Parsing renumbers instructions densely in textual order,
            // so the fixed point is reached after one normalization.
            let normalized = module_to_string(&parsed);
            let reparsed = parse_module(&normalized)
                .unwrap_or_else(|e| panic!("{}: re-reparse failed: {e}", p.name));
            assert_eq!(
                module_to_string(&reparsed),
                normalized,
                "{}: printing must be a fixed point after normalization",
                p.name
            );
            // Behavioural equivalence under a deterministic schedule.
            let entry = parsed.func_by_name("main").expect("main exists");
            let input = p
                .workloads
                .first()
                .cloned()
                .unwrap_or_else(ProgramInput::empty);
            let mut s1 = RoundRobin::new(3);
            let o1 = Vm::run_quiet(&p.module, p.entry, input.clone(), &mut s1);
            let mut s2 = RoundRobin::new(3);
            let o2 = Vm::run_quiet(&parsed, entry, input, &mut s2);
            assert_eq!(o1.outputs, o2.outputs, "{}", p.name);
            assert_eq!(o1.steps, o2.steps, "{}", p.name);
        }
    }
}
