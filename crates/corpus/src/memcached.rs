//! Memcached: the noise baseline of Table 3.
//!
//! The paper ran memcached under the same pipeline and found 5376 race
//! reports, none of which led to an attack — a pure measurement of how
//! well the reduction stages cope with benign traffic. The model is
//! exactly that: racy statistics counters, input-gated racy paths, and
//! locked state, with no attack logic at all.

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::CorpusProgram;
use owl_ir::{assert_verified, ModuleBuilder};
use owl_vm::ProgramInput;

/// Builds the memcached corpus program.
pub fn build() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("memcached");
    let noise = attach_noise(
        &mut mb,
        "memcached/noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 40,
            adhoc_syncs: 0,
            locked_counters: 3,
            gate_input: 15,
        },
    );
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        b.loc("memcached.c", 1);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        for t in tids {
            b.thread_join(t);
        }
        b.output(70, 0);
        b.ret(None);
    }
    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "Memcached",
        module,
        entry: main,
        workloads: vec![
            ProgramInput::new(vec![0]).with_label("memtier benchmark"),
            ProgramInput::new(vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1])
                .with_label("memtier benchmark (extended coverage)"),
        ],
        exploit_inputs: vec![],
        attacks: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_vm::{RandomScheduler, Vm};

    #[test]
    fn runs_clean() {
        let p = build();
        let mut sched = RandomScheduler::new(1);
        let o = Vm::run_quiet(&p.module, p.entry, p.primary_workload().clone(), &mut sched);
        assert_eq!(o.status, owl_vm::ExitStatus::Finished);
        assert!(o.violations.is_empty());
        assert!(p.attacks.is_empty());
    }
}
