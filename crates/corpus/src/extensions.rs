//! Corpus extensions beyond the paper's evaluated programs.
//!
//! The paper's §8.3 notes that "there are other types of concurrency
//! bugs that can also lead to concurrency attacks, including atomicity
//! violations... By integrating these detectors (future work), OWL's
//! analysis and verifier components can detect more concurrency
//! attacks." These programs exercise that integration; they are *not*
//! part of [`crate::all_programs`] so the paper-table reproductions
//! stay faithful.

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Operand, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, SecurityEvent};

/// File descriptor of the cash dispenser.
pub const VAULT_FD: i64 = 9;
/// Initial account balance.
pub const INITIAL_BALANCE: i64 = 100;

fn overdraft_oracle(o: &ExecOutcome) -> bool {
    // More cash dispensed than the account ever held.
    let dispensed: i64 = o
        .security
        .iter()
        .filter_map(|s| match s.event {
            SecurityEvent::FileWrite { fd, data } if fd == VAULT_FD => Some(data),
            _ => None,
        })
        .sum();
    dispensed > INITIAL_BALANCE
}

/// A bank whose withdraw path locks each *individual* balance access
/// but not the check-then-act sequence: no data race exists, yet two
/// concurrent withdrawals can overdraw the account — an atomicity
/// violation turned into an attack (the attacker gets more cash than
/// the balance).
///
/// Input words:
/// * `0` — first withdrawal amount
/// * `1` — second withdrawal amount
/// * `2`/`3` — delays between check and act for the two sessions
/// * `15` — noise gate
pub fn bank_atomicity() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("bank");
    let balance = mb.global_init("balance", 1, vec![INITIAL_BALANCE], Type::I64);
    let lock = mb.global("account_lock", 1, Type::I64);

    let noise = attach_noise(
        &mut mb,
        "bank/noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 2,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let withdraw_a = mb.declare_func("withdraw_session_a", 1);
    let withdraw_b = mb.declare_func("withdraw_session_b", 1);
    let main = mb.declare_func("main", 0);

    for (f, amt_idx, delay_idx, line) in [(withdraw_a, 0i64, 2i64, 100u32), (withdraw_b, 1, 3, 200)]
    {
        let mut b = mb.build_func(f);
        b.loc("bank/teller.c", line);
        let amt = b.input(amt_idx);
        let la = b.global_addr(lock);
        let ba = b.global_addr(balance);
        // Locked check...
        b.lock(la);
        b.line(line + 4);
        let v = b.load(ba, Type::I64);
        b.unlock(la);
        let ok = b.cmp(Pred::Ge, v, amt);
        let go = b.block();
        let out = b.block();
        b.br(ok, go, out);
        b.switch_to(go);
        // ...window between check and act...
        let d = b.input(delay_idx);
        b.io_delay(d);
        // ...locked act.
        b.lock(la);
        b.line(line + 11);
        let v2 = b.load(ba, Type::I64);
        let v3 = b.sub(v2, amt);
        b.store(ba, v3);
        b.unlock(la);
        b.line(line + 14);
        b.file_access(VAULT_FD, amt); // dispense the cash
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        b.loc("bank/main.c", 1);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(withdraw_a, 0));
        tids.push(b.thread_create(withdraw_b, 0));
        for t in tids {
            b.thread_join(t);
        }
        let ba = b.global_addr(balance);
        let v = b.load(ba, Type::I64);
        b.output(80, v); // final balance (negative after the attack)
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "Bank",
        module,
        entry: main,
        workloads: vec![
            // Tellers do IO between check and act even in normal
            // traffic; the window exists, the amounts just don't
            // overdraw dramatically without pairing.
            ProgramInput::new(vec![80, 80, 30, 30]).with_label("teller traffic"),
        ],
        exploit_inputs: vec![
            ProgramInput::new(vec![80, 80, 150, 150]).with_label("paired withdrawals")
        ],
        attacks: vec![AttackSpec {
            id: "bank-overdraft",
            version: "bank-model",
            vuln_type: "Overdraft (atomicity violation)",
            subtle_inputs: "Paired withdrawals",
            advisory: None,
            known: true,
            race_global: "balance",
            expected_class: VulnClass::FileOp,
            expected_dep: Some("CTRL_DEP"),
            oracle: overdraft_oracle,
        }],
    }
}

/// Marker for the kernel double-fetch payload.
pub const DF_PAYLOAD: i64 = 4242;

fn double_fetch_oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| {
        matches!(
            v,
            owl_vm::Violation::BufferOverflow { .. } | owl_vm::Violation::CorruptFuncPtr { .. }
        )
    })
}

/// A kernel-style **double fetch** (the Bochspwn bug class): a syscall
/// handler validates a user-controlled length, then *re-reads* it from
/// user memory before using it — and user space can flip the value
/// between the two fetches. Strictly speaking this is a data race
/// between kernel and user threads, but the interesting propagation is
/// the time-of-check-to-time-of-use gap between the two loads of the
/// same address, which Algorithm 1 reaches through the second fetch.
///
/// Input words:
/// * `0` — initial (validated) length
/// * `1` — flipped length
/// * `2` — flip delay
/// * `3` — handler IO delay between the fetches
/// * `15` — noise gate
pub fn kernel_double_fetch() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("double-fetch");
    // User-controlled request page, then the kernel buffer and an
    // adjacent function pointer the overflow clobbers.
    let user_len = mb.global("user_len", 1, Type::I64);
    let kbuf = mb.global("kbuf", 4, Type::I64);
    let kfunc = mb.global("kfunc", 1, Type::FuncPtr);
    let user_data = mb.global_init("user_data", 8, vec![DF_PAYLOAD; 8], Type::I64);

    let noise = attach_noise(
        &mut mb,
        "kernel/df_noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 2,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let kfunc_impl = mb.declare_func("kfunc_impl", 1);
    let handler = mb.declare_func("sys_ioctl_handler", 1);
    let flipper = mb.declare_func("user_flipper", 1);
    let main = mb.declare_func("main", 0);

    {
        let mut b = mb.build_func(kfunc_impl);
        b.output(90, 1);
        b.ret(None);
    }
    {
        // if (fetch1 <= 4) { ...IO... copy(kbuf, user, fetch2) }
        let mut b = mb.build_func(handler);
        b.loc("kernel/ioctl.c", 50);
        let ua = b.global_addr(user_len);
        let len1 = b.load(ua, Type::I64); // fetch 1: the check
        let ok = b.cmp(Pred::Le, len1, 4);
        let go = b.block();
        let out = b.block();
        b.br(ok, go, out);
        b.switch_to(go);
        let d = b.input(3);
        b.io_delay(d);
        b.line(57);
        let len2 = b.load(ua, Type::I64); // fetch 2: the use
        let ka = b.global_addr(kbuf);
        let uda = b.global_addr(user_data);
        b.line(58);
        b.memcopy(ka, uda, len2); // overflow when len2 > 4
                                  // Kernel then calls through the adjacent pointer.
        let kfa = b.global_addr(kfunc);
        let f = b.load(kfa, Type::FuncPtr);
        b.call_indirect(f, vec![owl_ir::Operand::Const(0)]);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(flipper);
        b.loc("user/flipper.c", 10);
        let d = b.input(2);
        b.io_delay(d);
        let flipped = b.input(1);
        let ua = b.global_addr(user_len);
        b.line(13);
        b.store(ua, flipped);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let f = b.func_addr(kfunc_impl);
        let kfa = b.global_addr(kfunc);
        b.store(kfa, f);
        let init = b.input(0);
        let ua = b.global_addr(user_len);
        b.store(ua, init);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(handler, 0));
        tids.push(b.thread_create(flipper, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "DoubleFetch",
        module,
        entry: main,
        workloads: vec![ProgramInput::new(vec![2, 2, 10, 10]).with_label("ioctl traffic")],
        exploit_inputs: vec![
            ProgramInput::new(vec![2, 8, 60, 120]).with_label("flipped length between fetches")
        ],
        attacks: vec![AttackSpec {
            id: "kernel-double-fetch",
            version: "double-fetch model",
            vuln_type: "Buffer Overflow (double fetch)",
            subtle_inputs: "Flipped length between fetches",
            advisory: None,
            known: true,
            race_global: "user_len",
            expected_class: VulnClass::MemoryOp,
            expected_dep: Some("DATA_DEP"),
            oracle: double_fetch_oracle,
        }],
    }
}

/// Marker for the heap-relay request payload.
pub const HR_PAYLOAD: i64 = 7117;

fn heap_relay_oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| matches!(v, owl_vm::Violation::BufferOverflow { .. }))
}

/// Corruption **relayed through a heap buffer**: a request handler
/// reads a racy length field and *stages* it into a heap-allocated
/// request object; a separate processing routine later re-reads the
/// staged length from the heap and drives a `memcopy` with it. The
/// corruption crosses two function boundaries **through memory**, not
/// through SSA registers or arguments — the paper's register-only
/// Algorithm 1 loses it at the store, while the points-to extension
/// taints the heap cell and picks the corruption back up at the relay
/// load (ablation A7's headline case).
///
/// Input words:
/// * `0` — initial request length
/// * `1` — flipped (attack) length
/// * `2` — flipper delay
/// * `3` — handler delay before reading the length
/// * `15` — noise gate
pub fn heap_relay() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("heap-relay");
    let attack_len = mb.global("attack_len", 1, Type::I64);
    let req_ptr = mb.global("req_ptr", 1, Type::Ptr);
    let kbuf = mb.global("hr_kbuf", 4, Type::I64);
    let user_data = mb.global_init("hr_user_data", 8, vec![HR_PAYLOAD; 8], Type::I64);

    let noise = attach_noise(
        &mut mb,
        "server/hr_noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 2,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let stage = mb.declare_func("stage_request", 1);
    let process = mb.declare_func("process_request", 0);
    let handler = mb.declare_func("request_handler", 1);
    let flipper = mb.declare_func("len_flipper", 1);
    let main = mb.declare_func("main", 0);

    {
        // Stash the (racy) length into the heap request object.
        let mut b = mb.build_func(stage);
        b.loc("server/stage.c", 20);
        let rpa = b.global_addr(req_ptr);
        let req = b.load(rpa, Type::Ptr);
        b.line(23);
        b.store(req, Operand::Param(0));
        b.ret(None);
    }
    {
        // Re-read the staged length from the heap and copy with it.
        let mut b = mb.build_func(process);
        b.loc("server/process.c", 40);
        let rpa = b.global_addr(req_ptr);
        let req = b.load(rpa, Type::Ptr);
        let len = b.load(req, Type::I64); // the relay load
        let ka = b.global_addr(kbuf);
        let uda = b.global_addr(user_data);
        b.line(45);
        b.memcopy(ka, uda, len); // overflow when len > 4
        b.ret(None);
    }
    {
        let mut b = mb.build_func(handler);
        b.loc("server/handler.c", 60);
        let d = b.input(3);
        b.io_delay(d);
        let la = b.global_addr(attack_len);
        b.line(63);
        let len = b.load(la, Type::I64); // the racy load
        b.call(stage, vec![Operand::Value(len)]);
        b.call(process, vec![]);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(flipper);
        b.loc("attacker/flipper.c", 10);
        let d = b.input(2);
        b.io_delay(d);
        let flipped = b.input(1);
        let la = b.global_addr(attack_len);
        b.line(13);
        b.store(la, flipped);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let req = b.malloc(1);
        let rpa = b.global_addr(req_ptr);
        b.store(rpa, req);
        let init = b.input(0);
        let la = b.global_addr(attack_len);
        b.store(la, init);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(handler, 0));
        tids.push(b.thread_create(flipper, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "HeapRelay",
        module,
        entry: main,
        workloads: vec![ProgramInput::new(vec![2, 2, 10, 10]).with_label("request traffic")],
        exploit_inputs: vec![
            ProgramInput::new(vec![2, 8, 30, 90]).with_label("length flipped before staging")
        ],
        attacks: vec![AttackSpec {
            id: "heap-relay-overflow",
            version: "heap-relay model",
            vuln_type: "Buffer Overflow (heap relay)",
            subtle_inputs: "Length flipped before staging",
            advisory: None,
            known: true,
            race_global: "attack_len",
            expected_class: VulnClass::MemoryOp,
            expected_dep: Some("DATA_DEP"),
            oracle: heap_relay_oracle,
        }],
    }
}

fn cache_relay_oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| {
        matches!(
            v,
            owl_vm::Violation::NullFuncPtr | owl_vm::Violation::CorruptFuncPtr { .. }
        )
    })
}

/// A MySQL-style **corrupted pointer through a cache**: an invalidator
/// thread briefly nulls a shared function-pointer cache while a refresh
/// thread copies the cache into a lock-protected stash; a dispatcher
/// later fetches the stashed pointer through `fetch_cached()` and calls
/// through it. Reaching the indirect call needs *both* extensions: the
/// points-to taint survives the store/load round trip through `stash`,
/// and — because the relay load corrupts `fetch_cached`'s **return
/// value** with no dynamic stack to follow — the summary-mode caller
/// walk must ascend into the dispatcher (ablation A8's headline case).
/// Only the `cache` accesses race; the stash is properly locked.
///
/// Input words:
/// * `0` — invalidation delay
/// * `1` — invalidation window (delay before the refill)
/// * `2` — refresh delay
/// * `3` — dispatch delay
/// * `15` — noise gate
pub fn cache_relay() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("cache-relay");
    let cache = mb.global("cache", 1, Type::FuncPtr);
    let stash = mb.global("stash", 1, Type::FuncPtr);
    let stash_lock = mb.global("stash_lock", 1, Type::I64);

    let noise = attach_noise(
        &mut mb,
        "server/cr_noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 2,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let benign = mb.declare_func("benign_handler", 1);
    let fetch_cached = mb.declare_func("fetch_cached", 0);
    let refresh = mb.declare_func("cache_refresh", 1);
    let dispatch = mb.declare_func("dispatcher", 1);
    let invalidator = mb.declare_func("cache_invalidator", 1);
    let main = mb.declare_func("main", 0);

    {
        let mut b = mb.build_func(benign);
        b.output(91, 1);
        b.ret(None);
    }
    {
        // Locked read of the stash, returned to the caller.
        let mut b = mb.build_func(fetch_cached);
        b.loc("server/fetch.c", 30);
        let la = b.global_addr(stash_lock);
        b.lock(la);
        let sa = b.global_addr(stash);
        b.line(33);
        let v = b.load(sa, Type::FuncPtr); // the relay load
        b.unlock(la);
        b.ret(Some(Operand::Value(v)));
    }
    {
        // Racy read of the cache, staged into the locked stash.
        let mut b = mb.build_func(refresh);
        b.loc("server/refresh.c", 50);
        let d = b.input(2);
        b.io_delay(d);
        let ca = b.global_addr(cache);
        b.line(53);
        let v = b.load(ca, Type::FuncPtr); // the racy load
        let la = b.global_addr(stash_lock);
        b.lock(la);
        let sa = b.global_addr(stash);
        b.line(57);
        b.store(sa, v);
        b.unlock(la);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(dispatch);
        b.loc("server/dispatch.c", 70);
        let d = b.input(3);
        b.io_delay(d);
        let p = b.call(fetch_cached, vec![]);
        b.line(73);
        b.call_indirect(p, vec![Operand::Const(0)]);
        b.ret(None);
    }
    {
        // Null the cache, then refill after a window.
        let mut b = mb.build_func(invalidator);
        b.loc("server/invalidate.c", 90);
        let d = b.input(0);
        b.io_delay(d);
        let ca = b.global_addr(cache);
        b.line(93);
        b.store(ca, 0);
        let w = b.input(1);
        b.io_delay(w);
        let f = b.func_addr(benign);
        b.line(97);
        b.store(ca, f);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let f = b.func_addr(benign);
        let ca = b.global_addr(cache);
        b.store(ca, f);
        let sa = b.global_addr(stash);
        b.store(sa, f);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(refresh, 0));
        tids.push(b.thread_create(dispatch, 0));
        tids.push(b.thread_create(invalidator, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "CacheRelay",
        module,
        entry: main,
        workloads: vec![
            // Invalidation happens well after the refresh has copied a
            // valid pointer: benign traffic never dispatches NULL.
            ProgramInput::new(vec![120, 1, 10, 40]).with_label("dispatch traffic"),
        ],
        exploit_inputs: vec![ProgramInput::new(vec![20, 150, 40, 110])
            .with_label("refresh inside the invalidation window")],
        attacks: vec![AttackSpec {
            id: "cache-relay-nullcall",
            version: "cache-relay model",
            vuln_type: "NULL function-pointer call (cache relay)",
            subtle_inputs: "Refresh inside the invalidation window",
            advisory: None,
            known: true,
            race_global: "cache",
            expected_class: VulnClass::NullDeref,
            expected_dep: Some("DATA_DEP"),
            oracle: cache_relay_oracle,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn overdraft_triggers_with_exploit_timing() {
        let p = bank_atomicity();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            overdraft_oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn sequentialized_withdrawals_cannot_overdraw() {
        // One big quantum and no teller IO: each withdrawal completes
        // before the other starts.
        let p = bank_atomicity();
        let mut sched = owl_vm::RoundRobin::new(100_000);
        let input = ProgramInput::new(vec![80, 80, 0, 0]);
        let o = Vm::run_quiet(&p.module, p.entry, input, &mut sched);
        assert!(!overdraft_oracle(&o));
        // Final balance stays non-negative.
        let final_balance = o.outputs.iter().find(|(c, _)| *c == 80).unwrap().1;
        assert!(final_balance >= 0);
    }

    #[test]
    fn double_fetch_triggers_with_flip_timing() {
        let p = kernel_double_fetch();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            double_fetch_oracle,
        );
        assert!(tries.is_some(), "the flipped fetch should overflow kbuf");
    }

    #[test]
    fn double_fetch_benign_traffic_is_safe() {
        let p = kernel_double_fetch();
        for seed in 0..10 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.primary_workload().clone(), &mut sched);
            assert!(
                !double_fetch_oracle(&o),
                "benign length (2 -> 2) cannot overflow: seed {seed}"
            );
        }
    }

    #[test]
    fn double_fetch_hint_reaches_the_copy() {
        // Algorithm 1 from the second fetch must reach the memcopy.
        use owl_static::{VulnAnalyzer, VulnConfig};
        let p = kernel_double_fetch();
        let r = owl_race::explore(
            &p.module,
            p.entry,
            &p.workloads,
            &owl_race::ExplorerConfig {
                runs_per_input: 20,
                ..Default::default()
            },
        );
        let report = r
            .reports_on("user_len")
            .next()
            .unwrap_or_else(|| panic!("user_len race: {:?}", r.reports));
        let read = report.read_access().unwrap();
        let mut an = VulnAnalyzer::new(&p.module, VulnConfig::default());
        let (vulns, _) = an.analyze(read.site, &read.stack);
        assert!(
            vulns.iter().any(|v| v.class == VulnClass::MemoryOp),
            "{vulns:?}"
        );
    }

    /// Verified race report on `global`, analyzed by Algorithm 1 under
    /// `cfg`. Returns the vulnerability hints.
    fn hints_for(
        p: &CorpusProgram,
        global: &str,
        cfg: owl_static::VulnConfig,
    ) -> Vec<owl_static::VulnReport> {
        let r = owl_race::explore(
            &p.module,
            p.entry,
            &p.workloads,
            &owl_race::ExplorerConfig {
                runs_per_input: 20,
                ..Default::default()
            },
        );
        let report = r
            .reports_on(global)
            .next()
            .unwrap_or_else(|| panic!("{global} race: {:?}", r.reports));
        let read = report.read_access().unwrap();
        let mut an = owl_static::VulnAnalyzer::new(&p.module, cfg);
        an.analyze(read.site, &read.stack).0
    }

    #[test]
    fn heap_relay_triggers_with_flip_timing() {
        let p = heap_relay();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            heap_relay_oracle,
        );
        assert!(tries.is_some(), "the staged length should overflow kbuf");
    }

    #[test]
    fn heap_relay_benign_traffic_is_safe() {
        let p = heap_relay();
        for seed in 0..10 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.primary_workload().clone(), &mut sched);
            assert!(
                !heap_relay_oracle(&o),
                "benign length (2 -> 2) cannot overflow: seed {seed}"
            );
        }
    }

    #[test]
    fn heap_relay_needs_points_to() {
        // The acceptance case for memory-aware propagation, asserted in
        // both directions: with points-to the corruption survives the
        // store/load round trip through the heap request object and the
        // memcopy is hinted; without it (the paper's register-only
        // regime) the hint is lost at the store.
        use owl_static::{DepKind, VulnConfig};
        let p = heap_relay();
        let with = hints_for(&p, "attack_len", VulnConfig::default());
        let hit = with
            .iter()
            .find(|v| v.class == VulnClass::MemoryOp)
            .unwrap_or_else(|| panic!("points-to should hint the memcopy: {with:?}"));
        assert_eq!(hit.dep, DepKind::DataDep);
        let without = hints_for(
            &p,
            "attack_len",
            VulnConfig {
                points_to: false,
                ..VulnConfig::default()
            },
        );
        assert!(
            without.iter().all(|v| v.class != VulnClass::MemoryOp),
            "register-only analysis must lose the relay: {without:?}"
        );
    }

    #[test]
    fn cache_relay_triggers_inside_invalidation_window() {
        let p = cache_relay();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            cache_relay_oracle,
        );
        assert!(tries.is_some(), "dispatch should call the stashed NULL");
    }

    #[test]
    fn cache_relay_benign_traffic_is_safe() {
        let p = cache_relay();
        for seed in 0..10 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.primary_workload().clone(), &mut sched);
            assert!(
                !cache_relay_oracle(&o),
                "late invalidation cannot reach the dispatcher: seed {seed}"
            );
        }
    }

    #[test]
    fn cache_relay_needs_points_to_and_summaries() {
        // Both extensions at once: the taint must survive the stash
        // round trip (points-to) AND the relay load corrupts a return
        // value with no dynamic stack, so only the summary-mode caller
        // walk reaches the dispatcher's indirect call.
        use owl_static::{DepKind, VulnConfig};
        let p = cache_relay();
        let with = hints_for(&p, "cache", VulnConfig::default());
        let hit = with
            .iter()
            .find(|v| v.class == VulnClass::NullDeref)
            .unwrap_or_else(|| panic!("indirect call should be hinted: {with:?}"));
        assert_eq!(hit.dep, DepKind::DataDep);
        for (knob, cfg) in [
            (
                "points_to",
                VulnConfig {
                    points_to: false,
                    ..VulnConfig::default()
                },
            ),
            (
                "summaries",
                VulnConfig {
                    summaries: false,
                    ..VulnConfig::default()
                },
            ),
        ] {
            let without = hints_for(&p, "cache", cfg);
            assert!(
                without.iter().all(|v| v.class != VulnClass::NullDeref),
                "disabling {knob} must lose the dispatcher hint: {without:?}"
            );
        }
    }

    #[test]
    fn expected_deps_are_well_formed() {
        let mut programs = crate::all_programs();
        programs.extend([bank_atomicity(), kernel_double_fetch(), heap_relay(), cache_relay()]);
        for p in &programs {
            for a in &p.attacks {
                let dep = a.expected_dep.expect("every corpus attack pins a dep kind");
                assert!(
                    dep == "DATA_DEP" || dep == "CTRL_DEP",
                    "{}: bad expected_dep {dep:?}",
                    a.id
                );
            }
        }
    }

    #[test]
    fn overdraft_leaves_negative_balance() {
        let p = bank_atomicity();
        for seed in 0..20 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.exploit_inputs[0].clone(), &mut sched);
            if overdraft_oracle(&o) {
                let final_balance = o.outputs.iter().find(|(c, _)| *c == 80).unwrap().1;
                assert!(final_balance < 0, "overdraft implies negative balance");
                return;
            }
        }
        panic!("overdraft never triggered in 20 seeds");
    }
}
