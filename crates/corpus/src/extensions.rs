//! Corpus extensions beyond the paper's evaluated programs.
//!
//! The paper's §8.3 notes that "there are other types of concurrency
//! bugs that can also lead to concurrency attacks, including atomicity
//! violations... By integrating these detectors (future work), OWL's
//! analysis and verifier components can detect more concurrency
//! attacks." These programs exercise that integration; they are *not*
//! part of [`crate::all_programs`] so the paper-table reproductions
//! stay faithful.

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, SecurityEvent};

/// File descriptor of the cash dispenser.
pub const VAULT_FD: i64 = 9;
/// Initial account balance.
pub const INITIAL_BALANCE: i64 = 100;

fn overdraft_oracle(o: &ExecOutcome) -> bool {
    // More cash dispensed than the account ever held.
    let dispensed: i64 = o
        .security
        .iter()
        .filter_map(|s| match s.event {
            SecurityEvent::FileWrite { fd, data } if fd == VAULT_FD => Some(data),
            _ => None,
        })
        .sum();
    dispensed > INITIAL_BALANCE
}

/// A bank whose withdraw path locks each *individual* balance access
/// but not the check-then-act sequence: no data race exists, yet two
/// concurrent withdrawals can overdraw the account — an atomicity
/// violation turned into an attack (the attacker gets more cash than
/// the balance).
///
/// Input words:
/// * `0` — first withdrawal amount
/// * `1` — second withdrawal amount
/// * `2`/`3` — delays between check and act for the two sessions
/// * `15` — noise gate
pub fn bank_atomicity() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("bank");
    let balance = mb.global_init("balance", 1, vec![INITIAL_BALANCE], Type::I64);
    let lock = mb.global("account_lock", 1, Type::I64);

    let noise = attach_noise(
        &mut mb,
        "bank/noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 2,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let withdraw_a = mb.declare_func("withdraw_session_a", 1);
    let withdraw_b = mb.declare_func("withdraw_session_b", 1);
    let main = mb.declare_func("main", 0);

    for (f, amt_idx, delay_idx, line) in [(withdraw_a, 0i64, 2i64, 100u32), (withdraw_b, 1, 3, 200)]
    {
        let mut b = mb.build_func(f);
        b.loc("bank/teller.c", line);
        let amt = b.input(amt_idx);
        let la = b.global_addr(lock);
        let ba = b.global_addr(balance);
        // Locked check...
        b.lock(la);
        b.line(line + 4);
        let v = b.load(ba, Type::I64);
        b.unlock(la);
        let ok = b.cmp(Pred::Ge, v, amt);
        let go = b.block();
        let out = b.block();
        b.br(ok, go, out);
        b.switch_to(go);
        // ...window between check and act...
        let d = b.input(delay_idx);
        b.io_delay(d);
        // ...locked act.
        b.lock(la);
        b.line(line + 11);
        let v2 = b.load(ba, Type::I64);
        let v3 = b.sub(v2, amt);
        b.store(ba, v3);
        b.unlock(la);
        b.line(line + 14);
        b.file_access(VAULT_FD, amt); // dispense the cash
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        b.loc("bank/main.c", 1);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(withdraw_a, 0));
        tids.push(b.thread_create(withdraw_b, 0));
        for t in tids {
            b.thread_join(t);
        }
        let ba = b.global_addr(balance);
        let v = b.load(ba, Type::I64);
        b.output(80, v); // final balance (negative after the attack)
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "Bank",
        module,
        entry: main,
        workloads: vec![
            // Tellers do IO between check and act even in normal
            // traffic; the window exists, the amounts just don't
            // overdraw dramatically without pairing.
            ProgramInput::new(vec![80, 80, 30, 30]).with_label("teller traffic"),
        ],
        exploit_inputs: vec![
            ProgramInput::new(vec![80, 80, 150, 150]).with_label("paired withdrawals")
        ],
        attacks: vec![AttackSpec {
            id: "bank-overdraft",
            version: "bank-model",
            vuln_type: "Overdraft (atomicity violation)",
            subtle_inputs: "Paired withdrawals",
            advisory: None,
            known: true,
            race_global: "balance",
            expected_class: VulnClass::FileOp,
            oracle: overdraft_oracle,
        }],
    }
}

/// Marker for the kernel double-fetch payload.
pub const DF_PAYLOAD: i64 = 4242;

fn double_fetch_oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| {
        matches!(
            v,
            owl_vm::Violation::BufferOverflow { .. } | owl_vm::Violation::CorruptFuncPtr { .. }
        )
    })
}

/// A kernel-style **double fetch** (the Bochspwn bug class): a syscall
/// handler validates a user-controlled length, then *re-reads* it from
/// user memory before using it — and user space can flip the value
/// between the two fetches. Strictly speaking this is a data race
/// between kernel and user threads, but the interesting propagation is
/// the time-of-check-to-time-of-use gap between the two loads of the
/// same address, which Algorithm 1 reaches through the second fetch.
///
/// Input words:
/// * `0` — initial (validated) length
/// * `1` — flipped length
/// * `2` — flip delay
/// * `3` — handler IO delay between the fetches
/// * `15` — noise gate
pub fn kernel_double_fetch() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("double-fetch");
    // User-controlled request page, then the kernel buffer and an
    // adjacent function pointer the overflow clobbers.
    let user_len = mb.global("user_len", 1, Type::I64);
    let kbuf = mb.global("kbuf", 4, Type::I64);
    let kfunc = mb.global("kfunc", 1, Type::FuncPtr);
    let user_data = mb.global_init("user_data", 8, vec![DF_PAYLOAD; 8], Type::I64);

    let noise = attach_noise(
        &mut mb,
        "kernel/df_noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 2,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let kfunc_impl = mb.declare_func("kfunc_impl", 1);
    let handler = mb.declare_func("sys_ioctl_handler", 1);
    let flipper = mb.declare_func("user_flipper", 1);
    let main = mb.declare_func("main", 0);

    {
        let mut b = mb.build_func(kfunc_impl);
        b.output(90, 1);
        b.ret(None);
    }
    {
        // if (fetch1 <= 4) { ...IO... copy(kbuf, user, fetch2) }
        let mut b = mb.build_func(handler);
        b.loc("kernel/ioctl.c", 50);
        let ua = b.global_addr(user_len);
        let len1 = b.load(ua, Type::I64); // fetch 1: the check
        let ok = b.cmp(Pred::Le, len1, 4);
        let go = b.block();
        let out = b.block();
        b.br(ok, go, out);
        b.switch_to(go);
        let d = b.input(3);
        b.io_delay(d);
        b.line(57);
        let len2 = b.load(ua, Type::I64); // fetch 2: the use
        let ka = b.global_addr(kbuf);
        let uda = b.global_addr(user_data);
        b.line(58);
        b.memcopy(ka, uda, len2); // overflow when len2 > 4
                                  // Kernel then calls through the adjacent pointer.
        let kfa = b.global_addr(kfunc);
        let f = b.load(kfa, Type::FuncPtr);
        b.call_indirect(f, vec![owl_ir::Operand::Const(0)]);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(flipper);
        b.loc("user/flipper.c", 10);
        let d = b.input(2);
        b.io_delay(d);
        let flipped = b.input(1);
        let ua = b.global_addr(user_len);
        b.line(13);
        b.store(ua, flipped);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let f = b.func_addr(kfunc_impl);
        let kfa = b.global_addr(kfunc);
        b.store(kfa, f);
        let init = b.input(0);
        let ua = b.global_addr(user_len);
        b.store(ua, init);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(handler, 0));
        tids.push(b.thread_create(flipper, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "DoubleFetch",
        module,
        entry: main,
        workloads: vec![ProgramInput::new(vec![2, 2, 10, 10]).with_label("ioctl traffic")],
        exploit_inputs: vec![
            ProgramInput::new(vec![2, 8, 60, 120]).with_label("flipped length between fetches")
        ],
        attacks: vec![AttackSpec {
            id: "kernel-double-fetch",
            version: "double-fetch model",
            vuln_type: "Buffer Overflow (double fetch)",
            subtle_inputs: "Flipped length between fetches",
            advisory: None,
            known: true,
            race_global: "user_len",
            expected_class: VulnClass::MemoryOp,
            oracle: double_fetch_oracle,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn overdraft_triggers_with_exploit_timing() {
        let p = bank_atomicity();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            overdraft_oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn sequentialized_withdrawals_cannot_overdraw() {
        // One big quantum and no teller IO: each withdrawal completes
        // before the other starts.
        let p = bank_atomicity();
        let mut sched = owl_vm::RoundRobin::new(100_000);
        let input = ProgramInput::new(vec![80, 80, 0, 0]);
        let o = Vm::run_quiet(&p.module, p.entry, input, &mut sched);
        assert!(!overdraft_oracle(&o));
        // Final balance stays non-negative.
        let final_balance = o.outputs.iter().find(|(c, _)| *c == 80).unwrap().1;
        assert!(final_balance >= 0);
    }

    #[test]
    fn double_fetch_triggers_with_flip_timing() {
        let p = kernel_double_fetch();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            double_fetch_oracle,
        );
        assert!(tries.is_some(), "the flipped fetch should overflow kbuf");
    }

    #[test]
    fn double_fetch_benign_traffic_is_safe() {
        let p = kernel_double_fetch();
        for seed in 0..10 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.primary_workload().clone(), &mut sched);
            assert!(
                !double_fetch_oracle(&o),
                "benign length (2 -> 2) cannot overflow: seed {seed}"
            );
        }
    }

    #[test]
    fn double_fetch_hint_reaches_the_copy() {
        // Algorithm 1 from the second fetch must reach the memcopy.
        use owl_static::{VulnAnalyzer, VulnConfig};
        let p = kernel_double_fetch();
        let r = owl_race::explore(
            &p.module,
            p.entry,
            &p.workloads,
            &owl_race::ExplorerConfig {
                runs_per_input: 20,
                ..Default::default()
            },
        );
        let report = r
            .reports_on("user_len")
            .next()
            .unwrap_or_else(|| panic!("user_len race: {:?}", r.reports));
        let read = report.read_access().unwrap();
        let mut an = VulnAnalyzer::new(&p.module, VulnConfig::default());
        let (vulns, _) = an.analyze(read.site, &read.stack);
        assert!(
            vulns.iter().any(|v| v.class == VulnClass::MemoryOp),
            "{vulns:?}"
        );
    }

    #[test]
    fn overdraft_leaves_negative_balance() {
        let p = bank_atomicity();
        for seed in 0..20 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, p.exploit_inputs[0].clone(), &mut sched);
            if overdraft_oracle(&o) {
                let final_balance = o.outputs.iter().find(|(c, _)| *c == 80).unwrap().1;
                assert!(final_balance < 0, "overdraft implies negative balance");
                return;
            }
        }
        panic!("overdraft never triggered in 20 seeds");
    }
}
