//! SSDB-1.9.2 (paper Figure 6): the binlog shutdown use-after-free,
//! confirmed as CVE-2016-1000324 — one of the three previously unknown
//! attacks OWL found (§8.4).
//!
//! During shutdown, SSDB "synchronizes" its binlog cleaner thread with
//! a racy `db` pointer check: `while (!thread_quit) { if (!db) break;
//! del_range(); }`. The destructor frees the db object and only then
//! NULLs the pointer, so the cleaner can pass the check, lose the race,
//! and call `db->Write(...)` — a function-pointer load — through freed
//! memory. An attacker who re-occupies the freed allocation (heap
//! spray) redirects that call.
//!
//! Note the cleaner's loop is *not* an adhoc synchronization by §5.1's
//! refined criteria (the loop body does real work), which is why
//! Table 3 shows zero adhoc annotations for SSDB even though the bug
//! looks flag-shaped.
//!
//! Input words:
//! * `0` — workload duration before shutdown
//! * `1` — cleaner delay between the `db` check and the use
//! * `2` — destructor delay between `free(db)` and `db = NULL`
//! * `3` — heap-spray toggle (the exploit's extra input)
//! * `4` — spray delay
//! * `5` — spray payload
//! * `15` — noise gate

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Operand, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, Violation};

/// Default spray payload.
pub const PAYLOAD: i64 = 666;

fn oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| {
        matches!(
            v,
            Violation::UseAfterFree { .. } | Violation::CorruptFuncPtr { .. }
        )
    })
}

/// Builds the SSDB corpus program.
pub fn build() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("ssdb");
    let thread_quit = mb.global("thread_quit", 1, Type::I64);
    let db_ptr = mb.global("db", 1, Type::Ptr);

    let noise = attach_noise(
        &mut mb,
        "ssdb/noise.c",
        &NoiseSpec {
            always_counters: 1,
            gated_counters: 4,
            adhoc_syncs: 0,
            locked_counters: 1,
            gate_input: 15,
        },
    );

    let db_write_impl = mb.declare_func("db_write", 1);
    let log_clean = mb.declare_func("log_clean_thread_func", 1);
    let sprayer = mb.declare_func("heap_sprayer", 1);
    let main = mb.declare_func("main", 0);

    {
        let mut b = mb.build_func(db_write_impl);
        b.loc("binlog.cpp", 90);
        b.output(50, 1);
        b.ret(None);
    }
    {
        // while (!thread_quit) { if (!db) break; ... db->Write(); }
        let mut b = mb.build_func(log_clean);
        b.loc("binlog.cpp", 355);
        let head = b.block();
        let body = b.block();
        let work = b.block();
        let out = b.block();
        b.jmp(head);
        b.switch_to(head);
        b.line(358);
        let qa = b.global_addr(thread_quit);
        let q = b.load(qa, Type::I64);
        let keep = b.cmp(Pred::Eq, q, 0);
        b.br(keep, body, out);
        b.switch_to(body);
        b.line(359);
        let da = b.global_addr(db_ptr);
        let d = b.load(da, Type::Ptr); // the racy read (line 359)
        let live = b.cmp(Pred::Ne, d, 0);
        b.br(live, work, out);
        b.switch_to(work);
        b.line(371);
        let delay = b.input(1);
        b.io_delay(delay);
        b.line(347);
        let fslot = b.gep(d, 0);
        let f = b.load(fslot, Type::FuncPtr); // may be a UAF read
        b.call_indirect(f, vec![Operand::Const(0)]); // line 347: db->Write
        b.yield_now();
        b.jmp(head);
        b.switch_to(out);
        b.line(380);
        b.ret(None);
    }
    {
        // Attacker thread: capture the allocation, then overwrite it
        // after the free (heap spray).
        let mut b = mb.build_func(sprayer);
        b.loc("attacker.c", 10);
        let en = b.input(3);
        let go = b.block();
        let out = b.block();
        b.br(en, go, out);
        b.switch_to(go);
        let da = b.global_addr(db_ptr);
        let p = b.load(da, Type::Ptr);
        let d = b.input(4);
        b.io_delay(d);
        let payload = b.input(5);
        let slot = b.gep(p, 0);
        b.store(slot, payload); // lands in freed memory under the exploit
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        b.loc("ssdb.cpp", 1);
        // BinlogQueue construction.
        let p = b.malloc(2);
        let f = b.func_addr(db_write_impl);
        let slot = b.gep(p, 0);
        b.store(slot, f);
        let da = b.global_addr(db_ptr);
        b.store(da, p);
        // Spawn.
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        let cleaner = b.thread_create(log_clean, 0);
        let spray = b.thread_create(sprayer, 0);
        // Serve traffic for a while.
        let work = b.input(0);
        b.io_delay(work);
        // ~BinlogQueue(): shutdown.
        b.loc("binlog.cpp", 190);
        let qa = b.global_addr(thread_quit);
        b.store(qa, 1);
        b.line(199);
        b.free(p);
        let gap = b.input(2);
        b.io_delay(gap);
        b.line(200);
        b.store(da, 0); // db = NULL (line 200)
        b.thread_join(cleaner);
        b.thread_join(spray);
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "SSDB",
        module,
        entry: main,
        workloads: vec![
            ProgramInput::new(vec![60, 5, 0, 0, 0, 0]).with_label("kv benchmark + shutdown"),
            ProgramInput::new(vec![60, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1])
                .with_label("kv benchmark (extended coverage)"),
        ],
        exploit_inputs: vec![ProgramInput::new(vec![
            40,      // short workload, then shutdown
            150,     // cleaner stalls between check and use
            400,     // wide free→NULL gap
            1,       // spray enabled
            120,     // spray lands inside the gap
            PAYLOAD, // payload
        ])
        .with_label("shutdown during del_range")],
        attacks: vec![AttackSpec {
            id: "ssdb-binlog-uaf",
            version: "SSDB-1.9.2",
            vuln_type: "Use After Free",
            subtle_inputs: "Shutdown during del_range",
            advisory: Some("CVE-2016-1000324"),
            known: false,
            race_global: "db",
            expected_class: VulnClass::NullDeref,
            expected_dep: Some("DATA_DEP"),
            oracle,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn terminates_on_all_workloads() {
        let p = build();
        for (wi, w) in p.workloads.iter().enumerate() {
            for seed in 0..5 {
                let mut sched = RandomScheduler::new(seed);
                let o = Vm::run_quiet(&p.module, p.entry, w.clone(), &mut sched);
                assert_eq!(
                    o.status,
                    owl_vm::ExitStatus::Finished,
                    "workload {wi} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn exploit_triggers_uaf_within_twenty_runs() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            oracle,
        );
        assert!(tries.is_some(), "CVE-2016-1000324 should reproduce");
    }

    #[test]
    fn db_race_reported_and_not_misclassified_as_adhoc() {
        let p = build();
        let r = owl_race::explore(
            &p.module,
            p.entry,
            &p.workloads,
            &owl_race::ExplorerConfig {
                runs_per_input: 20,
                ..Default::default()
            },
        );
        let db_report = r
            .reports_on("db")
            .next()
            .unwrap_or_else(|| panic!("db race must be reported: {:?}", r.reports));
        let det = owl_static::AdhocSyncDetector::new(&p.module);
        assert!(
            matches!(
                det.classify(db_report),
                owl_static::AdhocVerdict::NotAdhoc(_)
            ),
            "the vulnerable flag-shaped race must survive adhoc filtering"
        );
    }
}
