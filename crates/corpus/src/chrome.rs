//! Chrome-6.0.472.58: the `console.profile` use-after-free (known
//! attack, Table 4).
//!
//! A JavaScript `console.profile` call hands the renderer a profile
//! object that a worker thread keeps reading while page navigation can
//! concurrently destroy it. The destruction path frees the object and
//! clears the pointer without synchronizing with the profiler — a
//! use-after-free an attacker script can time with `console.profile` /
//! navigation sequences.
//!
//! Input words:
//! * `0` — `console.profile` issued (profiler active)
//! * `1` — profiler delay between the pointer check and the use
//! * `2` — navigation delay before teardown
//! * `15` — noise gate

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, Violation};

fn oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| matches!(v, Violation::UseAfterFree { .. }))
}

/// Builds the Chrome corpus program.
pub fn build() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("chrome");
    let profile_ptr = mb.global("profile", 1, Type::Ptr);

    let noise = attach_noise(
        &mut mb,
        "chrome/noise.c",
        &NoiseSpec {
            always_counters: 4,
            gated_counters: 52,
            adhoc_syncs: 1,
            locked_counters: 2,
            gate_input: 15,
        },
    );

    let profiler = mb.declare_func("profiler_thread", 1);
    let navigator = mb.declare_func("navigation_thread", 1);
    let main = mb.declare_func("main", 0);

    {
        let mut b = mb.build_func(profiler);
        b.loc("profiler.cc", 210);
        let en = b.input(0);
        let go = b.block();
        let out = b.block();
        b.br(en, go, out);
        b.switch_to(go);
        b.line(215);
        let pa = b.global_addr(profile_ptr);
        let p = b.load(pa, Type::Ptr); // racy read
        let live = b.cmp(Pred::Ne, p, 0);
        let use_bb = b.block();
        b.br(live, use_bb, out);
        b.switch_to(use_bb);
        let d = b.input(1);
        b.io_delay(d);
        b.line(221);
        let slot = b.gep(p, 0);
        let v = b.load(slot, Type::I64); // UAF under the race
        b.output(60, v);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(navigator);
        b.loc("page.cc", 88);
        let d = b.input(2);
        b.io_delay(d);
        let pa = b.global_addr(profile_ptr);
        let p = b.load(pa, Type::Ptr);
        let live = b.cmp(Pred::Ne, p, 0);
        let tear = b.block();
        let out = b.block();
        b.br(live, tear, out);
        b.switch_to(tear);
        b.line(93);
        b.free(p);
        b.line(94);
        b.store(pa, 0);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        b.loc("main.cc", 1);
        let p = b.malloc(2);
        let slot = b.gep(p, 0);
        b.store(slot, 1234);
        let pa = b.global_addr(profile_ptr);
        b.store(pa, p);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(profiler, 0));
        tids.push(b.thread_create(navigator, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "Chrome",
        module,
        entry: main,
        workloads: vec![
            ProgramInput::new(vec![1, 0, 10]).with_label("page load benchmark"),
            ProgramInput::new(vec![1, 0, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1])
                .with_label("page load benchmark (extended coverage)"),
        ],
        exploit_inputs: vec![ProgramInput::new(vec![
            1,   // console.profile issued
            200, // profiler stalls between check and use
            80,  // navigation tears down inside the stall
        ])
        .with_label("Js console.profile")],
        attacks: vec![AttackSpec {
            id: "chrome-profile-uaf",
            version: "Chrome-6.0.472.58",
            vuln_type: "Use after free",
            subtle_inputs: "Js console.profile",
            advisory: None,
            known: true,
            race_global: "profile",
            expected_class: VulnClass::NullDeref,
            expected_dep: Some("DATA_DEP"),
            oracle,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn workloads_terminate() {
        let p = build();
        for w in &p.workloads {
            let mut sched = RandomScheduler::new(3);
            let o = Vm::run_quiet(&p.module, p.entry, w.clone(), &mut sched);
            assert_eq!(o.status, owl_vm::ExitStatus::Finished);
        }
    }

    #[test]
    fn exploit_triggers_uaf_quickly() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn no_profile_no_attack() {
        let p = build();
        let input = ProgramInput::new(vec![0, 200, 80]);
        for seed in 0..5 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, input.clone(), &mut sched);
            assert!(!oracle(&o), "seed {seed}");
        }
    }
}
