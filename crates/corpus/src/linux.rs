//! Linux kernel models: the uselib()/msync() `f_op` race (paper
//! Figure 2, Linux-2.6.10) and an exec/setuid credential race
//! (Linux-2.6.29 privilege escalation). Both rows of Table 4's Linux
//! entries, driven "by syscall parameters".
//!
//! * **uselib/msync** — `msync_interval` checks `file->f_op &&
//!   file->f_op->fsync`, performs IO, then calls through the pointer;
//!   `do_munmap` (reached via `uselib()`) concurrently NULLs `f_op`.
//!   The classic exploit maps attacker code where the kernel will jump:
//!   modeled as a second store planting a pointer to `attacker_code`,
//!   whose body takes root and spawns a shell.
//! * **cred race** — an access check loads the (racy) credential uid
//!   while a concurrent exec/setuid transiently drops it to 0; if the
//!   check observes the window it grants root.
//!
//! Input words ("syscall parameters"):
//! * `0` — msync IO delay (between the `f_op` check and the call)
//! * `1` — uselib/munmap delay before NULLing `f_op`
//! * `2` — remap toggle (attacker maps code at the freed slot)
//! * `3` — remap delay
//! * `4` — access-check delay before loading the credential
//! * `5` — setuid delay before dropping the uid
//! * `6` — delay before the uid is restored
//! * `15` — noise gate

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Operand, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, Violation};

/// Marker command the attacker's shell executes.
pub const ROOT_SHELL: i64 = 31337;

fn uselib_oracle(o: &ExecOutcome) -> bool {
    // Kernel NULL function-pointer dereference, or the stronger
    // arbitrary-code-execution variant via the remapped page.
    o.any_violation(|v| matches!(v, Violation::NullFuncPtr)) || o.executed(ROOT_SHELL)
}

fn cred_oracle(o: &ExecOutcome) -> bool {
    o.privilege == 0
}

/// Builds the Linux corpus program.
pub fn build() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("linux");
    let f_op = mb.global("f_op", 1, Type::FuncPtr);
    let cred_uid = mb.global_init("cred_uid", 1, vec![1000], Type::I64);

    let noise = attach_noise(
        &mut mb,
        "kernel/noise.c",
        &NoiseSpec {
            always_counters: 5,
            gated_counters: 200,
            adhoc_syncs: 8,
            locked_counters: 2,
            gate_input: 15,
        },
    );

    let fsync_impl = mb.declare_func("ext2_fsync", 1);
    let attacker_code = mb.declare_func("attacker_code", 1);
    let msync_thread = mb.declare_func("sys_msync", 1);
    let uselib_thread = mb.declare_func("sys_uselib", 1);
    let access_check = mb.declare_func("acl_permission_check", 1);
    let exec_setuid = mb.declare_func("sys_execve_setuid", 1);
    let main = mb.declare_func("main", 0);

    {
        let mut b = mb.build_func(fsync_impl);
        b.loc("fs/ext2.c", 30);
        b.output(20, 1);
        b.ret(None);
    }
    {
        // The "mapped user page": takes root and execs a shell.
        let mut b = mb.build_func(attacker_code);
        b.loc("userspace/payload.c", 1);
        b.set_privilege(0);
        b.exec(ROOT_SHELL);
        b.ret(None);
    }
    {
        // msync_interval(): if (file->f_op && file->f_op->fsync)
        //                       err = file->f_op->fsync(...);
        let mut b = mb.build_func(msync_thread);
        b.loc("mm/msync.c", 138);
        let fa = b.global_addr(f_op);
        let p = b.load(fa, Type::FuncPtr); // racy check read
        let live = b.cmp(Pred::Ne, p, 0);
        let sync = b.block();
        let out = b.block();
        b.br(live, sync, out);
        b.switch_to(sync);
        b.line(141);
        let d = b.input(0);
        b.io_delay(d); // the input-controlled IO window (§3.1)
        b.line(144);
        let p2 = b.load(fa, Type::FuncPtr); // re-load after the IO
        b.call_indirect(p2, vec![Operand::Const(0)]); // f_op->fsync(...)
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        // do_munmap() via uselib(): file->f_op = NULL; the attacker may
        // then map code at the stale slot.
        let mut b = mb.build_func(uselib_thread);
        b.loc("mm/mmap.c", 880);
        let d = b.input(1);
        b.io_delay(d);
        let fa = b.global_addr(f_op);
        b.line(886);
        b.store(fa, 0); // f_op = NULL
        let remap = b.input(2);
        let map = b.block();
        let out = b.block();
        b.br(remap, map, out);
        b.switch_to(map);
        let d2 = b.input(3);
        b.io_delay(d2);
        let payload = b.func_addr(attacker_code);
        b.line(892);
        b.store(fa, payload); // attacker maps their page
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        // Credential check: reads the racy uid, grants root when 0.
        let mut b = mb.build_func(access_check);
        b.loc("kernel/cred.c", 410);
        let d = b.input(4);
        b.io_delay(d);
        let ca = b.global_addr(cred_uid);
        b.line(415);
        let uid = b.load(ca, Type::I64); // racy read
        let is_root = b.cmp(Pred::Eq, uid, 0);
        let grant = b.block();
        let deny = b.block();
        let out = b.block();
        b.br(is_root, grant, deny);
        b.switch_to(grant);
        b.line(420);
        b.set_privilege(0); // the privilege escalation site
        b.exec(ROOT_SHELL);
        b.jmp(out);
        b.switch_to(deny);
        b.output(21, 0);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        // exec/setuid transiently drops the uid to 0 and restores it.
        let mut b = mb.build_func(exec_setuid);
        b.loc("kernel/exec.c", 77);
        let d = b.input(5);
        b.io_delay(d);
        let ca = b.global_addr(cred_uid);
        b.line(80);
        b.store(ca, 0);
        let d2 = b.input(6);
        b.io_delay(d2);
        b.line(85);
        b.store(ca, 1000);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        b.loc("init/main.c", 1);
        let f = b.func_addr(fsync_impl);
        let fa = b.global_addr(f_op);
        b.store(fa, f);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(msync_thread, 0));
        tids.push(b.thread_create(uselib_thread, 0));
        tids.push(b.thread_create(access_check, 0));
        tids.push(b.thread_create(exec_setuid, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "Linux",
        module,
        entry: main,
        workloads: vec![
            ProgramInput::new(vec![0, 0, 0, 0, 0, 0, 0]).with_label("syscall fuzz batch"),
            ProgramInput::new(vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1])
                .with_label("syscall fuzz batch (extended coverage)"),
        ],
        exploit_inputs: vec![
            ProgramInput::new(vec![300, 150, 0, 0, 0, 0, 0]).with_label("uselib()+msync() timing"),
            ProgramInput::new(vec![400, 150, 1, 50, 0, 0, 0])
                .with_label("uselib()+mmap() root shell"),
            ProgramInput::new(vec![0, 0, 0, 0, 200, 100, 300])
                .with_label("execve()+setuid() timing"),
        ],
        attacks: vec![
            AttackSpec {
                id: "linux-uselib-fop",
                version: "Linux-2.6.10",
                vuln_type: "Null Func Ptr Deref",
                subtle_inputs: "Syscall parameters",
                advisory: Some("OSVDB-12791"),
                known: true,
                race_global: "f_op",
                expected_class: VulnClass::NullDeref,
                expected_dep: Some("DATA_DEP"),
                oracle: uselib_oracle,
            },
            AttackSpec {
                id: "linux-cred-escalation",
                version: "Linux-2.6.29",
                vuln_type: "Privilege Escalation",
                subtle_inputs: "Syscall parameters",
                advisory: None,
                known: true,
                race_global: "cred_uid",
                expected_class: VulnClass::PrivilegeOp,
                expected_dep: Some("CTRL_DEP"),
                oracle: cred_oracle,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn workloads_terminate() {
        let p = build();
        for w in &p.workloads {
            let mut sched = RandomScheduler::new(11);
            let o = Vm::run_quiet(&p.module, p.entry, w.clone(), &mut sched);
            assert_eq!(o.status, owl_vm::ExitStatus::Finished);
        }
    }

    #[test]
    fn uselib_null_deref_triggers() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            uselib_oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn uselib_root_shell_variant_triggers() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[1],
            &RunConfig::default(),
            1,
            20,
            |o| o.executed(ROOT_SHELL) && o.privilege == 0,
        );
        assert!(
            tries.is_some(),
            "the remapped page should take root within 20 runs"
        );
    }

    #[test]
    fn cred_escalation_triggers() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[2],
            &RunConfig::default(),
            1,
            20,
            cred_oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn both_races_reported() {
        let p = build();
        let r = owl_race::explore(
            &p.module,
            p.entry,
            &p.workloads,
            &owl_race::ExplorerConfig {
                runs_per_input: 15,
                ..Default::default()
            },
        );
        assert!(r.reports_on("f_op").next().is_some(), "f_op race");
        assert!(r.reports_on("cred_uid").next().is_some(), "cred race");
    }
}
