//! MySQL models: the FLUSH PRIVILEGES privilege-table race
//! (bug 24988, MySQL-5.0.27, "Access Permission") and the SET PASSWORD
//! double free (MySQL-5.1.35) — Table 4's MySQL rows.
//!
//! * **FLUSH PRIVILEGES** — the server rebuilds its in-memory ACL table
//!   while sessions concurrently consult it: the rebuilding thread
//!   frees the old table and clears the pointer before the new one is
//!   installed, and a session observing the cleared pointer skips the
//!   permission check — the paper triggered a privilege escalation
//!   "with only 18 repeated executions" of `flush privileges;`.
//! * **SET PASSWORD** — two sessions changing a password race on the
//!   shared credential buffer and both free it.
//!
//! Input words:
//! * `0` — FLUSH PRIVILEGES issued
//! * `1` — flush delay before tearing the table down
//! * `2` — rebuild delay before the new table is installed
//! * `3` — session uid (5 = unprivileged attacker)
//! * `4` — session delay before the ACL read
//! * `5` — SET PASSWORD issued (both sessions)
//! * `6`/`7` — the two sessions' delays between load and free
//! * `15` — noise gate

use crate::noise::{attach_noise, NoiseSpec};
use crate::spec::{AttackSpec, CorpusProgram};
use owl_ir::{assert_verified, ModuleBuilder, Pred, Type, VulnClass};
use owl_vm::{ExecOutcome, ProgramInput, Violation};

const ACL_WORDS: i64 = 8;
const SUPER: i64 = 2;

fn acl_oracle(o: &ExecOutcome) -> bool {
    // An unprivileged session ended up with root privileges.
    o.privilege == 0
}

fn dfree_oracle(o: &ExecOutcome) -> bool {
    o.any_violation(|v| matches!(v, Violation::DoubleFree { .. }))
}

/// Builds the MySQL corpus program.
pub fn build() -> CorpusProgram {
    let mut mb = ModuleBuilder::new("mysql");
    let acl_ptr = mb.global("acl_table", 1, Type::Ptr);
    let pwd_ptr = mb.global("pwd_buf", 1, Type::Ptr);

    let noise = attach_noise(
        &mut mb,
        "mysql/noise.c",
        &NoiseSpec {
            always_counters: 3,
            gated_counters: 45,
            adhoc_syncs: 6,
            locked_counters: 2,
            gate_input: 15,
        },
    );

    let flush_thread = mb.declare_func("acl_reload", 1);
    let session_thread = mb.declare_func("check_grant", 1);
    let setpw_a = mb.declare_func("set_password_a", 1);
    let setpw_b = mb.declare_func("set_password_b", 1);
    let main = mb.declare_func("main", 0);

    {
        // FLUSH PRIVILEGES: free old table, window, install new one.
        let mut b = mb.build_func(flush_thread);
        b.loc("sql_acl.cc", 1400);
        let en = b.input(0);
        let go = b.block();
        let out = b.block();
        b.br(en, go, out);
        b.switch_to(go);
        let d = b.input(1);
        b.io_delay(d);
        let aa = b.global_addr(acl_ptr);
        b.line(1410);
        let old = b.load(aa, Type::Ptr);
        b.line(1411);
        b.store(aa, 0); // table gone
        b.free(old);
        let d2 = b.input(2);
        b.io_delay(d2); // rebuild takes a while
        let fresh = b.malloc(ACL_WORDS);
        // Re-grant only uid 1.
        let slot = b.gep(fresh, 1);
        b.store(slot, SUPER);
        b.line(1420);
        b.store(aa, fresh);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        // A session consulting the ACL table. Observing a torn-down
        // table skips the check entirely (the historical fast path:
        // "no table loaded yet → trust the caller").
        let mut b = mb.build_func(session_thread);
        b.loc("sql_parse.cc", 2280);
        let d = b.input(4);
        b.io_delay(d);
        let uid = b.input(3);
        let aa = b.global_addr(acl_ptr);
        b.line(2285);
        let t = b.load(aa, Type::Ptr); // racy read
        let missing = b.cmp(Pred::Eq, t, 0);
        let grant = b.block();
        let check = b.block();
        let deny = b.block();
        let out = b.block();
        b.br(missing, grant, check);
        b.switch_to(check);
        b.line(2290);
        let slot = b.gep(t, uid);
        let lvl = b.load(slot, Type::I64); // may be a UAF read
        let privileged = b.cmp(Pred::Ge, lvl, SUPER);
        b.br(privileged, grant, deny);
        b.switch_to(grant);
        b.line(2295);
        b.set_privilege(0); // the access-permission site
        b.output(30, uid);
        b.jmp(out);
        b.switch_to(deny);
        b.output(31, uid);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    for (f, delay_idx, line) in [(setpw_a, 6i64, 3100u32), (setpw_b, 7, 3200)] {
        // SET PASSWORD: load the shared buffer, stall, free it.
        let mut b = mb.build_func(f);
        b.loc("set_var.cc", line);
        let en = b.input(5);
        let go = b.block();
        let out = b.block();
        b.br(en, go, out);
        b.switch_to(go);
        let pa = b.global_addr(pwd_ptr);
        b.line(line + 5);
        let p = b.load(pa, Type::Ptr); // racy read
        let live = b.cmp(Pred::Ne, p, 0);
        let fr = b.block();
        b.br(live, fr, out);
        b.switch_to(fr);
        let d = b.input(delay_idx);
        b.io_delay(d);
        b.line(line + 9);
        b.free(p); // the double-free site
        b.line(line + 10);
        b.store(pa, 0);
        b.jmp(out);
        b.switch_to(out);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        b.loc("mysqld.cc", 1);
        // Install the initial ACL table (uid 1 is super) and password
        // buffer.
        let table = b.malloc(ACL_WORDS);
        let slot = b.gep(table, 1);
        b.store(slot, SUPER);
        let aa = b.global_addr(acl_ptr);
        b.store(aa, table);
        let pwd = b.malloc(2);
        let pa = b.global_addr(pwd_ptr);
        b.store(pa, pwd);
        let mut tids = Vec::new();
        for &nf in &noise.threads {
            tids.push(b.thread_create(nf, 0));
        }
        tids.push(b.thread_create(flush_thread, 0));
        tids.push(b.thread_create(session_thread, 0));
        tids.push(b.thread_create(setpw_a, 0));
        tids.push(b.thread_create(setpw_b, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }

    let module = mb.finish();
    assert_verified(&module);

    CorpusProgram {
        name: "MySQL",
        module,
        entry: main,
        workloads: vec![
            ProgramInput::new(vec![1, 0, 0, 5, 0, 1, 0, 0]).with_label("sysbench oltp"),
            ProgramInput::new(vec![1, 0, 0, 5, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1])
                .with_label("sysbench oltp (extended coverage)"),
        ],
        exploit_inputs: vec![
            ProgramInput::new(vec![1, 100, 400, 5, 220, 0, 0, 0]).with_label("FLUSH PRIVILEGES"),
            ProgramInput::new(vec![0, 0, 0, 5, 0, 1, 150, 150]).with_label("SET PASSWORD"),
        ],
        attacks: vec![
            AttackSpec {
                id: "mysql-flush-privileges",
                version: "MySQL-5.0.27",
                vuln_type: "Access Permission",
                subtle_inputs: "FLUSH PRIVILEGES",
                advisory: Some("MySQL bug 24988"),
                known: true,
                race_global: "acl_table",
                expected_class: VulnClass::PrivilegeOp,
                expected_dep: Some("CTRL_DEP"),
                oracle: acl_oracle,
            },
            AttackSpec {
                id: "mysql-set-password",
                version: "MySQL-5.1.35",
                vuln_type: "Double Free",
                subtle_inputs: "SET PASSWORD",
                advisory: None,
                known: true,
                race_global: "pwd_buf",
                expected_class: VulnClass::MemoryOp,
                expected_dep: Some("DATA_DEP"),
                oracle: dfree_oracle,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_race::executions_until;
    use owl_vm::{RandomScheduler, RunConfig, Vm};

    #[test]
    fn workloads_terminate() {
        let p = build();
        for w in &p.workloads {
            let mut sched = RandomScheduler::new(5);
            let o = Vm::run_quiet(&p.module, p.entry, w.clone(), &mut sched);
            assert_eq!(o.status, owl_vm::ExitStatus::Finished);
        }
    }

    #[test]
    fn flush_privileges_escalates_within_twenty_runs() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[0],
            &RunConfig::default(),
            1,
            20,
            acl_oracle,
        );
        assert!(
            tries.is_some(),
            "the paper needed 18 executions; we allow 20"
        );
    }

    #[test]
    fn set_password_double_frees() {
        let p = build();
        let tries = executions_until(
            &p.module,
            p.entry,
            &p.exploit_inputs[1],
            &RunConfig::default(),
            1,
            20,
            dfree_oracle,
        );
        assert!(tries.is_some());
    }

    #[test]
    fn unprivileged_session_denied_without_flush() {
        let p = build();
        let input = ProgramInput::new(vec![0, 0, 0, 5, 0, 0, 0, 0]);
        for seed in 0..5 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&p.module, p.entry, input.clone(), &mut sched);
            assert!(!acl_oracle(&o), "seed {seed}");
            assert!(o.outputs.contains(&(31, 5)), "deny path taken: seed {seed}");
        }
    }

    #[test]
    fn both_attack_races_reported() {
        let p = build();
        let r = owl_race::explore(
            &p.module,
            p.entry,
            &p.workloads,
            &owl_race::ExplorerConfig {
                runs_per_input: 15,
                ..Default::default()
            },
        );
        assert!(r.reports_on("acl_table").next().is_some());
        assert!(r.reports_on("pwd_buf").next().is_some());
    }
}
