//! Regenerates the paper's evaluation tables (Tables 1–4, the §8.4
//! unknown-attack list, and a Figure-4/5 report sample).
//!
//! Run with `cargo bench --bench tables`. This is a plain harness
//! (`harness = false`): the artifact *is* the printed tables.

use owl::OwlConfig;
use owl_bench::{evaluate_all, figure5_sample, table1, table2, table3, table4, unknown_attacks};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("OWL evaluation — regenerating the paper's tables\n");
    let evals = evaluate_all(&OwlConfig::default());
    println!("{}", table1(&evals));
    println!("{}", table2(&evals));
    println!("{}", table3(&evals));
    println!("{}", table4(&evals));
    println!("{}", unknown_attacks(&evals));
    println!("{}", figure5_sample(&evals));
    println!("total evaluation time: {:.1}s", t0.elapsed().as_secs_f64());
}
