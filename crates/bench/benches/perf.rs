//! Criterion micro-benchmarks for OWL's components — the measurements
//! behind Table 3's analysis-cost column ("The performance of OWL's
//! static analysis tool is critical because OWL aims to be scalable to
//! large programs", §8.2) plus substrate throughput numbers.

#[cfg(feature = "criterion")]
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
#[cfg(not(feature = "criterion"))]
use owl_bench::harness::{criterion_group, criterion_main, BatchSize, Criterion};
use owl::{Owl, OwlConfig};
use owl_race::{explore, ExplorerConfig, HbConfig, HbDetector};
use owl_static::{AdhocSyncDetector, VulnAnalyzer, VulnConfig};
use owl_verify::{RaceVerifier, RaceVerifyConfig};
use owl_vm::{NullSink, RandomScheduler, RunConfig, Vm};

fn bench_vm_interpreter(c: &mut Criterion) {
    let p = owl_corpus::program("Libsafe").unwrap();
    c.bench_function("vm/libsafe_primary_workload", |b| {
        b.iter(|| {
            let mut sched = RandomScheduler::new(7);
            let vm = Vm::new(
                &p.module,
                p.entry,
                p.primary_workload().clone(),
                RunConfig::default(),
            );
            vm.run(&mut sched, &mut NullSink)
        })
    });
    let linux = owl_corpus::program("Linux").unwrap();
    c.bench_function("vm/linux_primary_workload", |b| {
        b.iter(|| {
            let mut sched = RandomScheduler::new(7);
            let vm = Vm::new(
                &linux.module,
                linux.entry,
                linux.primary_workload().clone(),
                RunConfig::default(),
            );
            vm.run(&mut sched, &mut NullSink)
        })
    });
}

fn bench_race_detection(c: &mut Criterion) {
    let p = owl_corpus::program("MySQL").unwrap();
    c.bench_function("race/hb_detection_mysql_run", |b| {
        b.iter(|| {
            let mut det = HbDetector::new(HbConfig::default());
            let mut sched = RandomScheduler::new(3);
            let vm = Vm::new(
                &p.module,
                p.entry,
                p.primary_workload().clone(),
                RunConfig::default(),
            );
            vm.run(&mut sched, &mut det)
        })
    });
}

fn bench_vuln_analysis(c: &mut Criterion) {
    // Pre-compute a verified race to analyze, then measure Algorithm 1
    // alone (Table 3 A.C.).
    for name in ["Libsafe", "Linux"] {
        let p = owl_corpus::program(name).unwrap();
        let result = explore(
            &p.module,
            p.entry,
            &p.workloads,
            &ExplorerConfig {
                runs_per_input: 10,
                ..Default::default()
            },
        );
        let attack_global = p.attacks[0].race_global;
        let report = result
            .reports_on(attack_global)
            .next()
            .expect("attack race present")
            .clone();
        let read = report.read_access().expect("read side").clone();
        c.bench_function(
            &format!("static/vuln_analysis_{}", name.to_lowercase()),
            |b| {
                b.iter_batched(
                    || VulnAnalyzer::new(&p.module, VulnConfig::default()),
                    |mut an| an.analyze(read.site, &read.stack),
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn bench_adhoc_detection(c: &mut Criterion) {
    let p = owl_corpus::program("Apache").unwrap();
    let result = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 10,
            ..Default::default()
        },
    );
    c.bench_function("static/adhoc_detection_apache_reports", |b| {
        b.iter(|| {
            let det = AdhocSyncDetector::new(&p.module);
            det.detect(&result.reports)
        })
    });
}

fn bench_race_verification(c: &mut Criterion) {
    let p = owl_corpus::program("SSDB").unwrap();
    let result = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 10,
            ..Default::default()
        },
    );
    let report = result
        .reports_on("db")
        .next()
        .expect("db race present")
        .clone();
    c.bench_function("verify/race_verification_ssdb", |b| {
        b.iter(|| {
            let verifier = RaceVerifier::new(
                &p.module,
                RaceVerifyConfig {
                    max_schedules: 8,
                    ..Default::default()
                },
            );
            verifier.verify(p.entry, p.primary_workload(), &report)
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let p = owl_corpus::program("SSDB").unwrap();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("full_pipeline_ssdb", |b| {
        b.iter(|| {
            let owl = Owl::new(&p.module, p.entry, OwlConfig::quick());
            owl.run("SSDB", &p.workloads, &p.exploit_inputs)
        })
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    // Atomicity-violation detection over a bank run.
    let bank = owl_corpus::extensions::bank_atomicity();
    c.bench_function("race/atomicity_detection_bank_run", |b| {
        b.iter(|| {
            let mut det = owl_race::AtomicityDetector::new();
            let mut sched = RandomScheduler::new(3);
            let vm = Vm::new(
                &bank.module,
                bank.entry,
                bank.primary_workload().clone(),
                RunConfig::default(),
            );
            vm.run(&mut sched, &mut det)
        })
    });
    // IR text round trip on the largest corpus module.
    let linux = owl_corpus::program("Linux").unwrap();
    let text = owl_ir::module_to_string(&linux.module);
    c.bench_function("ir/print_linux", |b| {
        b.iter(|| owl_ir::module_to_string(&linux.module))
    });
    c.bench_function("ir/parse_linux", |b| {
        b.iter(|| owl_ir::parse_module(&text).unwrap())
    });
    // Input synthesis over a hint.
    let mysql = owl_corpus::program("MySQL").unwrap();
    let raw = explore(
        &mysql.module,
        mysql.entry,
        &mysql.workloads,
        &ExplorerConfig {
            runs_per_input: 10,
            ..Default::default()
        },
    );
    let report = raw.reports_on("pwd_buf").next().expect("pwd race").clone();
    let read = report.read_access().unwrap().clone();
    let mut an = VulnAnalyzer::new(&mysql.module, VulnConfig::default());
    let (vulns, _) = an.analyze(read.site, &read.stack);
    let hint = vulns
        .iter()
        .find(|v| v.class == owl_ir::VulnClass::MemoryOp)
        .expect("hint")
        .clone();
    c.bench_function("static/input_synthesis_mysql_hint", |b| {
        b.iter(|| {
            let synth = owl_static::InputSynthesizer::new(&mysql.module);
            synth.refine_input(
                &owl_vm::ProgramInput::empty(),
                &hint.path_branches,
                hint.site,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_vm_interpreter,
    bench_race_detection,
    bench_vuln_analysis,
    bench_adhoc_detection,
    bench_race_verification,
    bench_full_pipeline,
    bench_extensions
);
criterion_main!(benches);
