//! Ablation study over OWL's design decisions (DESIGN.md §5).
//!
//! Run with `cargo bench --bench ablation`. Each section switches one
//! design decision off and reports what changes:
//!
//! * **A1 call-stack-guided traversal** (§4.1/§6.1) — without walking
//!   the report's dynamic call stack, cross-function attacks (Libsafe)
//!   disappear.
//! * **A2 control-dependence tracking** (§6.1) — without control flow,
//!   the CTRL_DEP attacks disappear (ConSeq's blind spot).
//! * **A3 adhoc-sync annotation** (§5.1) — without annotation the
//!   verifier has to grind through every benign busy-wait report.
//! * **A4 verify-before-analyze** (Figure 3 ordering) — analyzing raw
//!   reports instead of verified ones multiplies analyzer invocations.
//! * **A5 detector choice** — an Eraser-style lockset front-end floods
//!   even harder than happens-before.
//! * **A6 ConSeq baseline** — intra-procedural data-flow-only
//!   consequence analysis misses the spread-out attacks (§9).
//! * **A7 points-to memory propagation** — without the Andersen
//!   solution, corruption dies at the first store: the heap-relay and
//!   cache-relay extension attacks disappear.
//! * **A8 memoized function summaries** — without summaries (and the
//!   caller walk they enable) the cache-relay attack disappears, and
//!   repeated callee walks are paid per report instead of once.

use owl::{evaluate_program, OwlConfig};
use owl_race::{explore, ExplorerConfig, LocksetDetector};
use owl_static::{ConseqAnalyzer, VulnAnalyzer, VulnConfig};
use owl_verify::{RaceVerifier, RaceVerifyConfig};
use owl_vm::{RandomScheduler, RunConfig, Vm};
use std::time::Instant;

fn detection_with(config_mod: impl Fn(&mut VulnConfig)) -> (usize, usize) {
    // Returns (#attacks detected, #attacks total) across the corpus
    // with a modified vulnerability-analysis configuration.
    let mut cfg = OwlConfig::quick();
    config_mod(&mut cfg.vuln);
    let mut detected = 0;
    let mut total = 0;
    for p in owl_corpus::all_programs() {
        let eval = evaluate_program(&p, &cfg);
        detected += eval.detected_count();
        total += eval.attacks.len();
    }
    (detected, total)
}

/// Builds a race-free staged pipeline: `stages` sequential worker
/// threads, each writing its own cell before the next is spawned (all
/// ordering comes from fork/join).
fn fork_join_pipeline(stages: u32) -> (owl_ir::Module, owl_ir::FuncId) {
    use owl_ir::{ModuleBuilder, Type};
    let mut mb = ModuleBuilder::new("fork-join");
    let cells: Vec<_> = (0..stages)
        .map(|i| mb.global(format!("cell_{i}"), 1, Type::I64))
        .collect();
    let workers: Vec<_> = (0..stages)
        .map(|i| mb.declare_func(format!("stage_{i}"), 1))
        .collect();
    for (i, &w) in workers.iter().enumerate() {
        let mut b = mb.build_func(w);
        // Read the previous stage's cell (ordered by join), write ours.
        if i > 0 {
            let prev = b.global_addr(cells[i - 1]);
            let v = b.load(prev, Type::I64);
            let a = b.global_addr(cells[i]);
            let v2 = b.add(v, 1);
            b.store(a, v2);
        } else {
            let a = b.global_addr(cells[i]);
            b.store(a, 1);
        }
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        for &w in &workers {
            let t = b.thread_create(w, 0);
            b.thread_join(t); // full ordering between stages
        }
        b.ret(None);
    }
    (mb.finish(), main)
}

fn main() {
    println!("OWL ablation study\n");

    // A1: call-stack-guided traversal.
    let (with_cs, total) = detection_with(|_| {});
    let (without_cs, _) = detection_with(|v| v.follow_call_stack = false);
    println!("A1 call-stack-guided traversal:");
    println!("   with   : {with_cs}/{total} attacks detected");
    println!("   without: {without_cs}/{total} attacks detected\n");

    // A2: control-dependence tracking.
    let (without_ctrl, _) = detection_with(|v| v.track_control = false);
    println!("A2 control-dependence tracking:");
    println!("   with   : {with_cs}/{total} attacks detected");
    println!("   without: {without_ctrl}/{total} attacks detected\n");

    // A3: adhoc-sync annotation — measure the verifier grind saved.
    println!("A3 adhoc-sync annotation (verification workload):");
    for name in ["Apache", "MySQL", "Linux"] {
        let p = owl_corpus::program(name).unwrap();
        let base = ExplorerConfig {
            runs_per_input: 10,
            ..Default::default()
        };
        let raw = explore(&p.module, p.entry, &p.workloads, &base);
        let det = owl_static::AdhocSyncDetector::new(&p.module);
        let anns: Vec<_> = det
            .detect(&raw.reports)
            .into_iter()
            .map(|(_, a)| a)
            .collect();
        let annotated = explore(
            &p.module,
            p.entry,
            &p.workloads,
            &ExplorerConfig {
                annotations: anns.clone(),
                ..base
            },
        );
        println!(
            "   {name:10} raw reports {:4} -> annotated {:4} ({} annotations)",
            raw.reports.len(),
            annotated.reports.len(),
            anns.len()
        );
    }
    println!();

    // A4: verify-before-analyze ordering.
    println!("A4 verify-before-analyze (analyzer invocations per program):");
    for name in ["Apache", "MySQL"] {
        let p = owl_corpus::program(name).unwrap();
        let raw = explore(
            &p.module,
            p.entry,
            &p.workloads,
            &ExplorerConfig {
                runs_per_input: 10,
                ..Default::default()
            },
        );
        // Analyze-everything regime.
        let t0 = Instant::now();
        let mut analyzed_all = 0;
        let mut an = VulnAnalyzer::new(&p.module, VulnConfig::default());
        for r in &raw.reports {
            if let Some(read) = r.read_access() {
                let _ = an.analyze(read.site, &read.stack);
                analyzed_all += 1;
            }
        }
        let all_time = t0.elapsed();
        // Verify-first regime.
        let verifier = RaceVerifier::new(
            &p.module,
            RaceVerifyConfig {
                max_schedules: 4,
                ..Default::default()
            },
        );
        let t1 = Instant::now();
        let mut analyzed_verified = 0;
        let mut an2 = VulnAnalyzer::new(&p.module, VulnConfig::default());
        for r in &raw.reports {
            let v = verifier.verify(p.entry, p.primary_workload(), r);
            if v.confirmed {
                if let Some(read) = r.read_access() {
                    let _ = an2.analyze(read.site, &read.stack);
                    analyzed_verified += 1;
                }
            }
        }
        let verified_time = t1.elapsed();
        println!(
            "   {name:10} analyze-all: {analyzed_all:4} invocations ({:6.1} ms) | verify-first: {analyzed_verified:4} invocations ({:6.1} ms incl. verification)",
            all_time.as_secs_f64() * 1e3,
            verified_time.as_secs_f64() * 1e3,
        );
    }
    println!();

    // A5: detector choice. Lockset reports once per shared variable
    // (so raw counts are lower than HB's per-site-pair counts), but it
    // cannot see fork/join ordering: on a properly staged pipeline it
    // flags every hand-off as a race while happens-before stays silent.
    println!("A5 detector front-end:");
    for name in ["Apache", "MySQL", "Memcached"] {
        let p = owl_corpus::program(name).unwrap();
        let hb = explore(
            &p.module,
            p.entry,
            &p.workloads,
            &ExplorerConfig {
                runs_per_input: 10,
                ..Default::default()
            },
        );
        // Lockset over the same schedules.
        let mut lockset = LocksetDetector::new();
        for input in &p.workloads {
            for seed in 1..11 {
                let mut sched = RandomScheduler::new(seed);
                let vm = Vm::new(&p.module, p.entry, input.clone(), RunConfig::default());
                let _ = vm.run(&mut sched, &mut lockset);
            }
        }
        println!(
            "   {name:10} happens-before {:4} site pairs | lockset {:4} variables",
            hb.reports.len(),
            lockset.reports().len()
        );
    }
    {
        // A fork/join staged pipeline: race-free by construction.
        let (m, entry) = fork_join_pipeline(24);
        let hb = explore(
            &m,
            entry,
            &[],
            &ExplorerConfig {
                runs_per_input: 5,
                ..Default::default()
            },
        );
        let mut lockset = LocksetDetector::new();
        for seed in 1..6 {
            let mut sched = RandomScheduler::new(seed);
            let vm = Vm::new(
                &m,
                entry,
                owl_vm::ProgramInput::empty(),
                RunConfig::default(),
            );
            let _ = vm.run(&mut sched, &mut lockset);
        }
        println!(
            "   {:10} happens-before {:4} (correct) | lockset {:4} false positives",
            "fork-join", // race-free staged hand-offs
            hb.reports.len(),
            lockset.reports().len()
        );
    }
    println!();

    // A6: ConSeq-style baseline vs Algorithm 1 on the attack races.
    println!("A6 consequence analysis (attack hints found):");
    let mut owl_hits = 0;
    let mut conseq_hits = 0;
    let mut cases = 0;
    for p in owl_corpus::all_programs() {
        let raw = explore(
            &p.module,
            p.entry,
            &p.workloads,
            &ExplorerConfig {
                runs_per_input: 12,
                ..Default::default()
            },
        );
        for atk in &p.attacks {
            let Some(report) = raw.reports_on(atk.race_global).next() else {
                continue;
            };
            let Some(read) = report.read_access() else {
                continue;
            };
            cases += 1;
            let mut an = VulnAnalyzer::new(&p.module, VulnConfig::default());
            let (owl_reports, _) = an.analyze(read.site, &read.stack);
            if owl_reports.iter().any(|r| r.class == atk.expected_class) {
                owl_hits += 1;
            }
            let conseq = ConseqAnalyzer::new(&p.module);
            let conseq_reports = conseq.analyze(read.site);
            if conseq_reports.iter().any(|r| r.class == atk.expected_class) {
                conseq_hits += 1;
            }
        }
    }
    println!("   Algorithm 1 (OWL): {owl_hits}/{cases} attack races produce the expected hint");
    println!("   ConSeq baseline  : {conseq_hits}/{cases}");
    println!("   (first raw report per racy global; the full pipeline analyzes");
    println!("    every verified report and detects 10/10 — see the tables bench)");
    println!();

    // A7: memory-aware propagation. The paper's attacks flow through
    // registers, so the corpus totals hold either way; the relay
    // extensions only exist through memory.
    println!("A7 points-to memory propagation (attacks detected):");
    let extensions = [
        owl_corpus::extensions::heap_relay(),
        owl_corpus::extensions::cache_relay(),
    ];
    for p in &extensions {
        let on = evaluate_program(p, &OwlConfig::quick());
        let mut cfg = OwlConfig::quick();
        cfg.vuln.points_to = false;
        let off = evaluate_program(p, &cfg);
        println!(
            "   {:10} with: {}/{} | without: {}/{} (register-only regime)",
            p.name,
            on.detected_count(),
            on.attacks.len(),
            off.detected_count(),
            off.attacks.len()
        );
    }
    let (without_pts, _) = detection_with(|v| v.points_to = false);
    println!("   paper corpus : with: {with_cs}/{total} | without: {without_pts}/{total}\n");

    // A8: memoized summaries and the whole-program caller walk.
    println!("A8 memoized function summaries:");
    {
        let p = owl_corpus::extensions::cache_relay();
        let on = evaluate_program(&p, &OwlConfig::quick());
        let mut cfg = OwlConfig::quick();
        cfg.vuln.summaries = false;
        let off = evaluate_program(&p, &cfg);
        println!(
            "   {:10} with: {}/{} | without: {}/{} (no caller walk)",
            p.name,
            on.detected_count(),
            on.attacks.len(),
            off.detected_count(),
            off.attacks.len()
        );
    }
    for name in ["Apache", "MySQL"] {
        let p = owl_corpus::program(name).unwrap();
        let t0 = Instant::now();
        let on = evaluate_program(&p, &OwlConfig::quick());
        let on_time = t0.elapsed();
        let mut cfg = OwlConfig::quick();
        cfg.vuln.summaries = false;
        let t1 = Instant::now();
        let off = evaluate_program(&p, &cfg);
        let off_time = t1.elapsed();
        let h = &on.result.health;
        println!(
            "   {name:10} cache {} hit(s) / {} miss(es), points-to solve {:?}; pipeline wall {:6.1} ms with vs {:6.1} ms without (detected {} vs {})",
            h.summary_cache_hits,
            h.summary_cache_misses,
            h.points_to_solve,
            on_time.as_secs_f64() * 1e3,
            off_time.as_secs_f64() * 1e3,
            on.detected_count(),
            off.detected_count()
        );
    }
}
