//! Stage-1 detector throughput: the epoch fast path against the
//! vector-clock reference backend, and schedule-exploration scaling
//! across worker counts.
//!
//! The replay benches time *detection alone*: a multithreaded trace is
//! captured once through `VecSink`, then streamed into fresh detectors
//! so the VM's interpretation cost is excluded from the timed window.
//! Alongside the per-iteration timings this target emits derived
//! metrics (`events_per_sec_*`, `epoch_speedup`, `epoch_fast_path_rate`,
//! `explore_wall_us_workers_*`, `fork_speedup_*`, `prefix_share_ratio`,
//! `dedup_ratio`) into `BENCH_detect.json`.

#[cfg(feature = "criterion")]
use criterion::{criterion_group, criterion_main, Criterion};
#[cfg(not(feature = "criterion"))]
use owl_bench::harness::{criterion_group, criterion_main, Criterion};
use owl::json::Json;
use owl_bench::harness::metric;
use owl_ir::analysis::ElisionMap;
use owl_ir::{FuncId, InstRef, ModuleBuilder, Module, Type};
use owl_race::{explore, ExplorerConfig, HbBackend, HbConfig, HbDetector, StreamConfig};
use owl_vm::{ProgramInput, RandomScheduler, RunConfig, TraceEvent, TraceSink, VecSink, Vm};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// A realistically-synchronized workload: `threads` straight-line
/// threads spending most accesses on thread-private state (totally
/// ordered — FastTrack's fast path), periodically taking a lock for
/// shared counters, and finishing with a few unlocked accesses to one
/// shared global so the trace still carries genuine races. This is
/// the access mix the epoch representation is built for: the
/// reference backend snapshots a full vector clock per remembered
/// access even when everything is ordered.
fn workload_module(threads: usize, per_thread: usize) -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("detect-bench");
    let private: Vec<_> = (0..threads)
        .map(|t| mb.global(format!("local{t}"), 1, Type::I64))
        .collect();
    let shared: Vec<_> = (0..4)
        .map(|i| mb.global(format!("shared{i}"), 1, Type::I64))
        .collect();
    let racy = mb.global("racy", 1, Type::I64);
    let mutex = mb.global("m", 1, Type::I64);
    let fns: Vec<FuncId> = (0..threads)
        .map(|i| mb.declare_func(format!("t{i}"), 1))
        .collect();
    for (t, f) in fns.iter().enumerate() {
        let mut b = mb.build_func(*f);
        for k in 0..per_thread {
            if k % 128 == 0 {
                let la = b.global_addr(mutex);
                let sa = b.global_addr(shared[(t + k) % shared.len()]);
                b.lock(la);
                b.load(sa, Type::I64);
                b.store(sa, k as i64);
                b.unlock(la);
            } else {
                let pa = b.global_addr(private[t]);
                if k % 2 == 0 {
                    b.load(pa, Type::I64);
                } else {
                    b.store(pa, k as i64);
                }
            }
        }
        // The racy tail: unlocked shared accesses, a handful of sites.
        let ra = b.global_addr(racy);
        b.store(ra, t as i64);
        b.load(ra, Type::I64);
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let tids: Vec<_> = fns.iter().map(|&f| b.thread_create(f, 0)).collect();
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }
    (mb.finish(), main)
}

fn capture_trace(module: &Module, entry: FuncId) -> Vec<TraceEvent> {
    capture_trace_elided(module, entry, None)
}

/// Same capture, optionally with an elision map installed — the seed
/// is fixed, so the schedule (and therefore the event stream) is
/// identical to the plain capture modulo `no_shadow` stamps.
fn capture_trace_elided(
    module: &Module,
    entry: FuncId,
    elided: Option<Arc<HashSet<InstRef>>>,
) -> Vec<TraceEvent> {
    let mut sink = VecSink::default();
    let mut sched = RandomScheduler::new(11);
    let mut vm = Vm::new(module, entry, ProgramInput::empty(), RunConfig::default());
    if let Some(e) = elided {
        vm = vm.with_elided_sites(e);
    }
    let _ = vm.run(&mut sched, &mut sink);
    sink.events
}

fn replay(events: &[TraceEvent], backend: HbBackend) -> HbDetector {
    let mut det = HbDetector::new(HbConfig {
        backend,
        ..HbConfig::default()
    });
    for ev in events {
        use owl_vm::TraceSink as _;
        det.on_event(ev);
    }
    det
}

/// Mean seconds per replay over `reps` repetitions (one untimed
/// warmup) — a finer-grained number than the harness's 3-iteration
/// loop, used for the derived throughput metrics.
fn mean_replay_secs(events: &[TraceEvent], backend: HbBackend) -> f64 {
    black_box(replay(events, backend));
    let reps = 10u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(replay(events, backend));
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

fn bench_detector_replay(c: &mut Criterion) {
    let (m, entry) = workload_module(32, 1024);
    let events = capture_trace(&m, entry);
    metric("trace_events", Json::UInt(events.len() as u64));

    // The check-elision pre-pass, applied to the same workload: a
    // second capture under the same seed differs only in `no_shadow`
    // stamps.
    let elision = ElisionMap::analyze(&m, entry);
    let es = elision.stats();
    let marked = capture_trace_elided(&m, entry, Some(Arc::new(elision.elided_set())));
    assert_eq!(marked.len(), events.len(), "stamping changed the schedule");

    // All backends must agree before we time anything — including the
    // elided epoch path against the (never elided) reference oracle.
    let reference = replay(&events, HbBackend::Reference).finish(&m);
    let epoch = replay(&events, HbBackend::Epoch).finish(&m);
    assert_eq!(epoch, reference, "backends diverge on the bench trace");
    let epoch_elided = replay(&marked, HbBackend::Epoch).finish(&m);
    assert_eq!(
        epoch_elided, reference,
        "elision changed the epoch report stream"
    );
    metric("trace_reports", Json::UInt(reference.len() as u64));

    let mut group = c.benchmark_group("detect");
    group.bench_function("replay_reference", |b| {
        b.iter(|| replay(&events, HbBackend::Reference))
    });
    group.bench_function("replay_epoch", |b| b.iter(|| replay(&events, HbBackend::Epoch)));
    group.bench_function("replay_epoch_elide", |b| {
        b.iter(|| replay(&marked, HbBackend::Epoch))
    });
    group.finish();

    let ref_secs = mean_replay_secs(&events, HbBackend::Reference);
    let epoch_secs = mean_replay_secs(&events, HbBackend::Epoch);
    let elide_secs = mean_replay_secs(&marked, HbBackend::Epoch);
    let throughput = |secs: f64| (events.len() as f64 / secs) as u64;
    metric("events_per_sec_reference", Json::UInt(throughput(ref_secs)));
    metric("events_per_sec_epoch", Json::UInt(throughput(epoch_secs)));
    metric(
        "events_per_sec_epoch_elide",
        Json::UInt(throughput(elide_secs)),
    );
    metric("epoch_speedup", Json::Float(ref_secs / epoch_secs));
    metric(
        "elide_speedup_over_epoch",
        Json::Float(epoch_secs / elide_secs),
    );
    let stats = replay(&events, HbBackend::Epoch)
        .epoch_stats()
        .expect("epoch backend exposes stats");
    metric("epoch_fast_path_rate", Json::Float(stats.fast_path_rate()));

    // Predictive backends on the same trace: their report sets must
    // subsume the reference sweep (prediction is strictly additive),
    // and the replay cost — HB sweep plus candidate enumeration plus
    // witness checks — is what the throughput rows quantify.
    let keyset = |reports: &[owl_race::RaceReport]| {
        reports
            .iter()
            .map(|r| (r.addr, r.key()))
            .collect::<HashSet<_>>()
    };
    let ref_keys = keyset(&reference);
    for backend in [HbBackend::SyncPreserving, HbBackend::SyncReversal] {
        let predicted = replay(&events, backend).finish(&m);
        assert!(
            ref_keys.is_subset(&keyset(&predicted)),
            "{backend:?} lost reference races on the bench trace"
        );
    }
    let mut group = c.benchmark_group("detect_predict");
    group.bench_function("replay_syncp", |b| {
        b.iter(|| replay(&events, HbBackend::SyncPreserving).finish(&m))
    });
    group.bench_function("replay_syncrev", |b| {
        b.iter(|| replay(&events, HbBackend::SyncReversal).finish(&m))
    });
    group.finish();
    let mean_predictive_secs = |backend: HbBackend| {
        black_box(replay(&events, backend).finish(&m));
        let reps = 5u32;
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(replay(&events, backend).finish(&m));
        }
        t0.elapsed().as_secs_f64() / f64::from(reps)
    };
    let syncp_secs = mean_predictive_secs(HbBackend::SyncPreserving);
    let syncrev_secs = mean_predictive_secs(HbBackend::SyncReversal);
    metric("events_per_sec_syncp", Json::UInt(throughput(syncp_secs)));
    metric("events_per_sec_syncrev", Json::UInt(throughput(syncrev_secs)));
    metric("syncp_overhead_over_epoch", Json::Float(syncp_secs / epoch_secs));
    metric(
        "syncrev_overhead_over_epoch",
        Json::Float(syncrev_secs / epoch_secs),
    );
    let mut det = replay(&events, HbBackend::SyncPreserving);
    det.run_prediction();
    let pstats = det.predict_stats();
    metric("predict_candidates", Json::UInt(pstats.candidates));
    metric("predict_witnessed", Json::UInt(pstats.witnessed));

    // Per-class elided-site fractions plus how much of the trace the
    // elision actually removed from the shadow-memory path.
    let site_fraction = |n: usize| {
        if es.sites_total == 0 {
            0.0
        } else {
            n as f64 / es.sites_total as f64
        }
    };
    metric(
        "elided_site_fraction_thread_local",
        Json::Float(site_fraction(es.thread_local)),
    );
    metric(
        "elided_site_fraction_lock_dominated",
        Json::Float(site_fraction(es.lock_dominated)),
    );
    metric(
        "elided_site_fraction_read_only",
        Json::Float(site_fraction(es.read_only)),
    );
    let elide_stats = replay(&marked, HbBackend::Epoch)
        .epoch_stats()
        .expect("epoch backend exposes stats");
    metric("events_elided", Json::UInt(elide_stats.events_elided()));
}

/// The pre-`on_event_owned` capture path: every event crosses the sink
/// boundary by reference and is cloned into the buffer (stack `Arc`
/// bump plus a struct copy per event). Kept as a bench-only baseline
/// so `owned_capture_speedup` tracks what taking events by value
/// actually buys.
#[derive(Default)]
struct CloningSink {
    events: Vec<TraceEvent>,
}

impl TraceSink for CloningSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

/// Trace-capture cost: the VM emitting into a by-value sink
/// (`on_event_owned`, today's path) against the old clone-per-event
/// hand-off.
fn bench_capture_handoff(c: &mut Criterion) {
    let (m, entry) = workload_module(32, 1024);
    let run = |sink: &mut dyn TraceSink| {
        let mut sched = RandomScheduler::new(11);
        let _ = Vm::new(&m, entry, ProgramInput::empty(), RunConfig::default()).run(&mut sched, sink);
    };

    let mut group = c.benchmark_group("capture");
    group.bench_function("capture_owned", |b| {
        b.iter(|| {
            let mut sink = VecSink::default();
            run(&mut sink);
            black_box(sink.events.len())
        })
    });
    group.bench_function("capture_cloned", |b| {
        b.iter(|| {
            let mut sink = CloningSink::default();
            run(&mut sink);
            black_box(sink.events.len())
        })
    });
    group.finish();

    let mean_secs = |cloned: bool| {
        let reps = 10u32;
        let t0 = Instant::now();
        for _ in 0..reps {
            if cloned {
                let mut sink = CloningSink::default();
                run(&mut sink);
                black_box(sink.events.len());
            } else {
                let mut sink = VecSink::default();
                run(&mut sink);
                black_box(sink.events.len());
            }
        }
        t0.elapsed().as_secs_f64() / f64::from(reps)
    };
    let owned = mean_secs(false);
    let cloned = mean_secs(true);
    metric("owned_capture_speedup", Json::Float(cloned / owned));
}

/// Streaming under a hard trace-memory budget: the explorer spilling
/// cold segments to disk and replaying them, against the unbounded
/// in-memory window. Reports are asserted identical; the metrics
/// quantify the spill overhead.
fn bench_bounded_stream(c: &mut Criterion) {
    let p = owl_corpus::program("MySQL").expect("corpus program");
    let base_cfg = ExplorerConfig {
        runs_per_input: 8,
        ..ExplorerConfig::default()
    };
    let spill_dir = std::env::temp_dir().join(format!("owl-bench-spill-{}", std::process::id()));
    let bounded_cfg = ExplorerConfig {
        stream: StreamConfig {
            max_trace_mem: Some(16 * 1024),
            spill_dir: Some(spill_dir.clone()),
            ..StreamConfig::default()
        },
        ..base_cfg.clone()
    };

    let unbounded = explore(&p.module, p.entry, &p.workloads, &base_cfg);
    let bounded = explore(&p.module, p.entry, &p.workloads, &bounded_cfg);
    assert_eq!(
        bounded.reports, unbounded.reports,
        "spilling changed the report stream"
    );
    assert!(bounded.trace_spill_segments > 0, "budget too high to spill");
    metric("spill_segments", Json::UInt(bounded.trace_spill_segments));
    metric("spilled_bytes", Json::UInt(bounded.trace_spilled_bytes));

    let mut group = c.benchmark_group("stream");
    group.bench_function("explore_unbounded", |b| {
        b.iter(|| explore(&p.module, p.entry, &p.workloads, &base_cfg))
    });
    group.bench_function("explore_spill_16k", |b| {
        b.iter(|| explore(&p.module, p.entry, &p.workloads, &bounded_cfg))
    });
    group.finish();

    let mean = |cfg: &ExplorerConfig| {
        let reps = 5u32;
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(explore(&p.module, p.entry, &p.workloads, cfg));
        }
        t0.elapsed().as_secs_f64() / f64::from(reps)
    };
    metric(
        "spill_overhead_ratio",
        Json::Float(mean(&bounded_cfg) / mean(&base_cfg)),
    );
    let _ = std::fs::remove_dir_all(&spill_dir);
}

fn bench_explore_scaling(c: &mut Criterion) {
    let p = owl_corpus::program("MySQL").expect("corpus program");
    let mut group = c.benchmark_group("explore");
    for workers in [1usize, 2, 4] {
        let cfg = ExplorerConfig {
            runs_per_input: 8,
            workers,
            ..ExplorerConfig::default()
        };
        group.bench_function(&format!("mysql_workers_{workers}"), |b| {
            b.iter(|| explore(&p.module, p.entry, &p.workloads, &cfg))
        });
        let t0 = Instant::now();
        black_box(explore(&p.module, p.entry, &p.workloads, &cfg));
        metric(
            &format!("explore_wall_us_workers_{workers}"),
            Json::UInt(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64),
        );
    }
    group.finish();
}

/// Prefix-sharing fork mode against scratch re-execution across the
/// whole corpus. Reports are asserted identical before anything is
/// timed — the speedup only counts if the results are byte-equal —
/// and the per-program counters quantify where the savings come from:
/// `prefix_share_ratio` is the fraction of total scheduler steps the
/// snapshot prefix avoided re-executing, `dedup_ratio` the fraction
/// of seed units collapsed by schedule-signature dedup.
fn bench_fork_prefix(c: &mut Criterion) {
    // A seed-sweep-shaped budget: enough seeds per input that the
    // shared prefix is amortized the way `run`/`campaign` amortize it.
    const RUNS_PER_INPUT: u64 = 32;
    let forked_cfg = ExplorerConfig {
        runs_per_input: RUNS_PER_INPUT,
        ..ExplorerConfig::default()
    };
    let scratch_cfg = ExplorerConfig {
        fork: false,
        ..forked_cfg.clone()
    };

    let mut group = c.benchmark_group("fork");
    let mut forked_total = 0.0f64;
    let mut scratch_total = 0.0f64;
    let mut steps_total = 0u64;
    let mut saved_total = 0u64;
    let mut deduped_total = 0u64;
    let mut runs_total = 0u64;
    for p in owl_corpus::all_programs() {
        let forked = explore(&p.module, p.entry, &p.workloads, &forked_cfg);
        let scratch = explore(&p.module, p.entry, &p.workloads, &scratch_cfg);
        assert_eq!(
            forked.reports, scratch.reports,
            "{}: fork mode changed the report stream",
            p.name
        );
        assert_eq!(
            forked.outcomes, scratch.outcomes,
            "{}: fork mode changed an execution outcome",
            p.name
        );

        let tag = p.name.to_lowercase();
        group.bench_function(&format!("explore_forked_{tag}"), |b| {
            b.iter(|| explore(&p.module, p.entry, &p.workloads, &forked_cfg))
        });
        group.bench_function(&format!("explore_scratch_{tag}"), |b| {
            b.iter(|| explore(&p.module, p.entry, &p.workloads, &scratch_cfg))
        });

        // Best-of-reps: the min is the standard low-noise wall-time
        // estimator on a shared box, and it is applied symmetrically
        // to both modes.
        let best = |cfg: &ExplorerConfig| {
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    black_box(explore(&p.module, p.entry, &p.workloads, cfg));
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let forked_secs = best(&forked_cfg);
        let scratch_secs = best(&scratch_cfg);
        forked_total += forked_secs;
        scratch_total += scratch_secs;
        metric(
            &format!("explore_forked_us_{tag}"),
            Json::UInt((forked_secs * 1e6) as u64),
        );
        metric(
            &format!("explore_scratch_us_{tag}"),
            Json::UInt((scratch_secs * 1e6) as u64),
        );
        metric(&format!("fork_speedup_{tag}"), Json::Float(scratch_secs / forked_secs));
        metric(&format!("units_forked_{tag}"), Json::UInt(forked.units_forked));
        metric(
            &format!("prefix_steps_saved_{tag}"),
            Json::UInt(forked.prefix_steps_saved),
        );
        metric(
            &format!("schedules_deduped_{tag}"),
            Json::UInt(forked.schedules_deduped),
        );
        metric(&format!("snapshot_bytes_{tag}"), Json::UInt(forked.snapshot_bytes));

        steps_total += forked.outcomes.iter().map(|o| o.steps).sum::<u64>();
        saved_total += forked.prefix_steps_saved;
        deduped_total += forked.schedules_deduped;
        runs_total += forked.runs;
    }
    group.finish();

    metric("explore_forked_us_total", Json::UInt((forked_total * 1e6) as u64));
    metric("explore_scratch_us_total", Json::UInt((scratch_total * 1e6) as u64));
    metric("fork_speedup_total", Json::Float(scratch_total / forked_total));
    metric(
        "prefix_share_ratio",
        Json::Float(if steps_total == 0 { 0.0 } else { saved_total as f64 / steps_total as f64 }),
    );
    metric(
        "dedup_ratio",
        Json::Float(if runs_total == 0 { 0.0 } else { deduped_total as f64 / runs_total as f64 }),
    );

    // The startup-weighted regime. The corpus models compress each
    // application's initialization down to a handful of instructions —
    // real OWL targets (MySQL, Apache) execute a long single-threaded
    // startup before any request thread exists, and that startup is
    // exactly what every scratch seed re-executes. This module keeps
    // the corpus's concurrent shape but restores a realistic
    // setup-to-concurrency ratio, so the row quantifies what prefix
    // sharing buys once startup is not modeled away.
    let (sm, s_entry) = startup_heavy_module();
    let s_input = [ProgramInput::empty()];
    let forked = explore(&sm, s_entry, &s_input, &forked_cfg);
    let scratch = explore(&sm, s_entry, &s_input, &scratch_cfg);
    assert_eq!(forked.reports, scratch.reports, "startup sweep: fork changed reports");
    assert_eq!(forked.outcomes, scratch.outcomes, "startup sweep: fork changed outcomes");
    assert!(!forked.reports.is_empty(), "startup sweep found no race — bench is inert");
    let mut group = c.benchmark_group("fork");
    group.bench_function("explore_forked_startup", |b| {
        b.iter(|| explore(&sm, s_entry, &s_input, &forked_cfg))
    });
    group.bench_function("explore_scratch_startup", |b| {
        b.iter(|| explore(&sm, s_entry, &s_input, &scratch_cfg))
    });
    group.finish();
    let best = |cfg: &ExplorerConfig| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                black_box(explore(&sm, s_entry, &s_input, cfg));
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let forked_secs = best(&forked_cfg);
    let scratch_secs = best(&scratch_cfg);
    metric("explore_forked_us_startup", Json::UInt((forked_secs * 1e6) as u64));
    metric("explore_scratch_us_startup", Json::UInt((scratch_secs * 1e6) as u64));
    metric("fork_speedup_startup", Json::Float(scratch_secs / forked_secs));
    metric("prefix_steps_saved_startup", Json::UInt(forked.prefix_steps_saved));
    metric("schedules_deduped_startup", Json::UInt(forked.schedules_deduped));
    metric("snapshot_bytes_startup", Json::UInt(forked.snapshot_bytes));
    let steps: u64 = forked.outcomes.iter().map(|o| o.steps).sum();
    metric(
        "prefix_share_ratio_startup",
        Json::Float(if steps == 0 { 0.0 } else { forked.prefix_steps_saved as f64 / steps as f64 }),
    );
}

/// See [`bench_fork_prefix`]: a service model with a realistic
/// single-threaded startup — building a table and a config area entry
/// by entry, the work the corpus models elide — before two request
/// threads race on a shared counter the way the corpus programs do.
fn startup_heavy_module() -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("startup-heavy");
    let table = mb.global("table", 512, Type::I64);
    let config = mb.global("config", 128, Type::I64);
    let racy = mb.global("hits", 1, Type::I64);
    let worker = mb.declare_func("worker", 1);
    {
        let mut b = mb.build_func(worker);
        let ta = b.global_addr(table);
        let ra = b.global_addr(racy);
        // A request: read a few table entries, bump the hit counter
        // unlocked (the corpus-style race under test).
        for k in 0..8i64 {
            let slot = b.gep(ta, (k * 37) % 512);
            b.load(slot, Type::I64);
        }
        let v = b.load(ra, Type::I64);
        b.store(ra, v);
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let ta = b.global_addr(table);
        let ca = b.global_addr(config);
        // Startup: populate the table and config single-threaded.
        for k in 0..512i64 {
            let slot = b.gep(ta, k);
            b.store(slot, k);
        }
        for k in 0..128i64 {
            let slot = b.gep(ca, k);
            b.store(slot, k * 3);
        }
        let t1 = b.thread_create(worker, 0);
        let t2 = b.thread_create(worker, 0);
        b.thread_join(t1);
        b.thread_join(t2);
        b.ret(None);
    }
    (mb.finish(), main)
}

/// Seed retirement (ablation A10): how many schedules per workload
/// input each backend needs before it has found every race the epoch
/// backend finds at the full 8-schedule budget. Predictive backends
/// witness reorderings instead of waiting for the racy interleaving
/// to be scheduled, so they reach full coverage on fewer (often
/// single) schedules — the difference is the explorer seed budget the
/// backend retires.
fn bench_seed_retirement(_c: &mut Criterion) {
    const FULL_BUDGET: u64 = 16;
    const BACKENDS: [(&str, HbBackend); 3] = [
        ("epoch", HbBackend::Epoch),
        ("syncp", HbBackend::SyncPreserving),
        ("syncrev", HbBackend::SyncReversal),
    ];
    let sweep = |p: &owl_corpus::CorpusProgram, backend: HbBackend, runs: u64| {
        let cfg = ExplorerConfig {
            runs_per_input: runs,
            hb_backend: backend,
            ..ExplorerConfig::default()
        };
        let r = explore(&p.module, p.entry, &p.workloads, &cfg);
        r.reports
            .iter()
            .map(|rep| (rep.addr, rep.key()))
            .collect::<HashSet<_>>()
    };
    let mut attack_totals = [0u64; 3];
    let mut cost_totals = [0u64; 3];
    for p in owl_corpus::all_programs() {
        if p.attacks.is_empty() {
            continue;
        }
        // The known race set: everything the widest backend reports at
        // the full budget (a superset of every backend's full-budget
        // set, by the subsumption contract).
        let target = sweep(&p, HbBackend::SyncReversal, FULL_BUDGET);
        for (slot, &(name, backend)) in BACKENDS.iter().enumerate() {
            // Per-race seed cost: the schedule count at which this
            // backend first reports each known race (FULL_BUDGET + 1
            // for races it never reports), summed over the race set.
            // Attack coverage: the schedule count at which every known
            // attack's racy global has a report.
            let mut cost = std::collections::HashMap::new();
            let mut attacks_at = None;
            for runs in 1..=FULL_BUDGET {
                let cfg = ExplorerConfig {
                    runs_per_input: runs,
                    hb_backend: backend,
                    ..ExplorerConfig::default()
                };
                let r = explore(&p.module, p.entry, &p.workloads, &cfg);
                let found: HashSet<_> =
                    r.reports.iter().map(|rep| (rep.addr, rep.key())).collect();
                for race in target.intersection(&found) {
                    cost.entry(*race).or_insert(runs);
                }
                if attacks_at.is_none()
                    && p.attacks
                        .iter()
                        .all(|atk| r.reports_on(atk.race_global).next().is_some())
                {
                    attacks_at = Some(runs);
                }
            }
            let attacks_at = attacks_at.unwrap_or_else(|| {
                panic!("{} ({name}): attacks not covered within {FULL_BUDGET} schedules", p.name)
            });
            let seed_cost: u64 = target
                .iter()
                .map(|race| cost.get(race).copied().unwrap_or(FULL_BUDGET + 1))
                .sum();
            attack_totals[slot] += attacks_at;
            cost_totals[slot] += seed_cost;
            metric(
                &format!("schedules_to_coverage_{}_{name}", p.name.to_lowercase()),
                Json::UInt(attacks_at),
            );
            metric(
                &format!("seed_cost_{}_{name}", p.name.to_lowercase()),
                Json::UInt(seed_cost),
            );
        }
    }
    for (slot, &(name, _)) in BACKENDS.iter().enumerate() {
        metric(
            &format!("schedules_to_coverage_total_{name}"),
            Json::UInt(attack_totals[slot]),
        );
        metric(&format!("seed_cost_total_{name}"), Json::UInt(cost_totals[slot]));
        if name != "epoch" {
            metric(
                &format!("seeds_retired_{name}"),
                Json::UInt(cost_totals[0].saturating_sub(cost_totals[slot])),
            );
        }
    }

    // The lock-handoff microbenchmark: a write inside one thread's
    // critical section races with a read the other thread performs
    // after its own (empty) critical section, and an I/O delay makes
    // the writer win the lock in (virtually) every schedule. The
    // unlock→lock edge then orders the pair in every observed trace —
    // the epoch backend can only find the race in a schedule that
    // defies the delay, while sync-reversal witnesses it by reordering
    // the two critical sections from any single schedule. `0` means
    // never found within the 64-schedule budget.
    let (lh_module, lh_main) = lock_handoff_module();
    for (name, backend) in BACKENDS {
        let found = (1..=64u64).find(|&runs| {
            let cfg = ExplorerConfig {
                runs_per_input: runs,
                hb_backend: backend,
                ..ExplorerConfig::default()
            };
            explore(&lh_module, lh_main, &[ProgramInput::empty()], &cfg)
                .reports_on("g")
                .next()
                .is_some()
        });
        metric(
            &format!("lockhandoff_schedules_{name}"),
            Json::UInt(found.unwrap_or(0)),
        );
    }
}

/// See [`bench_seed_retirement`]: the sync-ordered race the epoch
/// backend needs timing luck to observe.
fn lock_handoff_module() -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("lock-handoff");
    let g = mb.global("g", 1, Type::I64);
    let m = mb.global("m", 1, Type::I64);
    let writer = mb.declare_func("writer", 1);
    {
        let mut b = mb.build_func(writer);
        let la = b.global_addr(m);
        let ga = b.global_addr(g);
        b.lock(la);
        b.store(ga, 1);
        b.unlock(la);
        b.ret(None);
    }
    let reader = mb.declare_func("reader", 1);
    {
        let mut b = mb.build_func(reader);
        b.io_delay(500);
        let la = b.global_addr(m);
        let ga = b.global_addr(g);
        b.lock(la);
        b.unlock(la);
        b.load(ga, Type::I64);
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let t1 = b.thread_create(writer, 0);
        let t2 = b.thread_create(reader, 0);
        b.thread_join(t1);
        b.thread_join(t2);
        b.ret(None);
    }
    (mb.finish(), main)
}

criterion_group!(
    benches,
    bench_detector_replay,
    bench_capture_handoff,
    bench_bounded_stream,
    bench_explore_scaling,
    bench_fork_prefix,
    bench_seed_retirement
);
criterion_main!(benches);
