//! Probe: fork-mode vs scratch explorer wall time per corpus program,
//! with the fork counters. Faster to iterate on than the full bench.
//!
//! `cargo run --release -p owl-bench --example fork_timing [reps]`

use std::time::Instant;

fn main() {
    let reps: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let mut tot_f = 0u128;
    let mut tot_s = 0u128;
    for p in owl_corpus::all_programs() {
        let forked_cfg = owl_race::ExplorerConfig {
            runs_per_input: 32,
            ..owl_race::ExplorerConfig::default()
        };
        let scratch_cfg = owl_race::ExplorerConfig { fork: false, ..forked_cfg.clone() };
        // Warm-up + correctness guard.
        let rf = owl_race::explore(&p.module, p.entry, &p.workloads, &forked_cfg);
        let rs = owl_race::explore(&p.module, p.entry, &p.workloads, &scratch_cfg);
        assert_eq!(rf.reports, rs.reports);
        let mut best_f = u128::MAX;
        let mut best_s = u128::MAX;
        for _ in 0..reps {
            let t = Instant::now();
            let _ = owl_race::explore(&p.module, p.entry, &p.workloads, &forked_cfg);
            best_f = best_f.min(t.elapsed().as_micros());
            let t = Instant::now();
            let _ = owl_race::explore(&p.module, p.entry, &p.workloads, &scratch_cfg);
            best_s = best_s.min(t.elapsed().as_micros());
        }
        tot_f += best_f;
        tot_s += best_s;
        println!(
            "{:12} forked {:7}us scratch {:7}us ratio {:.3} deduped {:3} saved {:6}",
            p.name,
            best_f,
            best_s,
            best_s as f64 / best_f as f64,
            rf.schedules_deduped,
            rf.prefix_steps_saved,
        );
    }
    println!(
        "{:12} forked {:7}us scratch {:7}us ratio {:.3}",
        "TOTAL",
        tot_f,
        tot_s,
        tot_s as f64 / tot_f as f64
    );
}
