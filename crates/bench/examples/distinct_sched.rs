//! Probe: how many *distinct* schedules the explorer actually realizes
//! per corpus input, i.e. the ceiling on schedule-signature dedup.
//!
//! Run with `cargo run --release -p owl-bench --example distinct_sched`.
//! The counts back the schedule-space analysis in EXPERIMENTS.md (A11):
//! corpus inputs whose distinct-schedule count equals the seed count can
//! never dedup, so the corpus-wide dedup ratio is bounded by the gap
//! between seeds and distinct schedules.

const SEEDS: u64 = 128;

fn main() {
    for p in owl_corpus::all_programs() {
        let cfg = owl_race::ExplorerConfig {
            runs_per_input: SEEDS,
            fork: false,
            ..owl_race::ExplorerConfig::default()
        };
        let r = owl_race::explore(&p.module, p.entry, &p.workloads, &cfg);
        let n_inputs = p.workloads.len();
        let mut per_input: Vec<std::collections::HashSet<Vec<owl_vm::ThreadId>>> =
            vec![Default::default(); n_inputs];
        for (i, o) in r.outcomes.iter().enumerate() {
            per_input[i / SEEDS as usize].insert(o.schedule.clone());
        }
        let distinct: Vec<usize> = per_input.iter().map(|s| s.len()).collect();
        let steps: u64 = r.outcomes.iter().map(|o| o.steps).sum();
        println!("{}: runs={} steps={} distinct/input: {:?}", p.name, r.runs, steps, distinct);
    }
}
