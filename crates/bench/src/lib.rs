//! # owl-bench
//!
//! Evaluation harness regenerating the OWL paper's tables:
//!
//! * **Table 1** — study summary: per program LoC, # attacks, raw race
//!   reports from the detector front-end.
//! * **Table 2** — OWL detection results: attacks present vs. attacks
//!   found, and OWL's final report counts.
//! * **Table 3** — report reduction: raw reports, adhoc-sync
//!   annotations, race-verifier eliminations, remaining reports, and
//!   average analysis cost (including the overall reduction ratio the
//!   paper headlines as 94.3%).
//! * **Table 4** — known attacks with their subtle inputs and the
//!   number of executions needed to trigger them.
//! * **§8.4** — the previously unknown attacks (SSDB UAF, Apache HTML
//!   integrity violation, Apache balancer DoS).
//!
//! The renderers are plain functions over [`owl::ProgramEvaluation`]s
//! so the `tables` bench, the integration tests, and EXPERIMENTS.md all
//! consume the same numbers.

pub mod harness;

use owl::{OwlConfig, ProgramEvaluation};
use owl_static::hints;
use std::fmt::Write as _;

/// Evaluates every corpus program with one configuration.
pub fn evaluate_all(config: &OwlConfig) -> Vec<ProgramEvaluation> {
    owl_corpus::all_programs()
        .iter()
        .map(|p| owl::evaluate_program(p, config))
        .collect()
}

fn row(cols: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cols.iter().zip(widths) {
        let _ = write!(s, "{c:<w$}  ", w = w);
    }
    s.trim_end().to_string()
}

/// Renders Table 1 (study summary / detector flood).
pub fn table1(evals: &[ProgramEvaluation]) -> String {
    let widths = [10, 8, 8, 14];
    let mut out = String::from("Table 1: programs, attacks, and raw race reports\n");
    out.push_str(&row(
        &["Name", "LoC(IR)", "#Atks", "#Race reports"].map(String::from),
        &widths,
    ));
    out.push('\n');
    let mut total_reports = 0;
    let mut total_attacks = 0;
    for e in evals {
        total_reports += e.result.stats.raw_reports;
        total_attacks += e.attacks.len();
        out.push_str(&row(
            &[
                e.name.to_string(),
                e.loc.to_string(),
                e.attacks.len().to_string(),
                e.result.stats.raw_reports.to_string(),
            ],
            &widths,
        ));
        out.push('\n');
    }
    out.push_str(&row(
        &[
            "Total".into(),
            String::new(),
            total_attacks.to_string(),
            total_reports.to_string(),
        ],
        &widths,
    ));
    out.push('\n');
    out
}

/// Renders Table 2 (OWL detection results).
pub fn table2(evals: &[ProgramEvaluation]) -> String {
    let widths = [10, 8, 6, 12, 14];
    let mut out = String::from("Table 2: OWL concurrency attack detection results\n");
    out.push_str(&row(
        &["Name", "LoC(IR)", "#Atks", "#Atks found", "#OWL reports"].map(String::from),
        &widths,
    ));
    out.push('\n');
    let (mut atks, mut found, mut reports) = (0, 0, 0);
    for e in evals {
        if e.attacks.is_empty() {
            continue; // Table 2 lists only the attack-bearing programs
        }
        let owl_reports = e.result.vulnerable_findings().count();
        atks += e.attacks.len();
        found += e.detected_count();
        reports += owl_reports;
        out.push_str(&row(
            &[
                e.name.to_string(),
                e.loc.to_string(),
                e.attacks.len().to_string(),
                e.detected_count().to_string(),
                owl_reports.to_string(),
            ],
            &widths,
        ));
        out.push('\n');
    }
    out.push_str(&row(
        &[
            "Total".into(),
            String::new(),
            atks.to_string(),
            found.to_string(),
            reports.to_string(),
        ],
        &widths,
    ));
    out.push('\n');
    out
}

/// Renders Table 3 (report reduction pipeline).
pub fn table3(evals: &[ProgramEvaluation]) -> String {
    let widths = [10, 7, 6, 8, 6, 10];
    let mut out = String::from("Table 3: OWL's reduction of race detector reports\n");
    out.push_str(&row(
        &["Name", "R.R.", "A.S.", "R.V.E.", "R.", "A.C.(ms)"].map(String::from),
        &widths,
    ));
    out.push('\n');
    let (mut rr, mut asy, mut rve, mut rem) = (0usize, 0usize, 0usize, 0usize);
    for e in evals {
        let s = &e.result.stats;
        rr += s.raw_reports;
        asy += s.adhoc_syncs;
        rve += s.verifier_eliminated;
        rem += s.remaining;
        out.push_str(&row(
            &[
                e.name.to_string(),
                s.raw_reports.to_string(),
                s.adhoc_syncs.to_string(),
                s.verifier_eliminated.to_string(),
                s.remaining.to_string(),
                format!("{:.2}", s.avg_analysis_cost().as_secs_f64() * 1e3),
            ],
            &widths,
        ));
        out.push('\n');
    }
    let reduction = if rr > 0 {
        100.0 * (1.0 - rem as f64 / rr as f64)
    } else {
        0.0
    };
    out.push_str(&row(
        &[
            "Total".into(),
            rr.to_string(),
            asy.to_string(),
            rve.to_string(),
            rem.to_string(),
            String::new(),
        ],
        &widths,
    ));
    out.push('\n');
    let _ = writeln!(
        out,
        "Overall report reduction: {reduction:.1}% (paper: 94.3%)"
    );
    out
}

/// Renders Table 4 (known attacks + subtle inputs + trigger effort).
pub fn table4(evals: &[ProgramEvaluation]) -> String {
    let widths = [26, 22, 28, 10, 10];
    let mut out = String::from("Table 4: detection results on known concurrency attacks\n");
    out.push_str(&row(
        &[
            "Name",
            "Vul. Type",
            "Subtle Inputs",
            "Detected",
            "Trig.runs",
        ]
        .map(String::from),
        &widths,
    ));
    out.push('\n');
    for e in evals {
        for a in &e.attacks {
            if !a.spec.known {
                continue;
            }
            out.push_str(&row(
                &[
                    a.spec.version.to_string(),
                    a.spec.vuln_type.to_string(),
                    a.spec.subtle_inputs.to_string(),
                    if a.detected() { "yes" } else { "NO" }.to_string(),
                    a.trigger_executions
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| ">20".into()),
                ],
                &widths,
            ));
            out.push('\n');
        }
    }
    out
}

/// Renders the §8.4 section (previously unknown attacks).
pub fn unknown_attacks(evals: &[ProgramEvaluation]) -> String {
    let widths = [30, 26, 22, 10];
    let mut out = String::from("§8.4: previously unknown concurrency attacks\n");
    out.push_str(&row(
        &["Name", "Vul. Type", "Advisory", "Detected"].map(String::from),
        &widths,
    ));
    out.push('\n');
    for e in evals {
        for a in &e.attacks {
            if a.spec.known {
                continue;
            }
            out.push_str(&row(
                &[
                    a.spec.version.to_string(),
                    a.spec.vuln_type.to_string(),
                    a.spec.advisory.unwrap_or("-").to_string(),
                    if a.detected() { "yes" } else { "NO" }.to_string(),
                ],
                &widths,
            ));
            out.push('\n');
        }
    }
    out
}

/// Renders a Figure-4/Figure-5 style sample: the Libsafe finding's call
/// stack and vulnerable input hint.
pub fn figure5_sample(evals: &[ProgramEvaluation]) -> String {
    let mut out = String::from("Figures 4/5: Libsafe call stack and vulnerable input hint\n");
    let Some(libsafe) = evals.iter().find(|e| e.name == "Libsafe") else {
        return out;
    };
    let program = owl_corpus::program("Libsafe").expect("corpus");
    let Some(finding) = libsafe.result.finding_on("dying") else {
        out.push_str("(no finding on `dying`)\n");
        return out;
    };
    if let Some(read) = finding.race.read_access() {
        out.push_str(&hints::format_call_stack(
            &program.module,
            read.site,
            &read.stack,
        ));
    }
    for vr in &finding.vulns {
        out.push_str(&hints::format_vuln_report(&program.module, vr));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_for_one_program() {
        let p = owl_corpus::program("Libsafe").unwrap();
        let eval = owl::evaluate_program(&p, &OwlConfig::quick());
        let evals = vec![eval];
        assert!(table1(&evals).contains("Libsafe"));
        assert!(table2(&evals).contains("Libsafe"));
        assert!(table3(&evals).contains("R.V.E."));
        assert!(table4(&evals).contains("Buffer Overflow"));
        let f5 = figure5_sample(&evals);
        assert!(f5.contains("Vulnerable Site Location"), "{f5}");
    }
}
