//! Dependency-free fallback bench harness.
//!
//! `owl-bench`'s targets are written against the `criterion` API, but
//! criterion comes from crates.io — unreachable in a hermetic build.
//! The crate therefore gates criterion behind the default-off
//! `criterion` feature, and when it is off the bench targets compile
//! against this module instead: the same surface (`Criterion`,
//! `Bencher`, `BatchSize`, benchmark groups, the `criterion_group!` /
//! `criterion_main!` macros) backed by a plain `Instant` timing loop.
//!
//! Unlike a compile-only stub, this harness *measures*: every
//! benchmark's per-iteration wall times are recorded, and the
//! `criterion_main!`-generated entry point writes a machine-readable
//! `BENCH_<target>.json` summary (into `$OWL_BENCH_OUT`, or the
//! current directory) — the artifact shape CI uploads. Statistical
//! rigor is deliberately out of scope; this is a perf smoke with
//! numbers, not a statistics engine.

use owl::json::Json;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Iterations measured per benchmark (after one untimed warmup).
/// Small on purpose: the suite includes full pipeline runs.
const ITERATIONS: u64 = 3;

/// One benchmark's measurements.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (group-qualified, e.g. `pipeline/full_pipeline_ssdb`).
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Total wall time across the timed iterations.
    pub total: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
static METRICS: Mutex<Vec<(String, Json)>> = Mutex::new(Vec::new());

/// Records a free-form named metric (throughput, hit rate, speedup…)
/// to embed in the `BENCH_<target>.json` summary under `"metrics"`.
/// Bench targets can call this under either harness — this module is
/// compiled regardless of the `criterion` feature.
pub fn metric(name: &str, value: Json) {
    eprintln!("bench metric {name}: {}", value.to_json_string());
    METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push((name.to_string(), value));
}

/// Prevents the optimizer from discarding `v`.
pub fn black_box<T>(v: T) -> T {
    std::hint::black_box(v)
}

/// Batch sizing hint (accepted for API compatibility; batches are
/// always set up per iteration here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
    /// One setup per batch.
    PerIteration,
}

/// Timer handle passed to bench closures. Collects one sample per
/// timed iteration; setup in `iter_batched` is excluded from timing.
#[derive(Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over a fixed iteration count after one warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup, untimed
        for _ in 0..ITERATIONS {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over values produced by `setup`; setup runs
    /// outside the timed window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup, untimed
        for _ in 0..ITERATIONS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn record(name: &str, samples: Vec<Duration>) {
    if samples.is_empty() {
        return;
    }
    let total: Duration = samples.iter().sum();
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let result = BenchResult {
        name: name.to_string(),
        iters: samples.len() as u64,
        total,
        min,
        max,
    };
    eprintln!(
        "bench {name}: {:?}/iter (min {:?}, max {:?}, {} iters, fallback harness)",
        total / result.iters as u32,
        min,
        max,
        result.iters
    );
    RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(result);
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        record(name, b.samples);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _c: self,
        }
    }
}

/// Named benchmark group: results are recorded as `group/name`.
pub struct BenchmarkGroup<'c> {
    name: String,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint (accepted for API compatibility; the
    /// iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        record(&format!("{}/{name}", self.name), b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn dur_us(d: Duration) -> Json {
    Json::UInt(d.as_micros().min(u64::MAX as u128) as u64)
}

/// The accumulated results as the `BENCH_*.json` document.
pub fn results_json(target: &str) -> Json {
    let results = RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let metrics = METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Json::obj([
        ("bench", Json::str(target)),
        ("harness", Json::str("fallback")),
        ("metrics", Json::obj_owned(metrics.iter().cloned())),
        (
            "benches",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::str(r.name.clone())),
                            ("iters", Json::UInt(r.iters)),
                            ("mean_us", dur_us(r.total / r.iters.max(1) as u32)),
                            ("min_us", dur_us(r.min)),
                            ("max_us", dur_us(r.max)),
                            ("total_us", dur_us(r.total)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Writes `BENCH_<target>.json` into `$OWL_BENCH_OUT` (or the current
/// directory) and prints where it went. Called by the fallback
/// `criterion_main!` after every group has run.
pub fn finish(target: &str) {
    let dir = std::env::var_os("OWL_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create bench output dir {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("BENCH_{target}.json"));
    let mut doc = results_json(target).to_json_string();
    doc.push('\n');
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!("bench summary: wrote {}", path.display()),
        Err(e) => eprintln!("cannot write bench summary {}: {e}", path.display()),
    }
}

/// Declares a benchmark group (fallback form of criterion's macro;
/// the `config = ...` form accepts and ignores the configured driver).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($t:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            let _ = $cfg;
            $( $t(&mut c); )+
        }
    };
    ($name:ident, $($t:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $t(&mut c); )+
        }
    };
}

/// Declares the bench entry point: runs every group, then writes the
/// `BENCH_<target>.json` summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::harness::finish(env!("CARGO_CRATE_NAME"));
        }
    };
}

// Make the macros importable alongside the types:
// `use owl_bench::harness::{criterion_group, criterion_main, ...}`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_results_serialize() {
        let mut c = Criterion;
        c.bench_function("harness/self_test_iter", |b| b.iter(|| 2 + 2));
        c.bench_function("harness/self_test_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        let mut group = c.benchmark_group("grp");
        group.sample_size(10).bench_function("inner", |b| b.iter(|| 1));
        group.finish();
        metric("self_test_events_per_sec", Json::UInt(42));

        let doc = results_json("selftest");
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("self_test_events_per_sec"))
                .and_then(|j| j.as_u64()),
            Some(42)
        );
        assert_eq!(doc.get("harness").and_then(|j| j.as_str()), Some("fallback"));
        let benches = doc.get("benches").and_then(|j| j.as_arr()).expect("array");
        let names: Vec<&str> = benches
            .iter()
            .filter_map(|b| b.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"harness/self_test_iter"), "{names:?}");
        assert!(names.contains(&"grp/inner"), "group-qualified name");
        for b in benches {
            assert_eq!(b.get("iters").and_then(|j| j.as_u64()), Some(ITERATIONS));
        }
        // Round-trips through the strict parser.
        owl::json::parse(&doc.to_json_string()).expect("valid JSON");
    }
}
