//! Snapshot/resume round-trip property: for random racy programs and
//! seeds, pausing a run at an arbitrary step, snapshotting, and
//! resuming the snapshot must produce a trace, outputs, violations,
//! and schedule byte-identical to the uninterrupted run of the same
//! schedule — the correctness contract behind the explorer's
//! prefix-sharing fork.

use owl_ir::{BinOp, ModuleBuilder, Operand, Type};
use owl_vm::{
    ExecOutcome, FaultPlan, ProgramInput, RandomScheduler, RunConfig, TraceEvent, VecSink, Vm,
};
use proptest::prelude::*;

/// A small racy program: `workers` threads each read-modify-write a
/// shared global (optionally under a mutex), with a per-thread
/// `IoDelay` so thread lifetimes overlap in interesting ways.
fn build_racy(workers: u32, use_lock: bool, delay: i64) -> (owl_ir::Module, owl_ir::FuncId) {
    let mut mb = ModuleBuilder::new("snap-prop");
    let g = mb.global("g", 1, Type::I64);
    let l = mb.global("l", 1, Type::I64);
    let w = mb.declare_func("w", 1);
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(w);
        let ga = b.global_addr(g);
        let la = b.global_addr(l);
        b.io_delay(Operand::Param(0));
        if use_lock {
            b.lock(la);
        }
        let v = b.load(ga, Type::I64);
        let v2 = b.bin(BinOp::Mul, v, 3);
        let v3 = b.add(v2, Operand::Param(0));
        b.store(ga, v3);
        if use_lock {
            b.unlock(la);
        }
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let ga = b.global_addr(g);
        b.store(ga, 7);
        let mut joins = Vec::new();
        for i in 0..workers {
            joins.push(b.thread_create(w, i64::from(i) + delay));
        }
        for t in joins {
            b.thread_join(t);
        }
        let v = b.load(ga, Type::I64);
        b.output(0, v);
        b.ret(None);
    }
    let m = mb.finish();
    let main_id = m.func_by_name("main").unwrap();
    (m, main_id)
}

fn assert_same(a: &ExecOutcome, b: &ExecOutcome, ta: &[TraceEvent], tb: &[TraceEvent]) {
    assert_eq!(a, b, "outcome diverged across snapshot/resume");
    assert_eq!(ta, tb, "trace diverged across snapshot/resume");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn snapshot_resume_round_trips(
        seed in 0u64..500,
        fork_step in 0u64..300,
        workers in 1u32..4,
        use_lock in any::<bool>(),
        delay in 0i64..40,
        chaos in any::<bool>(),
    ) {
        let (m, main) = build_racy(workers, use_lock, delay);
        let mut cfg = RunConfig::default();
        if chaos {
            // Fault RNG state must survive the snapshot too.
            let mut plan = FaultPlan::none();
            plan.seed = seed ^ 0x5eed;
            plan.sched_delay_rate = 0.05;
            plan.sched_delay_steps = 3;
            cfg.fault = plan;
        }

        // Uninterrupted oracle run.
        let mut s1 = RandomScheduler::new(seed);
        let mut t1 = VecSink::default();
        let o1 = Vm::new(&m, main, ProgramInput::empty(), cfg.clone())
            .run(&mut s1, &mut t1);

        // Same schedule, paused at `fork_step`, snapshotted, resumed.
        let mut s2 = RandomScheduler::new(seed);
        let mut t2 = VecSink::default();
        let mut vm = Vm::new(&m, main, ProgramInput::empty(), cfg);
        match vm.run_until_step(&mut s2, &mut t2, fork_step) {
            Some(o2) => {
                // Terminated before the fork point: already a full run.
                assert_same(&o1, &o2, &t1.events, &t2.events);
            }
            None => {
                let snap = vm.snapshot();
                prop_assert_eq!(snap.step(), vm.snapshot().step());
                prop_assert!(snap.approx_bytes() > 0);
                drop(vm);
                let resumed = Vm::resume(&m, snap);
                let o2 = resumed.run(&mut s2, &mut t2);
                assert_same(&o1, &o2, &t1.events, &t2.events);
            }
        }
    }

    #[test]
    fn concurrent_pause_prefix_is_seed_independent(
        seed_a in 0u64..200,
        seed_b in 200u64..400,
        workers in 1u32..4,
    ) {
        // Up to the concurrent pause point every pick is a forced
        // singleton, so two different seeds must execute an identical
        // prefix (same step counter, same trace) — the property that
        // lets the explorer share one prefix across all seeds.
        let (m, main) = build_racy(workers, false, 0);
        let run_prefix = |seed: u64| {
            let mut sched = RandomScheduler::new(seed);
            let mut trace = VecSink::default();
            let mut vm = Vm::new(&m, main, ProgramInput::empty(), RunConfig::default());
            let fin = vm.run_until_concurrent(&mut sched, &mut trace);
            (fin.is_none(), vm.snapshot().step(), trace.events)
        };
        let (paused_a, step_a, trace_a) = run_prefix(seed_a);
        let (paused_b, step_b, trace_b) = run_prefix(seed_b);
        prop_assert_eq!(paused_a, paused_b);
        prop_assert_eq!(step_a, step_b);
        prop_assert_eq!(trace_a, trace_b);
    }
}
