//! Property tests over the VM: schedule-replay determinism, memory
//! model consistency against a reference model, and arithmetic
//! faithfulness.

use owl_ir::{BinOp, ModuleBuilder, Operand, Type};
use owl_vm::mem::Memory;
use owl_vm::{
    ExitStatus, ProgramInput, RandomScheduler, ReplayScheduler, RoundRobin, RunConfig, Vm,
};
use proptest::prelude::*;

/// A straight-line arithmetic program over the input vector.
#[derive(Clone, Debug)]
enum Op {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
}

fn eval_reference(ops: &[Op], inputs: &[i64]) -> i64 {
    let get = |vals: &[i64], i: usize| vals.get(i % vals.len().max(1)).copied().unwrap_or(0);
    let mut vals: Vec<i64> = inputs.to_vec();
    if vals.is_empty() {
        vals.push(0);
    }
    for op in ops {
        let v = match *op {
            Op::Add(a, b) => get(&vals, a).wrapping_add(get(&vals, b)),
            Op::Sub(a, b) => get(&vals, a).wrapping_sub(get(&vals, b)),
            Op::Mul(a, b) => get(&vals, a).wrapping_mul(get(&vals, b)),
            Op::And(a, b) => get(&vals, a) & get(&vals, b),
            Op::Or(a, b) => get(&vals, a) | get(&vals, b),
            Op::Xor(a, b) => get(&vals, a) ^ get(&vals, b),
        };
        vals.push(v);
    }
    *vals.last().unwrap()
}

fn build_arith(ops: &[Op], num_inputs: usize) -> (owl_ir::Module, owl_ir::FuncId) {
    let mut mb = ModuleBuilder::new("arith");
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let mut vals: Vec<owl_ir::InstId> = Vec::new();
        for i in 0..num_inputs.max(1) {
            vals.push(b.input(i as i64));
        }
        for op in ops {
            let pick = |vals: &[owl_ir::InstId], i: usize| vals[i % vals.len()];
            let (bo, x, y) = match *op {
                Op::Add(a, bb) => (BinOp::Add, a, bb),
                Op::Sub(a, bb) => (BinOp::Sub, a, bb),
                Op::Mul(a, bb) => (BinOp::Mul, a, bb),
                Op::And(a, bb) => (BinOp::And, a, bb),
                Op::Or(a, bb) => (BinOp::Or, a, bb),
                Op::Xor(a, bb) => (BinOp::Xor, a, bb),
            };
            let r = b.bin(bo, pick(&vals, x), pick(&vals, y));
            vals.push(r);
        }
        let last = *vals.last().unwrap();
        b.output(0, last);
        b.ret(None);
    }
    (mb.finish(), main)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..12, 0usize..12).prop_map(|(a, b)| Op::Add(a, b)),
        (0usize..12, 0usize..12).prop_map(|(a, b)| Op::Sub(a, b)),
        (0usize..12, 0usize..12).prop_map(|(a, b)| Op::Mul(a, b)),
        (0usize..12, 0usize..12).prop_map(|(a, b)| Op::And(a, b)),
        (0usize..12, 0usize..12).prop_map(|(a, b)| Op::Or(a, b)),
        (0usize..12, 0usize..12).prop_map(|(a, b)| Op::Xor(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arithmetic_matches_reference(
        ops in prop::collection::vec(op_strategy(), 1..20),
        inputs in prop::collection::vec(any::<i64>(), 1..6),
    ) {
        let (m, main) = build_arith(&ops, inputs.len());
        let mut sched = RoundRobin::default();
        let o = Vm::run_quiet(&m, main, ProgramInput::new(inputs.clone()), &mut sched);
        prop_assert_eq!(o.status, ExitStatus::Finished);
        prop_assert_eq!(o.outputs[0].1, eval_reference(&ops, &inputs));
    }

    #[test]
    fn schedule_replay_is_deterministic(seed in 0u64..500) {
        // A genuinely racy two-thread program: outputs depend on the
        // schedule, so replaying the recorded schedule must reproduce
        // them exactly.
        let mut mb = ModuleBuilder::new("racy");
        let g = mb.global("g", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let v2 = b.bin(BinOp::Mul, v, 3);
            let v3 = b.add(v2, Operand::Param(0));
            b.store(a, v3);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w, 1);
            let t2 = b.thread_create(w, 2);
            let a = b.global_addr(g);
            b.store(a, 7);
            b.thread_join(t1);
            b.thread_join(t2);
            let v = b.load(a, Type::I64);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let mut sched = RandomScheduler::new(seed);
        let o1 = Vm::run_quiet(&m, main_id, ProgramInput::empty(), &mut sched);
        let mut replay = ReplayScheduler::new(o1.schedule.clone());
        let o2 = Vm::run_quiet(&m, main_id, ProgramInput::empty(), &mut replay);
        prop_assert_eq!(o1.outputs, o2.outputs);
        prop_assert_eq!(o1.steps, o2.steps);
        prop_assert_eq!(replay.divergences, 0);
    }

    #[test]
    fn memory_model_matches_reference(
        actions in prop::collection::vec(
            prop_oneof![
                (1u64..16).prop_map(MemAction::Malloc),
                (0usize..8).prop_map(MemAction::Free),
                (0usize..8, 0u64..16, any::<i64>()).prop_map(|(r, o, v)| MemAction::Write(r, o, v)),
                (0usize..8, 0u64..16).prop_map(|(r, o)| MemAction::Read(r, o)),
            ],
            1..40,
        )
    ) {
        // Reference model: allocation list with freed flags.
        let mut mb = ModuleBuilder::new("memref");
        mb.global("pad", 3, Type::I64);
        let module = mb.finish();
        let mut mem = Memory::new(&module);
        let mut allocs: Vec<(u64, u64, bool, Vec<i64>)> = Vec::new(); // (base, size, freed, data)
        for action in actions {
            match action {
                MemAction::Malloc(size) => {
                    let base = mem.malloc(size);
                    allocs.push((base, size.max(1), false, vec![0; size.max(1) as usize]));
                }
                MemAction::Free(i) => {
                    if allocs.is_empty() { continue; }
                    let idx = i % allocs.len();
                    let (base, _, freed, _) = &mut allocs[idx];
                    let result = mem.free(*base);
                    if *freed {
                        prop_assert!(result.is_err(), "double free must error");
                    } else {
                        prop_assert!(result.is_ok());
                        *freed = true;
                    }
                }
                MemAction::Write(i, off, v) => {
                    if allocs.is_empty() { continue; }
                    let idx = i % allocs.len();
                    let (base, size, freed, data) = &mut allocs[idx];
                    let off = off % *size;
                    let r = mem.write(*base + off, v);
                    data[off as usize] = v;
                    prop_assert_eq!(r.is_ok(), !*freed, "write success iff live");
                }
                MemAction::Read(i, off) => {
                    if allocs.is_empty() { continue; }
                    let idx = i % allocs.len();
                    let (base, size, freed, data) = &allocs[idx];
                    let off = off % *size;
                    match mem.read(*base + off) {
                        Ok(v) => {
                            prop_assert!(!*freed);
                            prop_assert_eq!(v, data[off as usize]);
                        }
                        Err(_) => prop_assert!(*freed),
                    }
                    // Stale reads agree with the reference contents too.
                    prop_assert_eq!(mem.read_raw(*base + off), Some(data[off as usize]));
                }
            }
        }
    }

    #[test]
    fn io_delay_never_loses_work(d1 in 0i64..300, d2 in 0i64..300) {
        // Two delayed workers must both finish regardless of delays.
        let mut mb = ModuleBuilder::new("delay");
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            b.io_delay(Operand::Param(0));
            b.output(0, Operand::Param(0));
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(w, d1);
            let t2 = b.thread_create(w, d2);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let mut sched = RandomScheduler::new(5);
        let o = Vm::new(&m, main_id, ProgramInput::empty(), RunConfig::default())
            .run(&mut sched, &mut owl_vm::NullSink);
        prop_assert_eq!(o.status, ExitStatus::Finished);
        prop_assert_eq!(o.outputs.len(), 2);
    }
}

#[derive(Clone, Debug)]
enum MemAction {
    Malloc(u64),
    Free(usize),
    Write(usize, u64, i64),
    Read(usize, u64),
}
