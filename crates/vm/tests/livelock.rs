//! Automatic livelock resolution (§5.2).
//!
//! The race verifier's thread-specific breakpoints can suspend every
//! thread that still has work, leaving nobody runnable. The paper's
//! fix is automatic: release the *oldest* suspension and keep going.
//! These properties pin that behaviour down under a seed/thread-count
//! sweep: with breakpoints armed on every worker and a controller that
//! always suspends and never picks a release itself, execution must
//! still terminate within the step budget, and every stall must
//! release exactly the oldest suspension.

use owl_ir::{FuncId, Inst, InstRef, Module, ModuleBuilder, Type};
use owl_vm::{
    BreakDecision, BreakWorld, Breakpoint, Controller, ExitStatus, NullSink, ProgramInput,
    RandomScheduler, RunConfig, Suspension, ThreadId, Vm,
};
use proptest::prelude::*;

/// `workers` threads each store to a shared global; main joins them
/// all. With a breakpoint on the store and a suspend-everything
/// controller, every worker ends up suspended and main ends up waiting
/// on the joins — a livelock only the VM's automatic resolution can
/// break.
fn worker_program(workers: u32) -> (Module, FuncId, InstRef) {
    let mut mb = ModuleBuilder::new("livelock");
    let g = mb.global("g", 1, Type::I64);
    let worker = mb.declare_func("worker", 1);
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(worker);
        let a = b.global_addr(g);
        b.store(a, 1);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let mut tids = Vec::new();
        for _ in 0..workers {
            tids.push(b.thread_create(worker, 0));
        }
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }
    let module = mb.finish();
    owl_ir::assert_verified(&module);
    let main_id = module.func_by_name("main").expect("main exists");
    let store_site = module
        .func(worker)
        .iter_insts()
        .find_map(|(id, inst)| matches!(inst, Inst::Store { .. }).then(|| InstRef::new(worker, id)))
        .expect("worker has a store");
    (module, main_id, store_site)
}

/// Suspends every breakpoint hit and never chooses a release itself,
/// forcing the VM's oldest-first automatic resolution. Records what
/// the oldest suspension was at each stall, and counts stalls where a
/// thread the VM should already have released is still suspended.
#[derive(Default)]
struct AlwaysSuspend {
    expected_releases: Vec<ThreadId>,
    stale_releases: usize,
}

impl Controller for AlwaysSuspend {
    fn on_break(&mut self, _world: &mut BreakWorld<'_>, _hit: &Suspension) -> BreakDecision {
        BreakDecision::Suspend
    }

    fn on_stall(&mut self, world: &mut BreakWorld<'_>) -> Option<ThreadId> {
        for t in &self.expected_releases {
            if world.suspended.contains_key(t) {
                self.stale_releases += 1;
            }
        }
        let oldest = world
            .suspended
            .values()
            .min_by_key(|s| s.step)
            .map(|s| s.tid);
        self.expected_releases.extend(oldest);
        None
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    #[test]
    fn livelock_always_resolves_oldest_first(seed in 0u64..1_000_000, workers in 2u32..5) {
        let (module, main, store_site) = worker_program(workers);
        let cfg = RunConfig::default();
        let max_steps = cfg.max_steps;
        let mut vm = Vm::new(&module, main, ProgramInput::empty(), cfg);
        vm.add_breakpoint(Breakpoint::at(store_site));
        let mut sched = RandomScheduler::new(seed);
        let mut controller = AlwaysSuspend::default();
        let outcome = vm.run_controlled(&mut sched, &mut NullSink, &mut controller);

        // Termination: the livelock never survives to the step budget.
        prop_assert_eq!(outcome.status, ExitStatus::Finished);
        prop_assert!(outcome.steps < max_steps, "steps {} hit budget", outcome.steps);

        // Every worker trapped, so at least one stall had to be broken.
        prop_assert!(
            !controller.expected_releases.is_empty(),
            "breakpoints never caused a stall"
        );
        // The VM released the recorded oldest each time: released
        // threads never reappear in the suspended set.
        prop_assert_eq!(controller.stale_releases, 0);
        // Each release is a distinct thread (a released worker runs to
        // completion without re-trapping).
        let mut seen = controller.expected_releases.clone();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), controller.expected_releases.len());
    }
}

/// Deterministic single-seed variant that additionally checks the
/// release order is by suspension age (ascending trap step).
#[test]
fn releases_follow_suspension_age() {
    let (module, main, store_site) = worker_program(3);
    let mut vm = Vm::new(&module, main, ProgramInput::empty(), RunConfig::default());
    vm.add_breakpoint(Breakpoint::at(store_site));
    let mut sched = RandomScheduler::new(7);
    let mut controller = AlwaysSuspend::default();

    // Track trap order via the event stream: suspensions are recorded
    // in expected_releases in oldest-first order by construction, so
    // it must be sorted by the step at which each thread trapped. The
    // AlwaysSuspend controller records min-by-step; if the VM released
    // anything else, stale_releases would be non-zero.
    let outcome = vm.run_controlled(&mut sched, &mut NullSink, &mut controller);
    assert_eq!(outcome.status, ExitStatus::Finished);
    assert_eq!(controller.stale_releases, 0);
    assert!(
        !controller.expected_releases.is_empty(),
        "three suspended workers must stall the VM"
    );
}
