//! Condition-variable semantics: wait releases and re-acquires the
//! mutex, signal wakes exactly one waiter, broadcast wakes all, and
//! lost wakeups deadlock (pthread semantics — the bug class adhoc
//! synchronizations usually try to avoid hand-rolling).

use owl_ir::{BlockId, FuncId, Module, ModuleBuilder, Operand, Pred, Type};
use owl_vm::{ExitStatus, ProgramInput, RandomScheduler, RoundRobin, Vm};

/// Producer/consumer over a condvar-protected mailbox.
///
/// consumer: lock; while (!ready) cond_wait(cv, m); v = data; unlock; output v
/// producer: io_delay; lock; data = 42; ready = 1; cond_signal(cv); unlock
fn mailbox(consumers: u32) -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("mailbox");
    let data = mb.global("data", 1, Type::I64);
    let ready = mb.global("ready", 1, Type::I64);
    let m = mb.global("m", 1, Type::I64);
    let cv = mb.global("cv", 1, Type::I64);
    let consumer = mb.declare_func("consumer", 1);
    let producer = mb.declare_func("producer", 1);
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(consumer);
        let ma = b.global_addr(m);
        let cva = b.global_addr(cv);
        b.lock(ma);
        let head = b.block();
        let wait = b.block();
        let done = b.block();
        b.jmp(head);
        b.switch_to(head);
        let ra = b.global_addr(ready);
        let r = b.load(ra, Type::I64);
        let set = b.cmp(Pred::Ne, r, 0);
        b.br(set, done, wait);
        b.switch_to(wait);
        b.cond_wait(cva, ma);
        b.jmp(head);
        b.switch_to(done);
        let da = b.global_addr(data);
        let v = b.load(da, Type::I64);
        b.unlock(ma);
        b.output(1, v);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(producer);
        b.io_delay(30);
        let ma = b.global_addr(m);
        let cva = b.global_addr(cv);
        b.lock(ma);
        let da = b.global_addr(data);
        b.store(da, 42);
        let ra = b.global_addr(ready);
        b.store(ra, 1);
        b.cond_broadcast(cva);
        b.unlock(ma);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let mut tids = Vec::new();
        for _ in 0..consumers {
            tids.push(b.thread_create(consumer, 0));
        }
        tids.push(b.thread_create(producer, 0));
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }
    let module = mb.finish();
    owl_ir::assert_verified(&module);
    let main_id = module.func_by_name("main").unwrap();
    (module, main_id)
}

#[test]
fn wait_signal_delivers_the_value() {
    let (m, main) = mailbox(1);
    for seed in 0..10 {
        let mut sched = RandomScheduler::new(seed);
        let o = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut sched);
        assert_eq!(o.status, ExitStatus::Finished, "seed {seed}");
        assert_eq!(o.outputs, vec![(1, 42)], "seed {seed}");
    }
}

#[test]
fn broadcast_wakes_every_consumer() {
    let (m, main) = mailbox(3);
    for seed in 0..10 {
        let mut sched = RandomScheduler::new(seed);
        let o = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut sched);
        assert_eq!(o.status, ExitStatus::Finished, "seed {seed}");
        assert_eq!(o.outputs.len(), 3, "seed {seed}: {:?}", o.outputs);
        assert!(o.outputs.iter().all(|&(c, v)| c == 1 && v == 42));
    }
}

#[test]
fn lost_wakeup_deadlocks() {
    // Signal before anyone waits: the waiter then sleeps forever.
    let mut mb = ModuleBuilder::new("lost");
    let m = mb.global("m", 1, Type::I64);
    let cv = mb.global("cv", 1, Type::I64);
    let waiter = mb.declare_func("waiter", 1);
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(waiter);
        b.io_delay(50); // arrives after the signal
        let ma = b.global_addr(m);
        let cva = b.global_addr(cv);
        b.lock(ma);
        b.cond_wait(cva, ma);
        b.unlock(ma);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let t = b.thread_create(waiter, 0);
        let cva = b.global_addr(cv);
        b.cond_signal(cva); // nobody is waiting yet: lost
        b.thread_join(t);
        b.ret(None);
    }
    let module = mb.finish();
    let main_id = module.func_by_name("main").unwrap();
    let mut sched = RoundRobin::new(4);
    let o = Vm::run_quiet(&module, main_id, ProgramInput::empty(), &mut sched);
    assert_eq!(o.status, ExitStatus::Deadlock);
}

#[test]
fn condvar_transfer_is_race_free() {
    // The mailbox hand-off is fully synchronized: the happens-before
    // detector must stay silent across many schedules.
    use owl_race::{explore, ExplorerConfig};
    let (m, main) = mailbox(2);
    let r = explore(
        &m,
        main,
        &[],
        &ExplorerConfig {
            runs_per_input: 20,
            ..Default::default()
        },
    );
    assert!(r.reports.is_empty(), "{:?}", r.reports);
}

#[test]
fn signal_wakes_exactly_one() {
    // Two waiters, one signal: one proceeds, the other deadlocks; the
    // run must end in Deadlock with exactly one output.
    let mut mb = ModuleBuilder::new("one");
    let m = mb.global("m", 1, Type::I64);
    let cv = mb.global("cv", 1, Type::I64);
    let waiter = mb.declare_func("waiter", 1);
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(waiter);
        let ma = b.global_addr(m);
        let cva = b.global_addr(cv);
        b.lock(ma);
        b.cond_wait(cva, ma);
        b.unlock(ma);
        b.output(2, Operand::Param(0));
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let t1 = b.thread_create(waiter, 1);
        let t2 = b.thread_create(waiter, 2);
        b.io_delay(100); // let both reach the wait
        let cva = b.global_addr(cv);
        b.cond_signal(cva);
        b.thread_join(t1);
        b.thread_join(t2);
        b.ret(None);
    }
    let module = mb.finish();
    let main_id = module.func_by_name("main").unwrap();
    let mut sched = RoundRobin::new(4);
    let o = Vm::run_quiet(&module, main_id, ProgramInput::empty(), &mut sched);
    assert_eq!(o.status, ExitStatus::Deadlock, "the second waiter starves");
    assert_eq!(o.outputs.len(), 1, "{:?}", o.outputs);
}

#[test]
fn condvar_round_trips_through_text() {
    let (m, main) = mailbox(1);
    let printed = owl_ir::module_to_string(&m);
    assert!(printed.contains("cond_wait"));
    assert!(printed.contains("cond_broadcast"));
    let parsed = owl_ir::parse_module(&printed).expect("parse");
    owl_ir::verify_module(&parsed).expect("verify");
    let entry = parsed.func_by_name("main").unwrap();
    let mut s1 = RoundRobin::new(3);
    let o1 = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut s1);
    let mut s2 = RoundRobin::new(3);
    let o2 = Vm::run_quiet(&parsed, entry, ProgramInput::empty(), &mut s2);
    assert_eq!(o1.outputs, o2.outputs);
}

// The BlockId import is used by the mailbox builder via b.block() returns;
// keep the compiler satisfied if optimized away.
#[allow(dead_code)]
fn _unused(_: BlockId) {}

#[test]
fn deadlock_diagnosis_names_the_waiters() {
    // Two threads each hold one lock and want the other: a classic ABBA
    // deadlock, with main stuck in join.
    let mut mb = ModuleBuilder::new("abba");
    let la = mb.global("lock_a", 1, Type::I64);
    let lb = mb.global("lock_b", 1, Type::I64);
    let t_ab = mb.declare_func("ab", 1);
    let t_ba = mb.declare_func("ba", 1);
    let main = mb.declare_func("main", 0);
    for (f, first, second) in [(t_ab, la, lb), (t_ba, lb, la)] {
        let mut b = mb.build_func(f);
        let a1 = b.global_addr(first);
        b.lock(a1);
        b.io_delay(50); // guarantee both hold their first lock
        let a2 = b.global_addr(second);
        b.lock(a2);
        b.unlock(a2);
        b.unlock(a1);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let t1 = b.thread_create(t_ab, 0);
        let t2 = b.thread_create(t_ba, 0);
        b.thread_join(t1);
        b.thread_join(t2);
        b.ret(None);
    }
    let module = mb.finish();
    let main_id = module.func_by_name("main").unwrap();
    let mut sched = RoundRobin::new(2);
    let o = Vm::run_quiet(&module, main_id, ProgramInput::empty(), &mut sched);
    assert_eq!(o.status, ExitStatus::Deadlock);
    let info = o.deadlock.expect("diagnosis attached");
    // Both workers blocked on a mutex owned by the other; main joining.
    let mutex_waits: Vec<_> = info
        .waiting
        .iter()
        .filter(|w| matches!(w.reason, owl_vm::WaitReason::Mutex { .. }))
        .collect();
    assert_eq!(mutex_waits.len(), 2, "{info:?}");
    for w in &mutex_waits {
        let owl_vm::WaitReason::Mutex { owner, .. } = w.reason else {
            unreachable!()
        };
        let owner = owner.expect("deadlocked mutex has an owner");
        assert_ne!(owner, w.tid, "waiting on a lock someone else holds");
        assert!(w.site.is_some(), "stuck site resolvable");
    }
    assert!(
        info.waiting
            .iter()
            .any(|w| matches!(w.reason, owl_vm::WaitReason::Join { .. })),
        "main is stuck joining: {info:?}"
    );
}

#[test]
fn lost_wakeup_diagnosis_points_at_the_condvar() {
    let mut mb = ModuleBuilder::new("lostdiag");
    let m = mb.global("m", 1, Type::I64);
    let cv = mb.global("cv", 1, Type::I64);
    let waiter = mb.declare_func("waiter", 1);
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(waiter);
        let ma = b.global_addr(m);
        let cva = b.global_addr(cv);
        b.lock(ma);
        b.cond_wait(cva, ma);
        b.unlock(ma);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main);
        let t = b.thread_create(waiter, 0);
        b.thread_join(t);
        b.ret(None);
    }
    let module = mb.finish();
    let main_id = module.func_by_name("main").unwrap();
    let mut sched = RoundRobin::new(4);
    let o = Vm::run_quiet(&module, main_id, ProgramInput::empty(), &mut sched);
    assert_eq!(o.status, ExitStatus::Deadlock);
    let info = o.deadlock.expect("diagnosis");
    assert!(
        info.waiting
            .iter()
            .any(|w| matches!(w.reason, owl_vm::WaitReason::CondVar { .. })),
        "{info:?}"
    );
}
