//! Thread-specific breakpoints.
//!
//! The paper's dynamic race verifier (§5.2) sets *thread-specific*
//! breakpoints on the racing instructions reported by the detector:
//! when a breakpoint triggers, only that thread halts while the rest
//! keep running, so the verifier can catch the race "in the racing
//! moment" — both racing instructions reached, by different threads,
//! on the same address. Livelocks caused by suspensions are resolved by
//! temporarily releasing one breakpoint.
//!
//! The VM reproduces the same mechanism: [`Breakpoint`]s match
//! instruction sites; a [`Controller`] decides suspension, resumption,
//! and stall release.

use crate::event::{CallStack, ThreadId};
use owl_ir::{InstRef, Type};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A breakpoint on one instruction site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakpoint {
    /// Instruction to trap.
    pub site: InstRef,
    /// Restrict to one thread (`None` traps whichever thread arrives —
    /// still halting only the arriving thread).
    pub thread: Option<ThreadId>,
    /// Disabled breakpoints never trigger.
    pub enabled: bool,
}

impl Breakpoint {
    /// An enabled, any-thread breakpoint at `site`.
    pub fn at(site: InstRef) -> Self {
        Breakpoint {
            site,
            thread: None,
            enabled: true,
        }
    }

    /// Whether this breakpoint traps `tid` at `site`.
    pub fn matches(&self, site: InstRef, tid: ThreadId) -> bool {
        self.enabled && self.site == site && self.thread.is_none_or(|t| t == tid)
    }
}

/// The memory access the suspended thread is *about to* perform — the
/// verifier's security hints ("the value they're about to read and
/// write and the type of the variable", §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PendingAccess {
    /// Address about to be touched.
    pub addr: u64,
    /// Whether the access writes.
    pub is_write: bool,
    /// Value about to be written (writes only).
    pub value_to_write: Option<i64>,
    /// Value currently in memory at `addr` (what a read would observe).
    pub current_value: Option<i64>,
    /// Static type at the access site.
    pub ty: Type,
}

/// A thread halted at a breakpoint.
#[derive(Clone, Debug)]
pub struct Suspension {
    /// The halted thread.
    pub tid: ThreadId,
    /// The trapped instruction.
    pub site: InstRef,
    /// The access it is about to perform, if it is a memory access.
    pub access: Option<PendingAccess>,
    /// Call stack at the trap.
    pub stack: CallStack,
    /// Step at which it halted.
    pub step: u64,
}

/// Controller's verdict when a thread traps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakDecision {
    /// Halt the thread (it will not execute the instruction yet).
    Suspend,
    /// Let the thread execute the instruction immediately.
    Continue,
}

/// The controller's view of suspension state during callbacks.
#[derive(Debug)]
pub struct BreakWorld<'a> {
    /// Currently suspended threads.
    pub suspended: &'a BTreeMap<ThreadId, Suspension>,
    /// Breakpoints (the controller may enable/disable them).
    pub breakpoints: &'a mut Vec<Breakpoint>,
    /// Threads to resume after this callback returns. Resumed threads
    /// re-execute their trapped instruction without re-trapping once.
    pub resume: &'a mut Vec<ThreadId>,
}

/// Reacts to breakpoint hits and livelock stalls. Implemented by the
/// dynamic race verifier and the vulnerability verifier.
pub trait Controller {
    /// A thread hit a breakpoint; decide whether to halt it. `world`
    /// also allows resuming other suspended threads and toggling
    /// breakpoints.
    fn on_break(&mut self, world: &mut BreakWorld<'_>, hit: &Suspension) -> BreakDecision;

    /// No thread is runnable but some are suspended. Return a thread to
    /// release, or `None` to let the VM release the oldest suspension
    /// (the paper's automatic livelock resolution).
    fn on_stall(&mut self, world: &mut BreakWorld<'_>) -> Option<ThreadId> {
        let _ = world;
        None
    }
}

/// Controller that never suspends anything (plain execution).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoController;

impl Controller for NoController {
    fn on_break(&mut self, _world: &mut BreakWorld<'_>, _hit: &Suspension) -> BreakDecision {
        BreakDecision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{FuncId, InstId};

    #[test]
    fn matching_rules() {
        let site = InstRef::new(FuncId(0), InstId(3));
        let other = InstRef::new(FuncId(0), InstId(4));
        let any = Breakpoint::at(site);
        assert!(any.matches(site, ThreadId(0)));
        assert!(any.matches(site, ThreadId(5)));
        assert!(!any.matches(other, ThreadId(0)));

        let specific = Breakpoint {
            thread: Some(ThreadId(2)),
            ..Breakpoint::at(site)
        };
        assert!(specific.matches(site, ThreadId(2)));
        assert!(!specific.matches(site, ThreadId(3)));

        let disabled = Breakpoint {
            enabled: false,
            ..Breakpoint::at(site)
        };
        assert!(!disabled.matches(site, ThreadId(0)));
    }
}
