//! Bounded VM→detector event channel.
//!
//! The streaming hand-off between a producing VM and a consuming
//! detector: the producer pushes owned [`TraceEvent`]s through a
//! [`ChannelSender`] (a [`TraceSink`]), the consumer drains them from
//! the paired [`ChannelReceiver`] in emission order. The queue is
//! bounded — a full channel **blocks the producer** until the consumer
//! catches up, so the in-flight window can never outgrow the
//! configured capacity. Event order is preserved exactly, which is
//! what keeps streamed detection byte-identical to an inline sink at
//! any capacity.
//!
//! Shutdown is symmetric: dropping the sender closes the stream (the
//! receiver drains what is queued, then sees end-of-stream), and
//! closing the receiver releases a blocked producer (further sends are
//! discarded — the consumer has abandoned the run, e.g. after a
//! memory-budget abort, and only wants the VM to finish).

use crate::event::{TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct ChannelState {
    queue: VecDeque<TraceEvent>,
    /// Producer finished (sender dropped).
    closed: bool,
    /// Consumer gone (receiver closed/dropped): sends are discarded.
    receiver_gone: bool,
}

struct ChannelShared {
    state: Mutex<ChannelState>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Producer half of a bounded event channel; plug it into
/// [`crate::Vm::run`] as the trace sink.
pub struct ChannelSender {
    shared: Arc<ChannelShared>,
}

/// Consumer half of a bounded event channel.
pub struct ChannelReceiver {
    shared: Arc<ChannelShared>,
}

/// Creates a bounded event channel. `capacity` is counted in events
/// and clamped to at least 1.
pub fn event_channel(capacity: usize) -> (ChannelSender, ChannelReceiver) {
    let shared = Arc::new(ChannelShared {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            closed: false,
            receiver_gone: false,
        }),
        capacity: capacity.max(1),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        ChannelSender {
            shared: Arc::clone(&shared),
        },
        ChannelReceiver { shared },
    )
}

impl TraceSink for ChannelSender {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.on_event_owned(ev.clone());
    }

    fn on_event_owned(&mut self, ev: TraceEvent) {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while st.queue.len() >= self.shared.capacity && !st.receiver_gone {
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.receiver_gone {
            return;
        }
        st.queue.push_back(ev);
        drop(st);
        self.shared.not_empty.notify_one();
    }
}

impl Drop for ChannelSender {
    fn drop(&mut self) {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.closed = true;
        drop(st);
        self.shared.not_empty.notify_all();
    }
}

impl ChannelReceiver {
    /// Blocks for the next event; `None` means the producer is done
    /// and the queue is drained.
    pub fn recv(&self) -> Option<TraceEvent> {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(ev) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(ev);
            }
            if st.closed {
                return None;
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Abandons the stream: queued events are dropped and a blocked
    /// producer is released (its further sends are discarded).
    pub fn close(&self) {
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.receiver_gone = true;
        st.queue.clear();
        drop(st);
        self.shared.not_full.notify_all();
    }
}

impl Drop for ChannelReceiver {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ThreadId};
    use owl_ir::{FuncId, InstId, InstRef};

    fn ev(step: u64) -> TraceEvent {
        TraceEvent {
            step,
            tid: ThreadId(0),
            site: InstRef::new(FuncId(0), InstId(0)),
            stack: std::sync::Arc::from(vec![].into_boxed_slice()),
            kind: EventKind::Free { addr: step },
            no_shadow: false,
        }
    }

    #[test]
    fn order_preserved_across_thread_boundary() {
        let (mut tx, rx) = event_channel(4);
        let received = std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.on_event_owned(ev(i));
                }
            });
            let mut got = Vec::new();
            while let Some(e) = rx.recv() {
                got.push(e.step);
            }
            got
        });
        assert_eq!(received, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_one_still_delivers_everything() {
        let (mut tx, rx) = event_channel(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..50 {
                    tx.on_event_owned(ev(i));
                }
            });
            let mut n = 0;
            while rx.recv().is_some() {
                n += 1;
            }
            assert_eq!(n, 50);
        });
    }

    #[test]
    fn closed_receiver_releases_blocked_producer() {
        let (mut tx, rx) = event_channel(1);
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                // Far more events than capacity: without the close this
                // producer would block forever.
                for i in 0..1000 {
                    tx.on_event_owned(ev(i));
                }
                true
            });
            let first = rx.recv();
            assert!(first.is_some());
            rx.close();
            assert!(h.join().expect("producer finishes after close"));
        });
    }
}
