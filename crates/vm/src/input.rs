//! Program inputs.
//!
//! A central finding of the paper (§3.1, finding III) is that
//! concurrency bugs and their attacks are triggered by *separate, subtle
//! program inputs* — both input **values** (e.g. the `flush
//! privileges;` query) and input **timings** (crafted IO delays that
//! widen the race window). A [`ProgramInput`] carries both: plain words
//! read by `Input` instructions, which corpus programs route into
//! branches and into `IoDelay` amounts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The input vector handed to one program execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProgramInput {
    values: Vec<i64>,
    label: Option<String>,
}

impl ProgramInput {
    /// An empty input (every `Input` instruction reads 0).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an input from explicit words.
    pub fn new(values: impl Into<Vec<i64>>) -> Self {
        ProgramInput {
            values: values.into(),
            label: None,
        }
    }

    /// Attaches a human-readable label (e.g. `"FLUSH PRIVILEGES"`),
    /// surfaced in reports the way the paper's Table 4 lists subtle
    /// inputs.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The word at `idx`, or 0 when out of range or negative.
    pub fn get(&self, idx: i64) -> i64 {
        usize::try_from(idx)
            .ok()
            .and_then(|i| self.values.get(i))
            .copied()
            .unwrap_or(0)
    }

    /// All words.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }
}

impl From<Vec<i64>> for ProgramInput {
    fn from(values: Vec<i64>) -> Self {
        ProgramInput::new(values)
    }
}

impl fmt::Display for ProgramInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(f, "{l} {:?}", self.values),
            None => write!(f, "{:?}", self.values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_reads_zero() {
        let i = ProgramInput::new(vec![5, 6]);
        assert_eq!(i.get(0), 5);
        assert_eq!(i.get(1), 6);
        assert_eq!(i.get(2), 0);
        assert_eq!(i.get(-1), 0);
    }

    #[test]
    fn labels_render() {
        let i = ProgramInput::new(vec![1]).with_label("FLUSH PRIVILEGES");
        assert_eq!(i.to_string(), "FLUSH PRIVILEGES [1]");
        assert_eq!(i.label(), Some("FLUSH PRIVILEGES"));
    }

    #[test]
    fn empty_input_is_all_zero() {
        let i = ProgramInput::empty();
        assert_eq!(i.get(0), 0);
        assert!(i.values().is_empty());
    }
}
