//! The VM's word-addressed memory.
//!
//! Memory is a set of regions (globals, heap allocations, per-thread
//! stacks) over a sparse 64-bit address space. Globals are laid out
//! contiguously — deliberately, because attacks like Apache-25520
//! (paper Figure 7) depend on a buffer overflow corrupting the
//! *adjacent* variable (the log file descriptor next to `buf->outbuf`).
//! Heap allocations are never reused, so use-after-free and double-free
//! are always detectable.

use owl_ir::{GlobalId, Module};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Base address of the global region (everything below is the NULL
/// page).
pub const GLOBAL_BASE: u64 = 0x1000;
/// Base address of heap allocations.
pub const HEAP_BASE: u64 = 0x1000_0000;
/// Base address of per-thread stacks.
pub const STACK_BASE: u64 = 0x2000_0000;
/// Size of one thread stack, in words.
pub const STACK_SIZE: u64 = 0x1_0000;
/// Function-pointer encoding base: `FuncAddr(f)` evaluates to
/// `FUNCPTR_BASE + f`.
pub const FUNCPTR_BASE: u64 = 0x4000_0000;

/// What kind of storage a region is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// A global variable.
    Global(GlobalId),
    /// A live heap allocation.
    Heap,
    /// A freed heap allocation (kept for use-after-free detection).
    FreedHeap,
    /// A thread-stack allocation (`Alloca`).
    Stack {
        /// Owning thread (raw id).
        tid: u32,
    },
}

/// One contiguous allocation.
///
/// The payload is behind an [`Arc`]: cloning a region (or the whole
/// [`Memory`], as [`crate::Vm::snapshot`] does) shares the words, and
/// the first write through either copy un-shares just that region
/// (copy-on-write via [`Arc::make_mut`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Region {
    /// First word address.
    pub base: u64,
    /// Length in words.
    pub size: u64,
    /// Storage kind.
    pub kind: RegionKind,
    data: Arc<Vec<i64>>,
}

impl Region {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// Why a memory access failed or misbehaved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// Access inside the NULL page.
    Null {
        /// Faulting address.
        addr: u64,
    },
    /// Access outside any region.
    Wild {
        /// Faulting address.
        addr: u64,
    },
    /// Access inside a freed heap region.
    UseAfterFree {
        /// Faulting address.
        addr: u64,
        /// Base of the freed allocation.
        region_base: u64,
    },
    /// `Free` of an already-freed allocation.
    DoubleFree {
        /// The freed base address.
        addr: u64,
    },
    /// `Free` of an address that is not a live heap base.
    InvalidFree {
        /// The bogus address.
        addr: u64,
    },
}

/// VM memory: regions plus allocation cursors.
#[derive(Clone, Debug)]
pub struct Memory {
    /// base -> region, ordered for containment lookup.
    regions: BTreeMap<u64, Region>,
    heap_cursor: u64,
    global_cursor: u64,
    /// Per-thread stack cursors.
    stack_cursors: BTreeMap<u32, u64>,
}

impl Memory {
    /// Creates memory with all of `module`'s globals laid out
    /// contiguously from [`GLOBAL_BASE`].
    pub fn new(module: &Module) -> Self {
        let mut mem = Memory {
            regions: BTreeMap::new(),
            heap_cursor: HEAP_BASE,
            global_cursor: GLOBAL_BASE,
            stack_cursors: BTreeMap::new(),
        };
        for (gi, g) in module.globals.iter().enumerate() {
            let base = mem.global_cursor;
            let mut data = vec![0i64; g.size as usize];
            for (i, v) in g.init.iter().enumerate() {
                data[i] = *v;
            }
            mem.regions.insert(
                base,
                Region {
                    base,
                    size: g.size as u64,
                    kind: RegionKind::Global(GlobalId::from_index(gi)),
                    data: Arc::new(data),
                },
            );
            mem.global_cursor += g.size as u64;
        }
        mem
    }

    /// Address of global `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` was not part of the module this memory was built
    /// from.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.regions
            .values()
            .find(|r| r.kind == RegionKind::Global(g))
            .map(|r| r.base)
            .expect("unknown global")
    }

    fn region_containing(&self, addr: u64) -> Option<&Region> {
        self.regions
            .range(..=addr)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(addr))
    }

    fn region_containing_mut(&mut self, addr: u64) -> Option<&mut Region> {
        self.regions
            .range_mut(..=addr)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(addr))
    }

    /// The region containing `addr`, if any (public for verifier hints).
    pub fn region_of(&self, addr: u64) -> Option<&Region> {
        self.region_containing(addr)
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::Null`] below [`GLOBAL_BASE`], [`MemError::Wild`]
    /// outside all regions, [`MemError::UseAfterFree`] inside a freed
    /// region (the stale value is still returned *inside* the error
    /// case by [`Memory::read_raw`] for attack modeling).
    pub fn read(&self, addr: u64) -> Result<i64, MemError> {
        if addr < GLOBAL_BASE {
            return Err(MemError::Null { addr });
        }
        match self.region_containing(addr) {
            Some(r) if r.kind == RegionKind::FreedHeap => Err(MemError::UseAfterFree {
                addr,
                region_base: r.base,
            }),
            Some(r) => Ok(r.data[(addr - r.base) as usize]),
            None => Err(MemError::Wild { addr }),
        }
    }

    /// Reads the word at `addr` even from freed regions (stale data).
    /// Returns `None` for NULL/wild addresses.
    pub fn read_raw(&self, addr: u64) -> Option<i64> {
        if addr < GLOBAL_BASE {
            return None;
        }
        self.region_containing(addr)
            .map(|r| r.data[(addr - r.base) as usize])
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Same classification as [`Memory::read`]. Writes into freed
    /// regions *do* land (stale memory corruption) but still report
    /// [`MemError::UseAfterFree`].
    pub fn write(&mut self, addr: u64, val: i64) -> Result<(), MemError> {
        if addr < GLOBAL_BASE {
            return Err(MemError::Null { addr });
        }
        match self.region_containing_mut(addr) {
            Some(r) => {
                let base = r.base;
                let freed = r.kind == RegionKind::FreedHeap;
                // Un-share the region on first write after a snapshot.
                Arc::make_mut(&mut r.data)[(addr - base) as usize] = val;
                if freed {
                    Err(MemError::UseAfterFree {
                        addr,
                        region_base: base,
                    })
                } else {
                    Ok(())
                }
            }
            None => Err(MemError::Wild { addr }),
        }
    }

    /// Allocates `size` words on the heap (never reuses addresses).
    pub fn malloc(&mut self, size: u64) -> u64 {
        let size = size.max(1);
        let base = self.heap_cursor;
        self.heap_cursor += size + 1; // one-word red zone
        self.regions.insert(
            base,
            Region {
                base,
                size,
                kind: RegionKind::Heap,
                data: Arc::new(vec![0; size as usize]),
            },
        );
        base
    }

    /// Frees the heap allocation at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::DoubleFree`] if already freed, [`MemError::InvalidFree`]
    /// if `addr` is not a heap allocation base.
    pub fn free(&mut self, addr: u64) -> Result<(), MemError> {
        match self.regions.get_mut(&addr) {
            Some(r) if r.kind == RegionKind::Heap => {
                r.kind = RegionKind::FreedHeap;
                Ok(())
            }
            Some(r) if r.kind == RegionKind::FreedHeap => Err(MemError::DoubleFree { addr }),
            _ => Err(MemError::InvalidFree { addr }),
        }
    }

    /// Allocates `size` words on thread `tid`'s stack.
    pub fn alloca(&mut self, tid: u32, size: u64) -> u64 {
        let cursor = self
            .stack_cursors
            .entry(tid)
            .or_insert(STACK_BASE + u64::from(tid) * STACK_SIZE);
        let base = *cursor;
        *cursor += size.max(1);
        self.regions.insert(
            base,
            Region {
                base,
                size: size.max(1),
                kind: RegionKind::Stack { tid },
                data: Arc::new(vec![0; size.max(1) as usize]),
            },
        );
        base
    }

    /// Whether `addr` is shared memory (globals or heap, live or freed)
    /// — the address classes the race detector shadows. Thread stacks
    /// are excluded, mirroring TSan's escape filtering.
    pub fn is_shared(&self, addr: u64) -> bool {
        matches!(
            self.region_containing(addr).map(|r| r.kind),
            Some(RegionKind::Global(_)) | Some(RegionKind::Heap) | Some(RegionKind::FreedHeap)
        )
    }

    /// Approximate heap bytes a fresh clone of this memory uniquely
    /// owns: the region index (map entry, bounds, one shared payload
    /// handle per region) plus stack cursors. Payload words are
    /// excluded — immediately after a clone they are CoW-shared with
    /// the original and cost nothing until one side writes.
    pub fn approx_index_bytes(&self) -> u64 {
        (self.regions.len() as u64) * 64 + (self.stack_cursors.len() as u64) * 16
    }

    /// Name of the global containing `addr`, for reports.
    pub fn global_name<'m>(&self, module: &'m Module, addr: u64) -> Option<&'m str> {
        match self.region_containing(addr)?.kind {
            RegionKind::Global(g) => Some(module.global(g).name.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    fn module_with_globals() -> Module {
        let mut mb = ModuleBuilder::new("t");
        mb.global_init("a", 2, vec![7, 8], Type::I64);
        mb.global("b", 1, Type::I64);
        mb.finish()
    }

    #[test]
    fn globals_are_contiguous_and_initialized() {
        let m = module_with_globals();
        let mem = Memory::new(&m);
        let a = mem.global_addr(GlobalId(0));
        let b = mem.global_addr(GlobalId(1));
        assert_eq!(a, GLOBAL_BASE);
        assert_eq!(b, GLOBAL_BASE + 2);
        assert_eq!(mem.read(a).unwrap(), 7);
        assert_eq!(mem.read(a + 1).unwrap(), 8);
        assert_eq!(mem.read(b).unwrap(), 0);
    }

    #[test]
    fn overflow_from_one_global_lands_in_next() {
        // The Apache-25520 mechanism: writing past `a` corrupts `b`.
        let m = module_with_globals();
        let mut mem = Memory::new(&m);
        let a = mem.global_addr(GlobalId(0));
        mem.write(a + 2, 99).unwrap();
        let b = mem.global_addr(GlobalId(1));
        assert_eq!(mem.read(b).unwrap(), 99);
    }

    #[test]
    fn null_and_wild_accesses_fail() {
        let m = module_with_globals();
        let mem = Memory::new(&m);
        assert_eq!(mem.read(0), Err(MemError::Null { addr: 0 }));
        assert_eq!(
            mem.read(0xdead_beef00),
            Err(MemError::Wild {
                addr: 0xdead_beef00
            })
        );
    }

    #[test]
    fn heap_lifecycle_and_uaf() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m);
        let p = mem.malloc(4);
        mem.write(p + 1, 42).unwrap();
        assert_eq!(mem.read(p + 1).unwrap(), 42);
        mem.free(p).unwrap();
        assert_eq!(
            mem.read(p + 1),
            Err(MemError::UseAfterFree {
                addr: p + 1,
                region_base: p
            })
        );
        // Stale data still observable for attack modeling.
        assert_eq!(mem.read_raw(p + 1), Some(42));
        assert_eq!(mem.free(p), Err(MemError::DoubleFree { addr: p }));
        assert_eq!(mem.free(p + 1), Err(MemError::InvalidFree { addr: p + 1 }));
    }

    #[test]
    fn malloc_never_reuses_addresses() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m);
        let p1 = mem.malloc(2);
        mem.free(p1).unwrap();
        let p2 = mem.malloc(2);
        assert_ne!(p1, p2);
    }

    #[test]
    fn stack_regions_are_not_shared() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m);
        let s = mem.alloca(3, 8);
        assert!(!mem.is_shared(s));
        assert!(mem.is_shared(GLOBAL_BASE));
        let h = mem.malloc(1);
        assert!(mem.is_shared(h));
        mem.free(h).unwrap();
        assert!(mem.is_shared(h), "freed heap stays shadowed");
    }

    #[test]
    fn distinct_threads_get_distinct_stacks() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m);
        let s0 = mem.alloca(0, 4);
        let s1 = mem.alloca(1, 4);
        assert_ne!(s0, s1);
        assert_eq!(s1, STACK_BASE + STACK_SIZE);
    }

    #[test]
    fn clone_shares_payloads_until_first_write() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m);
        let h = mem.malloc(4);
        let snap = mem.clone();
        let a = mem.global_addr(GlobalId(0));
        assert!(Arc::ptr_eq(
            &mem.regions[&a].data,
            &snap.regions[&a].data
        ));
        // Reads keep sharing; a write un-shares only the touched region.
        let _ = mem.read(h).unwrap();
        assert!(Arc::ptr_eq(
            &mem.regions[&h].data,
            &snap.regions[&h].data
        ));
        mem.write(h + 1, 5).unwrap();
        assert!(!Arc::ptr_eq(
            &mem.regions[&h].data,
            &snap.regions[&h].data
        ));
        assert!(Arc::ptr_eq(
            &mem.regions[&a].data,
            &snap.regions[&a].data
        ));
        // The snapshot still sees the pre-write value.
        assert_eq!(snap.read(h + 1).unwrap(), 0);
        assert_eq!(mem.read(h + 1).unwrap(), 5);
    }

    #[test]
    fn global_names_resolve() {
        let m = module_with_globals();
        let mem = Memory::new(&m);
        assert_eq!(mem.global_name(&m, GLOBAL_BASE), Some("a"));
        assert_eq!(mem.global_name(&m, GLOBAL_BASE + 2), Some("b"));
        assert_eq!(mem.global_name(&m, HEAP_BASE), None);
    }
}
