//! Execution trace events.
//!
//! The VM emits one [`TraceEvent`] per observable action (shared-memory
//! access, synchronization, thread lifecycle). Race detectors implement
//! [`TraceSink`] and consume events online, exactly as TSan instruments
//! a native run.

use owl_ir::{InstRef, Type};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A VM thread identifier. Thread 0 is the initial (main) thread.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A call stack: call-site instruction references, outermost first.
/// The executing instruction itself is *not* included (it lives in
/// [`TraceEvent::site`]). Matches the paper's Figure-4 rendering.
pub type CallStack = Arc<[InstRef]>;

/// What a trace event records.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A shared-memory read.
    Read {
        /// Address read.
        addr: u64,
        /// Value observed.
        value: i64,
        /// Static type at the load site.
        ty: Type,
        /// Whether the access was atomic (atomics never race).
        atomic: bool,
    },
    /// A shared-memory write.
    Write {
        /// Address written.
        addr: u64,
        /// Value written.
        value: i64,
        /// Previous value.
        old: i64,
        /// Whether the access was atomic.
        atomic: bool,
    },
    /// Mutex acquired.
    Lock {
        /// Mutex cell address.
        addr: u64,
    },
    /// Mutex released.
    Unlock {
        /// Mutex cell address.
        addr: u64,
    },
    /// Thread spawned.
    Fork {
        /// The new thread.
        child: ThreadId,
    },
    /// Thread joined.
    Join {
        /// The joined thread.
        child: ThreadId,
    },
    /// Heap allocation.
    Malloc {
        /// Base address.
        addr: u64,
        /// Words allocated.
        size: u64,
    },
    /// Heap release.
    Free {
        /// Base address freed.
        addr: u64,
    },
    /// An injected fault fired here (chaos runs only; never emitted
    /// under a zeroed [`crate::FaultPlan`]).
    Fault {
        /// Which fault fired.
        kind: crate::fault::FaultKind,
    },
}

/// One observable action of one thread.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global step counter at which the action executed.
    pub step: u64,
    /// Acting thread.
    pub tid: ThreadId,
    /// The instruction that acted.
    pub site: InstRef,
    /// Call stack at the action (call sites, outermost first).
    pub stack: CallStack,
    /// Action payload.
    pub kind: EventKind,
    /// Whether the static check-elision pre-pass proved this site
    /// race-free: shadow-memory backends may skip their lookup/update
    /// for the event. Only ever set on plain `Read`/`Write` events, and
    /// only when an elision map was installed in the VM. The reference
    /// vector-clock backend deliberately ignores it (it is the
    /// differential oracle for the elision proof).
    #[serde(default)]
    pub no_shadow: bool,
}

impl TraceEvent {
    /// The accessed address for memory events.
    pub fn addr(&self) -> Option<u64> {
        match self.kind {
            EventKind::Read { addr, .. }
            | EventKind::Write { addr, .. }
            | EventKind::Lock { addr }
            | EventKind::Unlock { addr }
            | EventKind::Malloc { addr, .. }
            | EventKind::Free { addr } => Some(addr),
            _ => None,
        }
    }

    /// Whether this is a non-atomic data access (race candidate).
    pub fn is_data_access(&self) -> bool {
        matches!(
            self.kind,
            EventKind::Read { atomic: false, .. } | EventKind::Write { atomic: false, .. }
        )
    }

    /// Whether this is a write (atomic or not).
    pub fn is_write(&self) -> bool {
        matches!(self.kind, EventKind::Write { .. })
    }
}

/// Consumes trace events during execution.
pub trait TraceSink {
    /// Called once per event, in execution order.
    fn on_event(&mut self, ev: &TraceEvent);

    /// By-value variant of [`TraceSink::on_event`]. The VM constructs
    /// every event it emits, so it hands the sink ownership through
    /// this method; sinks that store or forward events (`VecSink`, the
    /// streaming channel) override it to move the event instead of
    /// cloning. The default delegates to `on_event`, so borrowing
    /// sinks only implement the by-reference method.
    fn on_event_owned(&mut self, ev: TraceEvent) {
        self.on_event(&ev);
    }
}

/// Discards all events.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_event(&mut self, _ev: &TraceEvent) {}
}

/// Records every event for offline analysis.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The recorded trace.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }

    fn on_event_owned(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn on_event(&mut self, ev: &TraceEvent) {
        (**self).on_event(ev);
    }

    fn on_event_owned(&mut self, ev: TraceEvent) {
        (**self).on_event_owned(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{FuncId, InstId};

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent {
            step: 1,
            tid: ThreadId(2),
            site: InstRef::new(FuncId(0), InstId(0)),
            stack: Arc::from(vec![].into_boxed_slice()),
            kind,
            no_shadow: false,
        }
    }

    #[test]
    fn address_extraction() {
        assert_eq!(
            ev(EventKind::Read {
                addr: 9,
                value: 0,
                ty: Type::I64,
                atomic: false
            })
            .addr(),
            Some(9)
        );
        assert_eq!(ev(EventKind::Fork { child: ThreadId(1) }).addr(), None);
    }

    #[test]
    fn data_access_classification() {
        assert!(ev(EventKind::Write {
            addr: 1,
            value: 2,
            old: 0,
            atomic: false
        })
        .is_data_access());
        assert!(!ev(EventKind::Read {
            addr: 1,
            value: 2,
            ty: Type::I64,
            atomic: true
        })
        .is_data_access());
        assert!(!ev(EventKind::Lock { addr: 1 }).is_data_access());
    }

    #[test]
    fn vec_sink_records() {
        let mut sink = VecSink::default();
        sink.on_event(&ev(EventKind::Free { addr: 4 }));
        assert_eq!(sink.events.len(), 1);
    }
}
