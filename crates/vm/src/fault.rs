//! Deterministic fault injection.
//!
//! A seeded [`FaultPlan`] rides along in [`crate::RunConfig`] and lets
//! the VM perturb an execution in controlled, reproducible ways:
//! memory operations fail spuriously, condition waits wake without a
//! signal, scheduler picks are replaced by delays, breakpoint hits are
//! dropped, and the step budget is exhausted early. Every injection is
//! recorded as a [`FaultRecord`] in
//! [`crate::ExecOutcome::injected_faults`] (and, where an instruction
//! site exists, as an [`crate::EventKind::Fault`] trace event), so a
//! chaos run can always account for what the harness did to it.
//!
//! A plan with all rates at zero never draws from its RNG and never
//! perturbs anything: execution is bit-identical to a run without the
//! fault layer.

use crate::event::ThreadId;
use owl_ir::InstRef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What kinds of fault the VM can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A load or store failed as if the memory subsystem returned
    /// [`crate::mem::MemError`]-style wild access.
    MemFault,
    /// A thread asleep on a condition variable was woken without a
    /// signal (the POSIX spurious wakeup the paper's ad-hoc loops
    /// guard against).
    SpuriousWakeup,
    /// The scheduler's pick was replaced by a delay, perturbing the
    /// interleaving.
    SchedDelay,
    /// A matching breakpoint hit was silently dropped (the verifier
    /// never hears about it).
    DroppedBreakpoint,
    /// The step budget was cut short of `max_steps`.
    StepExhaustion,
    /// A hard kill fired right after a journal append — the
    /// crash-recovery harness's simulated `SIGKILL` (injected by the
    /// journal layer, never by the VM itself).
    JournalKill,
}

/// Panic payload of an armed durability kill point (the journal's
/// `set_kill_after` and the trace spill layer's kill switch). It
/// simulates the process dying right after an fsync — supervisors must
/// re-raise it rather than retry, exactly as they would not survive a
/// real `SIGKILL`. Defined here (rather than in the journal crate)
/// because every layer that persists checksummed records — the
/// campaign journal, the daemon's result store, the trace spill
/// segments — shares the same simulated-crash protocol.
#[derive(Debug)]
pub struct JournalKilled {
    /// Appends completed before the kill fired.
    pub appends: u64,
    /// The fault kind this injection is tagged with
    /// ([`FaultKind::JournalKill`]).
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::MemFault => "mem-fault",
            FaultKind::SpuriousWakeup => "spurious-wakeup",
            FaultKind::SchedDelay => "sched-delay",
            FaultKind::DroppedBreakpoint => "dropped-breakpoint",
            FaultKind::StepExhaustion => "step-exhaustion",
            FaultKind::JournalKill => "journal-kill",
        };
        f.write_str(s)
    }
}

/// One injected fault, with as much provenance as was available at the
/// injection point.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Which fault fired.
    pub kind: FaultKind,
    /// Step at which it fired.
    pub step: u64,
    /// Affected thread, when one exists (step exhaustion has none).
    pub tid: Option<ThreadId>,
    /// Instruction the affected thread was at, when resolvable.
    pub site: Option<InstRef>,
}

/// A seeded, per-execution fault-injection plan.
///
/// Rates are probabilities in `[0, 1]`, evaluated independently at
/// each opportunity (per memory access, per scheduler pick, per
/// breakpoint hit, ...). The default plan is [`FaultPlan::none`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed; equal seeds and equal programs give equal injections.
    pub seed: u64,
    /// Probability a `Load`/`Store` fails with a wild-access fault.
    pub mem_fault_rate: f64,
    /// Per-loop-iteration probability of waking one condition-waiting
    /// thread without a signal.
    pub spurious_wakeup_rate: f64,
    /// Probability a scheduler pick is replaced by a delay.
    pub sched_delay_rate: f64,
    /// How long (in steps) an injected delay lasts.
    pub sched_delay_steps: u64,
    /// Probability a matching breakpoint hit is dropped.
    pub drop_breakpoint_rate: f64,
    /// Probability (drawn once per run) that the step budget is cut
    /// to `step_exhaustion_fraction * max_steps`.
    pub step_exhaustion_rate: f64,
    /// Fraction of `max_steps` that survives a step-exhaustion fault.
    pub step_exhaustion_fraction: f64,
    /// When set, injections only fire inside this `[start, end)` step
    /// window (step exhaustion is exempt: it is a run-level fault).
    pub window: Option<(u64, u64)>,
}

impl FaultPlan {
    /// The no-op plan: nothing ever fires, no RNG is consumed.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            mem_fault_rate: 0.0,
            spurious_wakeup_rate: 0.0,
            sched_delay_rate: 0.0,
            sched_delay_steps: 0,
            drop_breakpoint_rate: 0.0,
            step_exhaustion_rate: 0.0,
            step_exhaustion_fraction: 1.0,
            window: None,
        }
    }

    /// A plan firing every fault kind at the same `rate`, seeded with
    /// `seed`. Delays last 50 steps; step exhaustion halves the
    /// budget.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            mem_fault_rate: rate,
            spurious_wakeup_rate: rate,
            sched_delay_rate: rate,
            sched_delay_steps: 50,
            drop_breakpoint_rate: rate,
            step_exhaustion_rate: rate,
            step_exhaustion_fraction: 0.5,
            window: None,
        }
    }

    /// Whether every rate is zero (the plan can never perturb a run).
    pub fn is_none(&self) -> bool {
        self.mem_fault_rate == 0.0
            && self.spurious_wakeup_rate == 0.0
            && self.sched_delay_rate == 0.0
            && self.drop_breakpoint_rate == 0.0
            && self.step_exhaustion_rate == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Live injection state for one execution. `Clone` captures the RNG
/// mid-stream, so a [`crate::Snapshot`] resumes drawing exactly where
/// the snapshotted run left off.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    rng: StdRng,
    /// Everything injected so far, in injection order.
    pub(crate) records: Vec<FaultRecord>,
    /// Premature step budget, when a step-exhaustion fault was drawn.
    pub(crate) cutoff: Option<u64>,
}

impl FaultState {
    /// Seeds the RNG and draws the run-level step-exhaustion fault.
    pub(crate) fn new(plan: FaultPlan, max_steps: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(plan.seed);
        let cutoff = if plan.step_exhaustion_rate > 0.0
            && rng.gen_bool(plan.step_exhaustion_rate.clamp(0.0, 1.0))
        {
            Some((max_steps as f64 * plan.step_exhaustion_fraction.clamp(0.0, 1.0)) as u64)
        } else {
            None
        };
        FaultState {
            plan,
            rng,
            records: Vec::new(),
            cutoff,
        }
    }

    /// Core draw: does a fault with probability `rate` fire at `step`?
    ///
    /// Zero rates (and steps outside the plan's window) short-circuit
    /// before touching the RNG, so a no-op plan stays bit-identical to
    /// no plan at all.
    fn fire(&mut self, rate: f64, step: u64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if let Some((start, end)) = self.plan.window {
            if step < start || step >= end {
                return false;
            }
        }
        self.rng.gen_bool(rate.clamp(0.0, 1.0))
    }

    pub(crate) fn fire_mem(&mut self, step: u64) -> bool {
        self.fire(self.plan.mem_fault_rate, step)
    }

    pub(crate) fn fire_wakeup(&mut self, step: u64) -> bool {
        self.fire(self.plan.spurious_wakeup_rate, step)
    }

    pub(crate) fn fire_sched_delay(&mut self, step: u64) -> bool {
        self.fire(self.plan.sched_delay_rate, step)
    }

    pub(crate) fn fire_drop_bp(&mut self, step: u64) -> bool {
        self.fire(self.plan.drop_breakpoint_rate, step)
    }

    /// Appends a record of an injection that just happened.
    pub(crate) fn record(
        &mut self,
        kind: FaultKind,
        step: u64,
        tid: Option<ThreadId>,
        site: Option<InstRef>,
    ) {
        self.records.push(FaultRecord {
            kind,
            step,
            tid,
            site,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let mut st = FaultState::new(FaultPlan::none(), 1000);
        assert!(st.cutoff.is_none());
        for step in 0..10_000 {
            assert!(!st.fire_mem(step));
            assert!(!st.fire_wakeup(step));
            assert!(!st.fire_sched_delay(step));
            assert!(!st.fire_drop_bp(step));
        }
        assert!(st.records.is_empty());
    }

    #[test]
    fn same_seed_same_draws() {
        let a: Vec<bool> = {
            let mut st = FaultState::new(FaultPlan::uniform(7, 0.3), 1000);
            (0..200).map(|s| st.fire_mem(s)).collect()
        };
        let b: Vec<bool> = {
            let mut st = FaultState::new(FaultPlan::uniform(7, 0.3), 1000);
            (0..200).map(|s| st.fire_mem(s)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<bool> = {
            let mut st = FaultState::new(FaultPlan::uniform(8, 0.3), 1000);
            (0..200).map(|s| st.fire_mem(s)).collect()
        };
        assert_ne!(a, c, "different seeds should eventually diverge");
    }

    #[test]
    fn window_gates_injections() {
        let mut plan = FaultPlan::uniform(3, 1.0);
        plan.window = Some((10, 20));
        plan.step_exhaustion_rate = 0.0;
        let mut st = FaultState::new(plan, 1000);
        assert!(!st.fire_mem(9));
        assert!(st.fire_mem(10));
        assert!(st.fire_mem(19));
        assert!(!st.fire_mem(20));
    }

    #[test]
    fn exhaustion_cutoff_scales_budget() {
        let st = FaultState::new(FaultPlan::uniform(1, 1.0), 1000);
        assert_eq!(st.cutoff, Some(500));
    }
}
