//! # owl-vm
//!
//! A deterministic concurrent interpreter for [`owl_ir`] programs — the
//! execution substrate of the OWL concurrency-attack detection
//! framework (a Rust reproduction of *"Understanding and Detecting
//! Concurrency Attacks"*, DSN 2018).
//!
//! In the original system, programs ran natively under TSan (with the
//! OS scheduler supplying interleavings), under SKI's QEMU-level
//! schedule exploration for kernels, and under LLDB for verification.
//! This crate replaces all three execution environments with one VM:
//!
//! * instruction-granularity preemption under a pluggable
//!   [`Scheduler`] (round-robin, seeded random ≈ native timing, PCT ≈
//!   SKI exploration, replay);
//! * [`TraceEvent`]s for every shared-memory access, synchronization,
//!   and thread-lifecycle action (what TSan's instrumentation sees);
//! * thread-specific [`Breakpoint`]s with a [`Controller`] callback —
//!   the paper's §5.2 LLDB mechanism, including automatic livelock
//!   release;
//! * runtime violation detection (NULL dereference, use-after-free,
//!   double free, buffer overflow with *real* corruption of adjacent
//!   memory, unsigned underflow, corrupted function pointers) plus
//!   security-event recording (privilege, file, exec), so attack
//!   oracles can observe consequences end-to-end.
//!
//! ## Example
//!
//! ```
//! use owl_ir::{ModuleBuilder, Type};
//! use owl_vm::{ProgramInput, RoundRobin, Vm};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let main = mb.declare_func("main", 0);
//! {
//!     let mut f = mb.build_func(main);
//!     let v = f.input(0);
//!     f.output(7, v);
//!     f.ret(None);
//! }
//! let module = mb.finish();
//!
//! let mut sched = RoundRobin::default();
//! let outcome = Vm::run_quiet(&module, main, ProgramInput::new(vec![42]), &mut sched);
//! assert_eq!(outcome.outputs, vec![(7, 42)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod breakpoint;
mod event;
mod fault;
mod input;
pub mod mem;
mod sched;
pub mod stream;
mod violation;
mod vm;

pub use breakpoint::{
    BreakDecision, BreakWorld, Breakpoint, Controller, NoController, PendingAccess, Suspension,
};
pub use event::{CallStack, EventKind, NullSink, ThreadId, TraceEvent, TraceSink, VecSink};
pub use fault::{FaultKind, FaultPlan, FaultRecord, JournalKilled};
pub use stream::{event_channel, ChannelReceiver, ChannelSender};
pub use input::ProgramInput;
pub use mem::Memory;
pub use sched::{PctScheduler, RandomScheduler, ReplayScheduler, RoundRobin, Scheduler};
pub use violation::{SecurityEvent, SecurityRecord, Violation, ViolationRecord};
pub use vm::{DeadlockInfo, ExecOutcome, ExitStatus, RunConfig, Snapshot, Vm, WaitInfo, WaitReason};
