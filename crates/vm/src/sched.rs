//! Schedulers: who runs next.
//!
//! The paper's dynamic components differ only in how schedules are
//! produced: TSan observes whatever the OS gives it (≈ random), SKI
//! systematically explores kernel interleavings (≈ PCT), and OWL's
//! verifiers *direct* schedules via breakpoints. The VM makes the
//! scheduler a trait so all three are the same machinery.

use crate::event::ThreadId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks the next thread to execute one instruction.
pub trait Scheduler {
    /// Chooses among `runnable` (never empty). `step` is the global
    /// instruction counter.
    fn pick(&mut self, runnable: &[ThreadId], step: u64) -> ThreadId;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn pick(&mut self, runnable: &[ThreadId], step: u64) -> ThreadId {
        (**self).pick(runnable, step)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Cooperative round-robin with a fixed quantum: runs one thread for
/// `quantum` steps, then rotates. Deterministic; good for smoke tests.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    quantum: u64,
    current: Option<ThreadId>,
    used: u64,
}

impl RoundRobin {
    /// Creates a round-robin scheduler with the given quantum (≥ 1).
    pub fn new(quantum: u64) -> Self {
        RoundRobin {
            quantum: quantum.max(1),
            current: None,
            used: 0,
        }
    }
}

impl Default for RoundRobin {
    fn default() -> Self {
        RoundRobin::new(8)
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[ThreadId], _step: u64) -> ThreadId {
        if let Some(cur) = self.current {
            if self.used < self.quantum && runnable.contains(&cur) {
                self.used += 1;
                return cur;
            }
            // Rotate to the next runnable after `cur`.
            let next = runnable
                .iter()
                .copied()
                .find(|t| *t > cur)
                .unwrap_or(runnable[0]);
            self.current = Some(next);
            self.used = 1;
            return next;
        }
        self.current = Some(runnable[0]);
        self.used = 1;
        runnable[0]
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random scheduling from a seed — the "native execution"
/// stand-in used for TSan-style detection runs.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
    seed: u64,
}

impl RandomScheduler {
    /// Creates a random scheduler from `seed`.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this scheduler was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, runnable: &[ThreadId], _step: u64) -> ThreadId {
        runnable[self.rng.gen_range(0..runnable.len())]
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// PCT (probabilistic concurrency testing): random thread priorities
/// plus `depth` random priority-change points. This is the SKI-style
/// systematic explorer: sweeping seeds sweeps interleavings with
/// probabilistic coverage guarantees for small bug depths.
#[derive(Clone, Debug)]
pub struct PctScheduler {
    rng: StdRng,
    /// Priority per thread index (higher runs first).
    priorities: Vec<i64>,
    /// Steps at which the running thread's priority drops (sorted).
    change_points: Vec<u64>,
    /// Cursor into `change_points`; everything before it is consumed.
    next_change: usize,
    next_low_priority: i64,
}

impl PctScheduler {
    /// Creates a PCT scheduler with `depth` change points over an
    /// expected execution length of `expected_steps`.
    pub fn new(seed: u64, depth: usize, expected_steps: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut change_points: Vec<u64> = (0..depth)
            .map(|_| rng.gen_range(0..expected_steps.max(1)))
            .collect();
        change_points.sort_unstable();
        PctScheduler {
            rng,
            priorities: Vec::new(),
            change_points,
            next_change: 0,
            next_low_priority: -1,
        }
    }

    fn priority(&mut self, t: ThreadId) -> i64 {
        let idx = t.index();
        while self.priorities.len() <= idx {
            // New threads get a random high priority.
            let p = self.rng.gen_range(1000..1_000_000);
            self.priorities.push(p);
        }
        self.priorities[idx]
    }
}

impl Scheduler for PctScheduler {
    fn pick(&mut self, runnable: &[ThreadId], step: u64) -> ThreadId {
        let best = runnable
            .iter()
            .copied()
            .max_by_key(|t| self.priority(*t))
            .expect("runnable is never empty");
        // Consume every change point due at or before `step` in one
        // pick (a cursor, not `remove(0)`: O(1) per point, and change
        // points can no longer drift later than the seed placed them
        // when several fall between two picks).
        let due = self.change_points[self.next_change..]
            .iter()
            .take_while(|&&c| step >= c)
            .count();
        if due > 0 {
            self.next_change += due;
            // Demote the thread we just chose below every other.
            let p = self.next_low_priority;
            self.next_low_priority -= 1;
            self.priorities[best.index()] = p;
        }
        best
    }

    fn name(&self) -> &'static str {
        "pct"
    }
}

/// Replays a recorded schedule exactly; after it is exhausted (or on a
/// mismatch) falls back to the first runnable thread.
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    choices: Vec<ThreadId>,
    pos: usize,
    /// Number of choices that could not be honoured (thread not
    /// runnable at that point).
    pub divergences: u64,
}

impl ReplayScheduler {
    /// Creates a replayer from a recorded choice sequence
    /// ([`crate::ExecOutcome::schedule`]).
    pub fn new(choices: Vec<ThreadId>) -> Self {
        ReplayScheduler {
            choices,
            pos: 0,
            divergences: 0,
        }
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, runnable: &[ThreadId], _step: u64) -> ThreadId {
        if let Some(&want) = self.choices.get(self.pos) {
            self.pos += 1;
            if runnable.contains(&want) {
                return want;
            }
            self.divergences += 1;
        }
        runnable[0]
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tids(v: &[u32]) -> Vec<ThreadId> {
        v.iter().map(|&i| ThreadId(i)).collect()
    }

    #[test]
    fn round_robin_honours_quantum() {
        let mut s = RoundRobin::new(2);
        let r = tids(&[0, 1]);
        assert_eq!(s.pick(&r, 0), ThreadId(0));
        assert_eq!(s.pick(&r, 1), ThreadId(0));
        assert_eq!(s.pick(&r, 2), ThreadId(1));
        assert_eq!(s.pick(&r, 3), ThreadId(1));
        assert_eq!(s.pick(&r, 4), ThreadId(0));
    }

    #[test]
    fn round_robin_skips_unrunnable() {
        let mut s = RoundRobin::new(1);
        assert_eq!(s.pick(&tids(&[0, 1]), 0), ThreadId(0));
        // Thread 0 blocked; must move on.
        assert_eq!(s.pick(&tids(&[1]), 1), ThreadId(1));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let r = tids(&[0, 1, 2]);
        let picks1: Vec<_> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|i| s.pick(&r, i)).collect()
        };
        let picks2: Vec<_> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|i| s.pick(&r, i)).collect()
        };
        assert_eq!(picks1, picks2);
        let picks3: Vec<_> = {
            let mut s = RandomScheduler::new(43);
            (0..20).map(|i| s.pick(&r, i)).collect()
        };
        assert_ne!(picks1, picks3);
    }

    #[test]
    fn pct_always_picks_runnable() {
        let mut s = PctScheduler::new(7, 3, 100);
        let r = tids(&[0, 1, 2]);
        for step in 0..200 {
            let t = s.pick(&r, step);
            assert!(r.contains(&t));
        }
    }

    #[test]
    fn pct_demotes_at_change_points() {
        // With depth == expected steps the scheduler demotes often; the
        // chosen thread must eventually change.
        let mut s = PctScheduler::new(1, 50, 50);
        let r = tids(&[0, 1]);
        let picks: Vec<_> = (0..100).map(|i| s.pick(&r, i)).collect();
        assert!(picks.contains(&ThreadId(0)));
        assert!(picks.contains(&ThreadId(1)));
    }

    #[test]
    fn pct_consumes_all_due_change_points_in_one_pick() {
        // Every change point lies far before the first pick's step, so
        // all of them are due at once: exactly one demotion happens and
        // the priority order is stable afterwards.
        let mut s = PctScheduler::new(3, 8, 16);
        let r = tids(&[0, 1]);
        let first = s.pick(&r, 1_000);
        let second = s.pick(&r, 1_001);
        assert_ne!(first, second, "the chosen thread is demoted once");
        for step in 1_002..1_050 {
            assert_eq!(s.pick(&r, step), second, "no further demotions");
        }
    }

    #[test]
    fn replay_reproduces_and_counts_divergence() {
        let mut s = ReplayScheduler::new(tids(&[1, 0, 1]));
        assert_eq!(s.pick(&tids(&[0, 1]), 0), ThreadId(1));
        // Thread 0 requested but only 1 runnable: divergence.
        assert_eq!(s.pick(&tids(&[1]), 1), ThreadId(1));
        assert_eq!(s.divergences, 1);
        assert_eq!(s.pick(&tids(&[0, 1]), 2), ThreadId(1));
        // Exhausted: falls back to first runnable.
        assert_eq!(s.pick(&tids(&[0, 1]), 3), ThreadId(0));
    }
}
