//! Runtime violations — the observable *consequences* of concurrency
//! attacks.
//!
//! The paper's study classifies attack consequences as privilege
//! escalation, code injection, authentication bypass, buffer overflow,
//! HTML integrity violation, and DoS. The VM detects the mechanical
//! ones (memory-safety and arithmetic violations) directly; the
//! corpus's per-program oracles combine them with security events
//! (privilege, file, exec records) to decide whether an *attack*
//! happened.

use crate::event::{CallStack, ThreadId};
use owl_ir::InstRef;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A mechanical runtime violation detected by the VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Violation {
    /// Load/store through a NULL (page-zero) pointer.
    NullDeref {
        /// Faulting address.
        addr: u64,
    },
    /// Load/store outside every region.
    WildAccess {
        /// Faulting address.
        addr: u64,
    },
    /// Access to freed heap memory.
    UseAfterFree {
        /// Faulting address.
        addr: u64,
        /// Base of the freed allocation.
        region_base: u64,
    },
    /// `free` of an already-freed allocation.
    DoubleFree {
        /// The allocation base.
        addr: u64,
    },
    /// `free` of a non-allocation address.
    InvalidFree {
        /// The bogus address.
        addr: u64,
    },
    /// `MemCopy` wrote past the end of the destination allocation.
    BufferOverflow {
        /// Destination base passed to the copy.
        dst: u64,
        /// First out-of-bounds address written.
        first_oob: u64,
    },
    /// Unsigned subtraction wrapped below zero (Figure 8's busy
    /// counter).
    IntegerUnderflow {
        /// Minuend.
        a: i64,
        /// Subtrahend.
        b: i64,
    },
    /// Division or remainder by zero.
    DivByZero,
    /// Indirect call through a NULL function pointer (Figure 2's
    /// `f_op->fsync`).
    NullFuncPtr,
    /// Indirect call through a corrupted (non-function) pointer —
    /// arbitrary code execution in the paper's threat model.
    CorruptFuncPtr {
        /// The bogus pointer value.
        value: i64,
    },
    /// An SSA value was read before any execution path defined it
    /// (program bug, not an attack).
    UndefinedValue,
}

impl Violation {
    /// Whether the violating thread cannot continue (crash semantics).
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            Violation::NullDeref { .. }
                | Violation::WildAccess { .. }
                | Violation::NullFuncPtr
                | Violation::CorruptFuncPtr { .. }
                | Violation::DivByZero
                | Violation::UndefinedValue
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NullDeref { addr } => write!(f, "NULL dereference at {addr:#x}"),
            Violation::WildAccess { addr } => write!(f, "wild access at {addr:#x}"),
            Violation::UseAfterFree { addr, region_base } => {
                write!(
                    f,
                    "use-after-free at {addr:#x} (allocation {region_base:#x})"
                )
            }
            Violation::DoubleFree { addr } => write!(f, "double free of {addr:#x}"),
            Violation::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            Violation::BufferOverflow { dst, first_oob } => {
                write!(
                    f,
                    "buffer overflow past {dst:#x} (first OOB {first_oob:#x})"
                )
            }
            Violation::IntegerUnderflow { a, b } => {
                write!(f, "unsigned underflow: {a} - {b}")
            }
            Violation::DivByZero => write!(f, "division by zero"),
            Violation::NullFuncPtr => write!(f, "call through NULL function pointer"),
            Violation::CorruptFuncPtr { value } => {
                write!(f, "call through corrupted function pointer {value:#x}")
            }
            Violation::UndefinedValue => write!(f, "use of undefined SSA value"),
        }
    }
}

/// A violation plus where and who.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// The violation.
    pub violation: Violation,
    /// Executing thread.
    pub tid: ThreadId,
    /// Faulting instruction.
    pub site: InstRef,
    /// Call stack at the fault.
    pub stack: CallStack,
    /// Step at which it happened.
    pub step: u64,
}

/// A security-relevant action (always recorded; an oracle decides
/// whether it constitutes an attack).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SecurityEvent {
    /// `SetPrivilege(level)` executed.
    Privilege {
        /// The new level (0 = root in corpus conventions).
        level: i64,
    },
    /// `FileAccess(fd, data)` executed.
    FileWrite {
        /// Descriptor written.
        fd: i64,
        /// Word written.
        data: i64,
    },
    /// `Exec(cmd)` executed.
    Exec {
        /// Command word.
        cmd: i64,
    },
}

/// A security event plus provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SecurityRecord {
    /// The action.
    pub event: SecurityEvent,
    /// Executing thread.
    pub tid: ThreadId,
    /// Acting instruction.
    pub site: InstRef,
    /// Step at which it happened.
    pub step: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality_classification() {
        assert!(Violation::NullDeref { addr: 0 }.is_fatal());
        assert!(Violation::NullFuncPtr.is_fatal());
        assert!(!Violation::UseAfterFree {
            addr: 1,
            region_base: 1
        }
        .is_fatal());
        assert!(!Violation::BufferOverflow {
            dst: 1,
            first_oob: 2
        }
        .is_fatal());
        assert!(!Violation::IntegerUnderflow { a: 0, b: 1 }.is_fatal());
    }

    #[test]
    fn display_is_informative() {
        let s = Violation::BufferOverflow {
            dst: 0x1000,
            first_oob: 0x1008,
        }
        .to_string();
        assert!(s.contains("overflow"));
        assert!(s.contains("0x1008"));
    }
}
